"""Two-dimensional Discrete Cosine Transform on 8x8 blocks.

The paper's codec partitions each frame into 8x8 pel blocks and
computes a DCT on each (the JPEG transform).  The orthonormal DCT-II
matrix is built from first principles; the 2-D transform of a block
``B`` is ``C @ B @ C.T`` and the inverse is ``C.T @ A @ C``.  Whole
frames are transformed block-wise with one einsum, which keeps the
Python-level cost independent of the number of blocks.
"""

from __future__ import annotations

import numpy as np

from repro._validation import require_positive_int

__all__ = [
    "dct_matrix",
    "dct2",
    "idct2",
    "blockwise_dct",
    "blockwise_idct",
    "block_view",
    "unblock_view",
]


def dct_matrix(n=8):
    """Orthonormal DCT-II matrix of size ``n x n``.

    ``C[k, j] = alpha_k * cos(pi (2j + 1) k / (2n))`` with
    ``alpha_0 = sqrt(1/n)`` and ``alpha_k = sqrt(2/n)`` otherwise.
    The matrix is orthogonal: ``C @ C.T == I``.
    """
    n = require_positive_int(n, "n")
    k = np.arange(n).reshape(-1, 1)
    j = np.arange(n).reshape(1, -1)
    c = np.cos(np.pi * (2 * j + 1) * k / (2 * n))
    c *= np.sqrt(2.0 / n)
    c[0, :] = np.sqrt(1.0 / n)
    return c


def dct2(block, matrix=None):
    """2-D DCT of one square block."""
    block = np.asarray(block, dtype=float)
    if block.ndim != 2 or block.shape[0] != block.shape[1]:
        raise ValueError(f"block must be square, got shape {block.shape}")
    if matrix is None:
        matrix = dct_matrix(block.shape[0])
    return matrix @ block @ matrix.T


def idct2(coeffs, matrix=None):
    """Inverse 2-D DCT of one square coefficient block."""
    coeffs = np.asarray(coeffs, dtype=float)
    if coeffs.ndim != 2 or coeffs.shape[0] != coeffs.shape[1]:
        raise ValueError(f"coeffs must be square, got shape {coeffs.shape}")
    if matrix is None:
        matrix = dct_matrix(coeffs.shape[0])
    return matrix.T @ coeffs @ matrix


def block_view(image, block_size=8):
    """Reshape ``(H, W)`` into ``(H/b, W/b, b, b)`` blocks.

    Raises if the image dimensions are not multiples of the block
    size -- the codec pads frames before calling this.
    """
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise ValueError(f"image must be 2-D, got shape {image.shape}")
    h, w = image.shape
    b = require_positive_int(block_size, "block_size")
    if h % b or w % b:
        raise ValueError(f"image dimensions {image.shape} are not multiples of {b}")
    return image.reshape(h // b, b, w // b, b).swapaxes(1, 2)


def unblock_view(blocks):
    """Inverse of :func:`block_view`: ``(nbh, nbw, b, b) -> (H, W)``."""
    blocks = np.asarray(blocks, dtype=float)
    if blocks.ndim != 4 or blocks.shape[2] != blocks.shape[3]:
        raise ValueError(f"blocks must have shape (nbh, nbw, b, b), got {blocks.shape}")
    nbh, nbw, b, _ = blocks.shape
    return blocks.swapaxes(1, 2).reshape(nbh * b, nbw * b)


def blockwise_dct(image, block_size=8, matrix=None):
    """DCT of every ``block_size`` block of an image at once.

    Returns an array of shape ``(H/b, W/b, b, b)`` of coefficients.
    """
    if matrix is None:
        matrix = dct_matrix(block_size)
    blocks = block_view(image, block_size)
    # C @ B @ C.T for every block: contract the pel axes with einsum.
    return np.einsum("ij,hwjk,lk->hwil", matrix, blocks, matrix, optimize=True)


def blockwise_idct(coeff_blocks, matrix=None):
    """Inverse DCT of every coefficient block; returns the image."""
    coeff_blocks = np.asarray(coeff_blocks, dtype=float)
    if coeff_blocks.ndim != 4:
        raise ValueError(f"coeff_blocks must be 4-D, got shape {coeff_blocks.shape}")
    if matrix is None:
        matrix = dct_matrix(coeff_blocks.shape[2])
    blocks = np.einsum("ji,hwjk,kl->hwil", matrix, coeff_blocks, matrix, optimize=True)
    return unblock_view(blocks)
