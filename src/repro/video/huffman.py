"""Canonical Huffman coding, built from scratch.

The codec builds one Huffman table per frame from the frame's own
symbol statistics (the paper's coder similarly adapts its entropy
coding to the material).  Codes are *canonical*: symbols are assigned
codewords of the optimal lengths in lexicographic order, which makes
the table compact and the assignment deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from collections import Counter

from repro.video.bitstream import BitReader, BitWriter

__all__ = ["HuffmanCode"]


def _code_lengths(frequencies):
    """Optimal codeword length per symbol via Huffman's algorithm.

    Returns ``{symbol: length}``.  A single-symbol alphabet gets length
    1 (a real stream still needs one bit per occurrence).
    """
    if not frequencies:
        raise ValueError("cannot build a Huffman code from an empty alphabet")
    if any(freq <= 0 for freq in frequencies.values()):
        raise ValueError("all symbol frequencies must be positive")
    if len(frequencies) == 1:
        return {symbol: 1 for symbol in frequencies}
    counter = itertools.count()
    # Heap entries: (frequency, tiebreak, {symbol: depth}).
    heap = [(freq, next(counter), {symbol: 0}) for symbol, freq in frequencies.items()]
    heapq.heapify(heap)
    while len(heap) > 1:
        freq_a, _, tree_a = heapq.heappop(heap)
        freq_b, _, tree_b = heapq.heappop(heap)
        merged = {symbol: depth + 1 for symbol, depth in tree_a.items()}
        merged.update({symbol: depth + 1 for symbol, depth in tree_b.items()})
        heapq.heappush(heap, (freq_a + freq_b, next(counter), merged))
    return heap[0][2]


class HuffmanCode:
    """Canonical Huffman code over an arbitrary hashable alphabet.

    Build with :meth:`from_frequencies` or :meth:`from_symbols`; then
    :meth:`encode_to` / :meth:`decode_from` move symbol streams through
    a :class:`~repro.video.bitstream.BitWriter` / ``BitReader``, and
    :meth:`encoded_bit_length` counts bits without materializing a
    stream (the fast path used when only byte counts are needed).
    """

    def __init__(self, lengths):
        if not lengths:
            raise ValueError("lengths must not be empty")
        # Canonical assignment: sort by (length, symbol repr) and hand
        # out consecutive codewords, shifting when the length grows.
        ordered = sorted(lengths.items(), key=lambda item: (item[1], repr(item[0])))
        self._length = dict(lengths)
        self._code = {}
        code = 0
        prev_len = ordered[0][1]
        for symbol, length in ordered:
            code <<= length - prev_len
            self._code[symbol] = code
            code += 1
            prev_len = length
        if code > (1 << prev_len):
            raise ValueError("code lengths violate the Kraft inequality")
        self._decode = {
            (length, self._code[symbol]): symbol for symbol, length in self._length.items()
        }
        self._max_length = max(self._length.values())

    @classmethod
    def from_frequencies(cls, frequencies):
        """Build the optimal code for a ``{symbol: count}`` mapping."""
        return cls(_code_lengths(dict(frequencies)))

    @classmethod
    def from_symbols(cls, symbols):
        """Build the optimal code for an observed symbol stream."""
        counts = Counter(symbols)
        if not counts:
            raise ValueError("symbol stream is empty")
        return cls.from_frequencies(counts)

    @property
    def alphabet(self):
        """The coded symbols."""
        return set(self._length)

    def code_length(self, symbol):
        """Codeword length in bits for ``symbol``."""
        try:
            return self._length[symbol]
        except KeyError:
            raise KeyError(f"symbol {symbol!r} is not in the code alphabet") from None

    def codeword(self, symbol):
        """``(code, length)`` pair for ``symbol``."""
        return self._code[symbol], self._length[symbol]

    def encoded_bit_length(self, symbols):
        """Total bits needed to encode ``symbols`` (no stream built)."""
        length = self._length
        try:
            return sum(length[s] for s in symbols)
        except KeyError as exc:
            raise KeyError(f"symbol {exc.args[0]!r} is not in the code alphabet") from None

    def encode_to(self, writer, symbols):
        """Append the codewords of ``symbols`` to a :class:`BitWriter`."""
        if not isinstance(writer, BitWriter):
            raise TypeError("writer must be a BitWriter")
        code, length = self._code, self._length
        for symbol in symbols:
            writer.write_bits(code[symbol], length[symbol])

    def decode_from(self, reader, n_symbols):
        """Read ``n_symbols`` symbols from a :class:`BitReader`."""
        if not isinstance(reader, BitReader):
            raise TypeError("reader must be a BitReader")
        out = []
        decode = self._decode
        for _ in range(n_symbols):
            code = 0
            length = 0
            while True:
                code = (code << 1) | reader.read_bit()
                length += 1
                symbol = decode.get((length, code))
                if symbol is not None:
                    out.append(symbol)
                    break
                if length > self._max_length:
                    raise ValueError("invalid bitstream: no codeword matches")
        return out

    def mean_code_length(self, frequencies):
        """Expected bits/symbol under a ``{symbol: count}`` usage."""
        total = sum(frequencies.values())
        if total <= 0:
            raise ValueError("frequencies must have positive total")
        return sum(self._length[s] * f for s, f in frequencies.items()) / total

    def __len__(self):
        return len(self._length)

    def __repr__(self):
        return f"HuffmanCode(alphabet_size={len(self._length)}, max_length={self._max_length})"
