"""Interframe (MPEG-style) coding: the paper's noted extension.

The paper studies an *intraframe* code and remarks that "greater
compression, burstiness and much stronger dependence on motion result
from interframe coding" and that its main results "do seem to extend to
interframe (MPEG) video as well [GARR93a]" (see also [PANC94]).  This
module builds that extension:

- :class:`InterframeCodec` codes frame *differences* against the
  previous reconstructed frame (DPCM in the pel domain) with periodic
  intra refresh -- a GOP structure of one I frame followed by
  ``gop_size - 1`` P frames.  Static scenes cost almost nothing; scene
  changes and motion produce large P frames, so the bandwidth process
  is burstier and more motion-dependent than the intraframe one.
- :func:`synthesize_mpeg_trace` produces an MPEG-like bandwidth trace:
  the calibrated scene-level process of
  :mod:`repro.video.starwars` modulated by a deterministic
  I/P/B GOP pattern, reproducing the strong frame-rate periodicities
  and the higher burstiness reported for MPEG VBR video.
"""

from __future__ import annotations

import numpy as np

from repro._validation import require_positive, require_positive_int
from repro.video.codec import IntraframeCodec
from repro.video.trace import VBRTrace

__all__ = ["InterframeCodec", "synthesize_mpeg_trace", "DEFAULT_GOP_PATTERN"]

DEFAULT_GOP_PATTERN = "IBBPBBPBBPBB"
"""The classical MPEG-1 12-frame GOP."""


class InterframeCodec:
    """Differential (interframe) coder with periodic intra refresh.

    Parameters
    ----------
    quant_step:
        Quantizer step for both I and P frames.
    gop_size:
        An I frame is coded every ``gop_size`` frames; the rest are P
        frames coding the difference against the previous
        reconstruction.
    block_size, slices_per_frame:
        As for :class:`~repro.video.codec.IntraframeCodec`.

    The coder is stateful across :meth:`encode_next` calls (it tracks
    the previous reconstruction); :meth:`reset` or a new instance
    starts a fresh GOP.
    """

    def __init__(self, quant_step=16.0, gop_size=12, block_size=8, slices_per_frame=30):
        self.gop_size = require_positive_int(gop_size, "gop_size")
        self._intra = IntraframeCodec(
            quant_step=quant_step, block_size=block_size, slices_per_frame=slices_per_frame
        )
        # Difference signals are centered at zero; reuse the intra
        # machinery with a +128 offset so the "-128 centering" in
        # encode_frame cancels out.
        self.quant_step = self._intra.quant_step
        self.slices_per_frame = self._intra.slices_per_frame
        self.reset()

    def reset(self):
        """Forget the prediction state; the next frame is an I frame."""
        self._previous = None
        self._index = 0

    def encode_next(self, frame):
        """Code the next frame of the sequence.

        Returns ``(frame_type, total_bytes, slice_bytes, reconstruction)``
        where ``frame_type`` is ``"I"`` or ``"P"``.
        """
        frame = np.asarray(frame, dtype=float)
        is_intra = self._previous is None or self._index % self.gop_size == 0
        if is_intra:
            encoded = self._intra.encode_frame(frame)
            recon = self._intra.decode_frame(encoded)
            frame_type = "I"
        else:
            residual = frame - self._previous
            # Shift the residual so the intra pipeline's -128 centering
            # yields the residual itself.  Decode WITHOUT pel clamping:
            # residuals legitimately span +-255, far beyond [0, 255]
            # after the shift, and clamping would corrupt scene-change
            # P frames until the next intra refresh.
            encoded = self._intra.encode_frame(residual + 128.0)
            decoded = self._intra.decode_frame(encoded, clip=False)
            recon = np.clip(self._previous + (decoded - 128.0), 0.0, 255.0)
            frame_type = "P"
        self._previous = recon
        self._index += 1
        return frame_type, encoded.total_bytes, encoded.slice_bytes, recon

    def encode_movie(self, frames, frame_rate=24.0):
        """Code a movie; returns ``(VBRTrace, frame_types)``."""
        self.reset()
        frame_bytes = []
        slice_bytes = []
        types = []
        for frame in frames:
            frame_type, total, slices, _ = self.encode_next(frame)
            frame_bytes.append(total)
            slice_bytes.append(slices)
            types.append(frame_type)
        if not frame_bytes:
            raise ValueError("frames iterable is empty")
        trace = VBRTrace(
            np.asarray(frame_bytes, dtype=float),
            frame_rate=frame_rate,
            slices_per_frame=self.slices_per_frame,
            slice_bytes=np.concatenate(slice_bytes).astype(float),
        )
        return trace, types

    def __repr__(self):
        return (
            f"InterframeCodec(quant_step={self.quant_step:g}, gop_size={self.gop_size}, "
            f"slices_per_frame={self.slices_per_frame})"
        )


def _gop_multipliers(pattern, i_scale, p_scale, b_scale):
    """Per-frame-type byte multipliers for one GOP pattern."""
    mapping = {"I": i_scale, "P": p_scale, "B": b_scale}
    try:
        return np.array([mapping[ch] for ch in pattern], dtype=float)
    except KeyError as exc:
        raise ValueError(f"GOP pattern may only contain I/P/B, got {exc.args[0]!r}") from None


def synthesize_mpeg_trace(
    n_frames=20_000,
    seed=0,
    gop_pattern=DEFAULT_GOP_PATTERN,
    i_scale=5.0,
    p_scale=2.0,
    b_scale=1.0,
    mean=None,
    hurst=0.8,
    frame_rate=24.0,
    slices_per_frame=30,
):
    """Synthesize an MPEG-like (interframe) VBR bandwidth trace.

    The scene-level intraframe synthesis of
    :func:`repro.video.starwars.synthesize_starwars_trace` provides the
    long-range dependent "activity" process; each frame's bytes are
    then scaled by its GOP-position multiplier (I >> P > B) and the
    whole trace rescaled to the requested ``mean`` (default: the
    intraframe mean divided by the classical interframe compression
    advantage of ~3, i.e. ~9,260 bytes/frame).

    The result reproduces the published qualitative features of MPEG
    VBR traces: strong GOP-frequency periodicity in the spectrum,
    higher peak/mean and CoV than intraframe coding, and unchanged
    long-range dependence (aggregating over whole GOPs removes the
    deterministic periodicity and exposes the same H).
    """
    from repro.video.starwars import synthesize_starwars_trace

    n_frames = require_positive_int(n_frames, "n_frames")
    if not gop_pattern or not isinstance(gop_pattern, str):
        raise ValueError("gop_pattern must be a non-empty string of I/P/B")
    if gop_pattern[0] != "I":
        raise ValueError("gop_pattern must start with an I frame")
    i_scale = require_positive(i_scale, "i_scale")
    p_scale = require_positive(p_scale, "p_scale")
    b_scale = require_positive(b_scale, "b_scale")
    base = synthesize_starwars_trace(
        n_frames=n_frames, seed=seed, hurst=hurst, frame_rate=frame_rate,
        with_slices=False,
    )
    activity = base.frame_bytes
    multipliers = _gop_multipliers(gop_pattern, i_scale, p_scale, b_scale)
    pattern = np.tile(multipliers, n_frames // multipliers.size + 1)[:n_frames]
    x = activity * pattern
    if mean is None:
        mean = float(np.mean(activity)) / 3.0
    mean = require_positive(mean, "mean")
    x *= mean / np.mean(x)
    return VBRTrace(
        np.rint(np.maximum(x, 1.0)),
        frame_rate=frame_rate,
        slices_per_frame=slices_per_frame,
    )
