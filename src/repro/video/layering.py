"""Layered (two-priority) video coding.

The paper's Section 5.3 and its companion work [GARR93] argue that
packet-loss degradation should be handled with *layered* coding plus a
priority queueing discipline: a base layer carrying the essential
picture (protected by the network) and an enhancement layer that may be
dropped under congestion.

Two layering mechanisms are provided:

- :func:`layer_frame_blocks` / :meth:`LayeredIntraframeCodec.encode_frame`
  perform **codec-level** layering: the first ``n_base_coeffs``
  zig-zag coefficients of every block (DC + low spatial frequencies)
  form the base layer, the remaining high-frequency coefficients the
  enhancement layer, each with its own run-length + Huffman stream.
- :func:`layer_series` performs **trace-level** layering for traces
  without per-coefficient detail: a calibrated fraction of each
  frame's bytes is assigned to the base layer (the paper notes the
  layering overhead is small, so byte-level splitting preserves the
  totals).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro._validation import as_1d_float_array, require_in_open_interval, require_positive_int
from repro.video.codec import IntraframeCodec
from repro.video.dct import blockwise_dct
from repro.video.huffman import HuffmanCode
from repro.video.quantize import quantize
from repro.video.rle import rle_encode_block
from repro.video.zigzag import zigzag_scan

__all__ = ["LayeredFrame", "LayeredIntraframeCodec", "layer_series"]


@dataclass(frozen=True)
class LayeredFrame:
    """Byte accounting of one frame coded into two layers."""

    base_bytes: int
    """Bytes in the base (high-priority) layer."""

    enhancement_bytes: int
    """Bytes in the enhancement (droppable) layer."""

    n_base_coeffs: int
    """Zig-zag coefficients per block assigned to the base layer."""

    @property
    def total_bytes(self):
        """Total coded bytes across both layers."""
        return self.base_bytes + self.enhancement_bytes

    @property
    def base_fraction(self):
        """Share of the frame's bytes carried by the base layer."""
        total = self.total_bytes
        return self.base_bytes / total if total else 0.0


class LayeredIntraframeCodec(IntraframeCodec):
    """Intraframe codec producing a base + enhancement layer per frame.

    Parameters are those of :class:`~repro.video.codec.IntraframeCodec`
    plus ``n_base_coeffs``: how many zig-zag coefficients per 8x8 block
    (DC first) belong to the base layer.  More base coefficients mean a
    larger protected layer and a smaller droppable one.
    """

    def __init__(self, quant_step=16.0, block_size=8, slices_per_frame=30, n_base_coeffs=6):
        super().__init__(quant_step=quant_step, block_size=block_size,
                         slices_per_frame=slices_per_frame)
        n_max = self.block_size * self.block_size
        self.n_base_coeffs = require_positive_int(n_base_coeffs, "n_base_coeffs")
        if self.n_base_coeffs >= n_max:
            raise ValueError(
                f"n_base_coeffs must be < {n_max} (block has {n_max} coefficients)"
            )

    def encode_frame_layered(self, frame):
        """Code one frame into two layers; returns a :class:`LayeredFrame`.

        Each layer gets its own Huffman table (built from its own
        symbol statistics) and its amplitude bits, exactly as the
        single-layer codec does -- the layering overhead is therefore
        the small loss of cross-layer entropy coding, matching the
        paper's remark that "the layering overhead is small".
        """
        padded = self._pad(frame)
        coeffs = blockwise_dct(padded - 128.0, self.block_size, matrix=self._dct_matrix)
        levels = quantize(coeffs, self.quant_step)
        nbh, nbw = levels.shape[:2]
        k = self.n_base_coeffs
        layer_bits = [0, 0]
        streams = ([], [])
        frequencies = (Counter(), Counter())
        for row in range(nbh):
            for col in range(nbw):
                vector = zigzag_scan(levels[row, col])
                parts = (vector[:k], vector[k:])
                for layer, part in enumerate(parts):
                    symbols, amplitudes = rle_encode_block(part)
                    streams[layer].append((symbols, amplitudes))
                    frequencies[layer].update(symbols)
        for layer in (0, 1):
            code = HuffmanCode.from_frequencies(frequencies[layer])
            for symbols, amplitudes in streams[layer]:
                layer_bits[layer] += code.encoded_bit_length(symbols)
                layer_bits[layer] += sum(size for _, size in amplitudes)
        return LayeredFrame(
            base_bytes=int(np.ceil(layer_bits[0] / 8.0)),
            enhancement_bytes=int(np.ceil(layer_bits[1] / 8.0)),
            n_base_coeffs=k,
        )

    def encode_movie_layered(self, frames):
        """Code a movie; returns ``(base_series, enhancement_series)``."""
        base = []
        enh = []
        for frame in frames:
            layered = self.encode_frame_layered(frame)
            base.append(layered.base_bytes)
            enh.append(layered.enhancement_bytes)
        if not base:
            raise ValueError("frames iterable is empty")
        return np.asarray(base, dtype=float), np.asarray(enh, dtype=float)


def layer_series(series, base_fraction=0.4):
    """Trace-level layering: split each slot's bytes into two layers.

    Returns ``(base, enhancement)`` with
    ``base = round(base_fraction * series)`` element-wise; totals are
    preserved exactly (enhancement absorbs the rounding).
    """
    arr = as_1d_float_array(series, "series")
    require_in_open_interval(base_fraction, "base_fraction", 0.0, 1.0)
    base = np.rint(base_fraction * arr)
    return base, arr - base
