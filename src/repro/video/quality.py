"""Objective picture-quality metrics for the codec.

The paper assesses its coding as "reasonable, except that block
boundaries are noticeable in some cases" -- i.e. blockiness is the
dominant artifact of a fixed-quantizer DCT coder.  This module
provides the standard objective measures used to quantify that:

- :func:`mse` / :func:`psnr` -- global distortion;
- :func:`blockiness` -- the ratio of the mean luminance discontinuity
  across 8x8 block boundaries to the discontinuity inside blocks (1.0
  for an uncoded image, rising as block edges appear);
- :func:`quality_report` -- everything at once, per frame.
"""

from __future__ import annotations

import numpy as np

from repro._validation import require_positive_int

__all__ = ["mse", "psnr", "blockiness", "quality_report"]


def _as_image_pair(original, reconstructed):
    a = np.asarray(original, dtype=float)
    b = np.asarray(reconstructed, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"image shapes differ: {a.shape} vs {b.shape}")
    if a.ndim != 2:
        raise ValueError(f"images must be 2-D, got shape {a.shape}")
    return a, b


def mse(original, reconstructed):
    """Mean squared pel error."""
    a, b = _as_image_pair(original, reconstructed)
    return float(np.mean((a - b) ** 2))


def psnr(original, reconstructed, peak=255.0):
    """Peak signal-to-noise ratio in dB (inf for identical images)."""
    error = mse(original, reconstructed)
    if error == 0:
        return float("inf")
    return float(10.0 * np.log10(peak**2 / error))


def blockiness(image, block_size=8):
    """Block-boundary artifact measure.

    The mean absolute luminance step across block boundaries (both
    orientations) divided by the mean absolute step at non-boundary
    positions.  Natural images score ~1; DCT block artifacts push the
    score above 1 because quantization decorrelates adjacent blocks.
    """
    img = np.asarray(image, dtype=float)
    if img.ndim != 2:
        raise ValueError(f"image must be 2-D, got shape {img.shape}")
    b = require_positive_int(block_size, "block_size")
    h, w = img.shape
    if h < 2 * b or w < 2 * b:
        raise ValueError(f"image {img.shape} too small for block size {b}")
    # Vertical steps (between row r and r+1).
    dv = np.abs(np.diff(img, axis=0))
    rows = np.arange(h - 1)
    v_boundary = dv[(rows + 1) % b == 0]
    v_interior = dv[(rows + 1) % b != 0]
    # Horizontal steps.
    dh = np.abs(np.diff(img, axis=1))
    cols = np.arange(w - 1)
    h_boundary = dh[:, (cols + 1) % b == 0]
    h_interior = dh[:, (cols + 1) % b != 0]
    boundary = float(np.mean(np.concatenate((v_boundary.ravel(), h_boundary.ravel()))))
    interior = float(np.mean(np.concatenate((v_interior.ravel(), h_interior.ravel()))))
    if interior <= 0:
        return float("inf") if boundary > 0 else 1.0
    return boundary / interior


def quality_report(original, reconstructed, block_size=8):
    """All quality measures for one coded frame.

    Returns a dict with ``"mse"``, ``"psnr_db"``,
    ``"blockiness_original"``, ``"blockiness_coded"`` and
    ``"blockiness_increase"`` (coded over original; > 1 means the codec
    introduced visible block structure).
    """
    a, b = _as_image_pair(original, reconstructed)
    block_orig = blockiness(a, block_size)
    block_coded = blockiness(b, block_size)
    return {
        "mse": mse(a, b),
        "psnr_db": psnr(a, b),
        "blockiness_original": block_orig,
        "blockiness_coded": block_coded,
        "blockiness_increase": block_coded / block_orig if block_orig > 0 else float("inf"),
    }
