"""Rate-controlled (CBR-style) coding: the quality cost of constant rate.

The paper's introduction argues that forcing a constant transmission
rate "results in delay, wasted bandwidth, and modulation of the video
quality", and its Conclusions note that the dataset was produced "by
fixing the quantizer step size" (constant quality, variable rate).
:class:`RateControlledCodec` implements the opposite regime for
comparison: a closed-loop coder that adjusts the quantizer step each
frame to hold the byte rate near a target, exactly as a CBR coder's
rate-control loop does.

The contrast (exercised by the tests) is the paper's point in
miniature: rate control collapses the byte-rate variability but pushes
the variability into the quantizer step -- i.e., into picture quality.
"""

from __future__ import annotations

import numpy as np

from repro._validation import require_in_open_interval, require_positive
from repro.video.codec import IntraframeCodec
from repro.video.trace import VBRTrace

__all__ = ["RateControlledCodec"]


class RateControlledCodec:
    """Intraframe coder with multiplicative rate feedback.

    Parameters
    ----------
    target_bytes:
        Desired bytes per frame.
    initial_quant_step:
        Starting quantizer step.
    gain:
        Feedback strength in (0, 1]: after each frame the step is
        multiplied by ``(actual / target) ** gain`` (more bytes than
        the target -> coarser quantizer next frame).
    min_step, max_step:
        Clamp range for the quantizer step.
    slices_per_frame, block_size:
        Passed through to the underlying intraframe codec.
    """

    def __init__(
        self,
        target_bytes,
        initial_quant_step=16.0,
        gain=0.7,
        min_step=1.0,
        max_step=512.0,
        slices_per_frame=30,
        block_size=8,
    ):
        self.target_bytes = require_positive(target_bytes, "target_bytes")
        self.gain = require_in_open_interval(gain, "gain", 0.0, 1.0 + 1e-12)
        self.min_step = require_positive(min_step, "min_step")
        self.max_step = require_positive(max_step, "max_step")
        if self.min_step >= self.max_step:
            raise ValueError("min_step must be below max_step")
        self._step = float(np.clip(initial_quant_step, self.min_step, self.max_step))
        self._slices_per_frame = slices_per_frame
        self._block_size = block_size

    @property
    def quant_step(self):
        """The current (adapted) quantizer step."""
        return self._step

    def encode_next(self, frame):
        """Code one frame at the current step, then adapt the step.

        Returns ``(total_bytes, quant_step_used, encoded_frame)``.
        """
        codec = IntraframeCodec(
            quant_step=self._step,
            block_size=self._block_size,
            slices_per_frame=self._slices_per_frame,
        )
        encoded = codec.encode_frame(frame)
        used = self._step
        ratio = max(encoded.total_bytes, 1.0) / self.target_bytes
        self._step = float(np.clip(self._step * ratio**self.gain, self.min_step, self.max_step))
        return encoded.total_bytes, used, encoded

    def encode_movie(self, frames, frame_rate=24.0):
        """Code a movie under rate control.

        Returns ``(VBRTrace, quant_steps)`` where ``quant_steps`` holds
        the step used for each frame -- the quality-modulation record.
        """
        frame_bytes = []
        steps = []
        for frame in frames:
            total, used, _ = self.encode_next(frame)
            frame_bytes.append(total)
            steps.append(used)
        if not frame_bytes:
            raise ValueError("frames iterable is empty")
        trace = VBRTrace(
            np.asarray(frame_bytes, dtype=float),
            frame_rate=frame_rate,
            slices_per_frame=self._slices_per_frame,
        )
        return trace, np.asarray(steps)

    def __repr__(self):
        return (
            f"RateControlledCodec(target_bytes={self.target_bytes:g}, "
            f"quant_step={self._step:.3g}, gain={self.gain:g})"
        )
