"""JPEG-style run-length coding of zig-zag scanned coefficients.

Each quantized block vector (DC coefficient first, then 63 AC
coefficients in zig-zag order) is converted to a stream of symbols:

- the DC coefficient becomes ``("DC", size)`` where ``size`` is the
  magnitude category (bit length of ``|value|``), followed by ``size``
  amplitude bits;
- each nonzero AC coefficient becomes ``("AC", run, size)`` where
  ``run`` (0-15) counts the zeros preceding it; runs longer than 15
  emit the ZRL symbol ``("AC", 15, 0)``;
- a trailing run of zeros is replaced by the end-of-block symbol
  ``("EOB",)``.

Amplitudes use JPEG's one's-complement convention so that ``size``
bits suffice for both signs.  The symbols feed the Huffman coder; the
amplitude bits are appended verbatim.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "EOB",
    "ZRL",
    "magnitude_category",
    "encode_amplitude",
    "decode_amplitude",
    "rle_encode_block",
    "rle_decode_block",
]

EOB = ("EOB",)
"""End-of-block symbol: the rest of the block is zero."""

ZRL = ("AC", 15, 0)
"""Zero-run-length symbol: sixteen consecutive zero coefficients."""


def magnitude_category(value):
    """JPEG magnitude category: bit length of ``|value|`` (0 for 0)."""
    return int(abs(int(value))).bit_length()


def encode_amplitude(value):
    """``(bits, n_bits)`` for a coefficient in one's-complement form.

    Positive values are sent verbatim in ``size`` bits; negative values
    are sent as ``value + 2**size - 1`` (which clears the top bit, so
    the decoder can recover the sign).
    """
    value = int(value)
    size = magnitude_category(value)
    if size == 0:
        return 0, 0
    if value > 0:
        return value, size
    return value + (1 << size) - 1, size


def decode_amplitude(bits, size):
    """Inverse of :func:`encode_amplitude`."""
    if size == 0:
        return 0
    if bits >> (size - 1):
        return bits
    return bits - (1 << size) + 1


def rle_encode_block(coeffs):
    """Run-length encode one zig-zag scanned block vector.

    Returns ``(symbols, amplitudes)`` where ``symbols`` is a list of
    hashable tuples for the Huffman coder and ``amplitudes`` the
    matching list of ``(bits, n_bits)`` pairs (entries for symbols
    without amplitude, such as EOB and ZRL, carry ``(0, 0)``).
    """
    coeffs = np.asarray(coeffs)
    if coeffs.ndim != 1 or coeffs.size < 1:
        raise ValueError(f"coeffs must be a non-empty 1-D vector, got shape {coeffs.shape}")
    symbols = []
    amplitudes = []
    dc = int(coeffs[0])
    bits, size = encode_amplitude(dc)
    symbols.append(("DC", size))
    amplitudes.append((bits, size))
    run = 0
    for value in coeffs[1:]:
        value = int(value)
        if value == 0:
            run += 1
            continue
        while run > 15:
            symbols.append(ZRL)
            amplitudes.append((0, 0))
            run -= 16
        bits, size = encode_amplitude(value)
        symbols.append(("AC", run, size))
        amplitudes.append((bits, size))
        run = 0
    if run > 0:
        symbols.append(EOB)
        amplitudes.append((0, 0))
    return symbols, amplitudes


def rle_decode_block(symbols, amplitudes, block_length=64):
    """Rebuild the zig-zag coefficient vector from an RLE stream.

    ``symbols`` / ``amplitudes`` must describe exactly one block.
    """
    if len(symbols) != len(amplitudes):
        raise ValueError("symbols and amplitudes must have equal length")
    if not symbols or symbols[0][0] != "DC":
        raise ValueError("block stream must start with a DC symbol")
    out = np.zeros(block_length, dtype=np.int64)
    bits, size = amplitudes[0]
    if size != symbols[0][1]:
        raise ValueError("DC amplitude size disagrees with its symbol")
    out[0] = decode_amplitude(bits, size)
    pos = 1
    for symbol, (bits, size) in zip(symbols[1:], amplitudes[1:]):
        if symbol == EOB:
            break
        if symbol[0] != "AC":
            raise ValueError(f"unexpected symbol {symbol!r} inside block")
        _, run, sym_size = symbol
        if sym_size != size:
            raise ValueError("AC amplitude size disagrees with its symbol")
        pos += run
        if symbol == ZRL:
            pos += 1
            continue
        if pos >= block_length:
            raise ValueError("RLE stream overruns the block")
        out[pos] = decode_amplitude(bits, size)
        pos += 1
    return out
