"""Scene scripts: the hierarchical time structure of a movie.

The paper explains the intuition for long-range dependence in
entertainment video (Section 3.2.1): within a scene there is random
motion; camera changes shift the complexity level on a longer time
scale; scenes cluster into similar-type groups as the plot evolves; and
the story arc modulates everything on the scale of the whole film
(Fig. 2's description: intense introduction, placid second quarter,
building conflict, a slight pause, then a climactic finale).

This module generates that hierarchy explicitly:

- scene *durations* are heavy-tailed (Pareto), which by itself induces
  long-range dependence in the resulting level process (the classical
  heavy-tailed renewal argument gives ``H = (3 - alpha) / 2``);
- scene *levels* follow an AR(1) across scenes (clustering) around the
  deterministic-shaped story arc;
- some scenes *alternate* between two levels, imitating the camera
  switching between two viewpoints (e.g. a dialogue), a short-range
  feature the paper observes in the intraframe trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._validation import require_positive, require_positive_int

__all__ = ["Scene", "SceneScript", "generate_scene_script", "story_arc"]

# Control points (position in [0,1], relative complexity) following the
# paper's narrative description of the movie's pacing.
_ARC_POSITIONS = np.array([0.00, 0.04, 0.10, 0.25, 0.35, 0.50, 0.62, 0.70, 0.82, 0.93, 0.97, 1.00])
_ARC_LEVELS = np.array([1.18, 1.12, 0.95, 0.86, 0.88, 1.00, 1.06, 0.99, 1.10, 1.22, 1.08, 1.02])


def story_arc(t):
    """Relative complexity level of the story arc at position ``t``.

    ``t`` is the fraction of the movie elapsed, in [0, 1]; the returned
    multiplier averages ~1.  Evaluated by interpolation through control
    points that encode: intense introduction, placid second quarter,
    rising conflict, slight pause, climactic finale.
    """
    t = np.asarray(t, dtype=float)
    if np.any((t < 0) | (t > 1)):
        raise ValueError("story-arc position t must lie in [0, 1]")
    out = np.interp(t, _ARC_POSITIONS, _ARC_LEVELS)
    return out if out.ndim else float(out)


@dataclass(frozen=True)
class Scene:
    """One scene of a movie."""

    start_frame: int
    """First frame index of the scene."""

    n_frames: int
    """Scene duration in frames."""

    level: float
    """Relative complexity level (multiplier around 1)."""

    activity: float
    """Relative motion/within-scene variability (multiplier around 1)."""

    alternation_period: int = 0
    """If > 0, the scene alternates viewpoint every this many frames."""

    alternation_depth: float = 0.0
    """Relative level difference between the two alternating views."""

    @property
    def end_frame(self):
        """One past the scene's final frame index."""
        return self.start_frame + self.n_frames


@dataclass(frozen=True)
class SceneScript:
    """A full movie's worth of scenes."""

    n_frames: int
    """Total number of frames covered."""

    scenes: tuple = field(repr=False)
    """The scenes, in order, exactly tiling ``[0, n_frames)``."""

    def __post_init__(self):
        if not self.scenes:
            raise ValueError("a scene script must contain at least one scene")
        position = 0
        for scene in self.scenes:
            if scene.start_frame != position:
                raise ValueError(
                    f"scene starting at {scene.start_frame} does not tile the script "
                    f"(expected start {position})"
                )
            position = scene.end_frame
        if position != self.n_frames:
            raise ValueError(f"scenes cover {position} frames, script declares {self.n_frames}")

    def __len__(self):
        return len(self.scenes)

    def scene_at(self, frame_index):
        """The :class:`Scene` containing ``frame_index`` (binary search)."""
        if not 0 <= frame_index < self.n_frames:
            raise IndexError(f"frame index {frame_index} out of range [0, {self.n_frames})")
        starts = [scene.start_frame for scene in self.scenes]
        pos = int(np.searchsorted(starts, frame_index, side="right")) - 1
        return self.scenes[pos]

    def frame_levels(self):
        """Per-frame relative complexity level, including alternation.

        Alternating scenes switch between ``level`` and
        ``level * (1 - alternation_depth)`` every
        ``alternation_period`` frames, imitating camera cuts between
        two viewpoints.
        """
        out = np.empty(self.n_frames)
        for scene in self.scenes:
            sl = slice(scene.start_frame, scene.end_frame)
            if scene.alternation_period > 0 and scene.alternation_depth > 0:
                local = np.arange(scene.n_frames) // scene.alternation_period
                view_b = (local % 2).astype(bool)
                levels = np.where(view_b, scene.level * (1.0 - scene.alternation_depth), scene.level)
                out[sl] = levels
            else:
                out[sl] = scene.level
        return out

    def frame_activity(self):
        """Per-frame relative activity (motion) level."""
        out = np.empty(self.n_frames)
        for scene in self.scenes:
            out[scene.start_frame : scene.end_frame] = scene.activity
        return out


def generate_scene_script(
    n_frames,
    rng=None,
    min_scene_frames=24,
    duration_tail_shape=1.4,
    cluster_phi=0.6,
    level_sigma=0.22,
    arc_weight=1.0,
    alternation_probability=0.18,
):
    """Generate a random scene script with heavy-tailed scene durations.

    Parameters
    ----------
    n_frames:
        Total length of the movie in frames.
    rng:
        :class:`numpy.random.Generator`.
    min_scene_frames:
        Minimum scene duration (Pareto location ``k``); 24 frames = 1 s.
    duration_tail_shape:
        Pareto shape ``alpha`` for scene durations.  ``1 < alpha < 2``
        gives infinite-variance durations and long-range dependence with
        ``H = (3 - alpha) / 2`` (1.4 -> H = 0.8).
    cluster_phi:
        AR(1) coefficient of the scene-to-scene level clustering.
    level_sigma:
        Standard deviation of the per-scene log-level innovation.
    arc_weight:
        Exponent applied to the story-arc multiplier (0 disables it).
    alternation_probability:
        Probability that a scene alternates between two viewpoints.
    """
    n_frames = require_positive_int(n_frames, "n_frames")
    min_scene_frames = require_positive_int(min_scene_frames, "min_scene_frames")
    duration_tail_shape = require_positive(duration_tail_shape, "duration_tail_shape")
    if rng is None:
        rng = np.random.default_rng()
    scenes = []
    position = 0
    cluster = 0.0
    innovation_sd = level_sigma * np.sqrt(max(1.0 - cluster_phi**2, 1e-12))
    while position < n_frames:
        u = rng.uniform()
        duration = int(np.ceil(min_scene_frames * (1.0 - u) ** (-1.0 / duration_tail_shape)))
        duration = min(duration, n_frames - position)
        # Avoid a stub scene shorter than the minimum at the very end.
        if n_frames - (position + duration) < min_scene_frames:
            duration = n_frames - position
        cluster = cluster_phi * cluster + rng.normal(0.0, innovation_sd)
        t_mid = (position + duration / 2.0) / n_frames
        level = float(story_arc(t_mid) ** arc_weight * np.exp(cluster))
        activity = float(np.exp(rng.normal(0.0, 0.3)))
        if rng.uniform() < alternation_probability and duration >= 4 * min_scene_frames:
            period = int(rng.integers(12, 40))
            depth = float(rng.uniform(0.05, 0.3))
        else:
            period, depth = 0, 0.0
        scenes.append(
            Scene(
                start_frame=position,
                n_frames=duration,
                level=level,
                activity=activity,
                alternation_period=period,
                alternation_depth=depth,
            )
        )
        position += duration
    return SceneScript(n_frames=n_frames, scenes=tuple(scenes))
