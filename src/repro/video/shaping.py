"""Traffic shaping: peak clipping, leaky-bucket smoothing, CBR transport.

Two recommendations from the paper's Conclusions are implemented here:

- *"A few extremely high peaks exist in the data, which are
  problematic for the network.  We recommend that a realistic VBR
  coder should clip such peaks, rather than send them into the
  network."* -- :func:`clip_peaks` caps the per-frame byte count at a
  quantile (or absolute) ceiling and reports how much information the
  coder would have to absorb by degrading quality.

- The introduction's motivation: *"Forcing the transmission rate to be
  constant results in delay, wasted bandwidth, and modulation of the
  video quality."* -- :func:`cbr_smoothing_delay` computes the coder
  buffer (and hence delay) needed to carry a VBR trace over a CBR
  channel of a given rate, and :func:`leaky_bucket` implements the
  classical rate/bucket shaper, making the CBR-vs-VBR resource
  comparison quantitative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import as_1d_float_array, require_positive
from repro.video.trace import VBRTrace

__all__ = ["ClipResult", "clip_peaks", "leaky_bucket", "cbr_smoothing_delay"]


@dataclass(frozen=True)
class ClipResult:
    """Outcome of peak clipping."""

    trace: VBRTrace
    """The clipped trace."""

    ceiling: float
    """The byte ceiling applied per frame."""

    clipped_frames: int
    """Number of frames that hit the ceiling."""

    clipped_bytes: float
    """Total bytes removed (quality the coder must absorb)."""

    clipped_fraction: float
    """Removed bytes as a fraction of the total."""


def clip_peaks(trace, quantile=None, ceiling=None):
    """Clip extreme frame peaks at a quantile or absolute ceiling.

    Exactly one of ``quantile`` (e.g. 0.999) or ``ceiling`` (bytes per
    frame) must be given.  Slice data, when present, is scaled down
    proportionally within each clipped frame so slices still sum to the
    frame total.

    Returns a :class:`ClipResult`; ``result.trace`` is a new trace,
    the input is left untouched.
    """
    if not isinstance(trace, VBRTrace):
        raise TypeError("trace must be a VBRTrace")
    if (quantile is None) == (ceiling is None):
        raise ValueError("specify exactly one of quantile= or ceiling=")
    x = trace.frame_bytes
    if quantile is not None:
        if not 0.0 < quantile < 1.0:
            raise ValueError(f"quantile must lie in (0, 1), got {quantile!r}")
        ceiling = float(np.quantile(x, quantile))
    ceiling = require_positive(ceiling, "ceiling")
    clipped = np.minimum(x, ceiling)
    mask = x > ceiling
    slice_bytes = None
    if trace.has_slice_data:
        spf = trace.slices_per_frame
        slices = trace.slice_bytes.reshape(-1, spf).copy()
        scale = np.where(x > 0, clipped / np.maximum(x, 1e-12), 1.0)
        slices *= scale[:, None]
        # Re-round while preserving the per-frame sum.
        base = np.floor(slices)
        target = np.rint(clipped)
        shortfall = np.rint(target - base.sum(axis=1)).astype(np.intp)
        frac = slices - base
        rank = np.argsort(np.argsort(-frac, axis=1, kind="stable"), axis=1)
        base += rank < shortfall[:, None]
        slice_bytes = base.reshape(-1)
        clipped = target
    result_trace = VBRTrace(
        clipped,
        frame_rate=trace.frame_rate,
        slices_per_frame=trace.slices_per_frame,
        slice_bytes=slice_bytes,
    )
    removed = float(np.sum(x - np.minimum(x, ceiling)))
    return ClipResult(
        trace=result_trace,
        ceiling=float(ceiling),
        clipped_frames=int(np.count_nonzero(mask)),
        clipped_bytes=removed,
        clipped_fraction=removed / float(np.sum(x)),
    )


def leaky_bucket(series, rate_per_slot, bucket_bytes):
    """Leaky-bucket shaper: returns the conforming output series.

    Arrivals enter a bucket drained at ``rate_per_slot``; output in a
    slot is limited to ``rate_per_slot`` plus whatever bucket space
    admits -- i.e. the departure process of an infinite-FIFO with
    capacity ``rate_per_slot``, with the *backlog* capped by the
    declaration that anything above ``bucket_bytes`` of backlog is
    emitted unshaped (reported separately as non-conforming).

    Returns ``(shaped, nonconforming)`` where ``shaped[t]`` is the
    conforming departure in slot ``t`` and ``nonconforming[t]`` the
    excess that would violate the contract.
    """
    a = as_1d_float_array(series, "series")
    rate = require_positive(rate_per_slot, "rate_per_slot")
    bucket = require_positive(bucket_bytes, "bucket_bytes")
    shaped = np.empty(a.size)
    nonconforming = np.zeros(a.size)
    backlog = 0.0
    for t, arrival in enumerate(a.tolist()):
        backlog += arrival
        if backlog > bucket:
            nonconforming[t] = backlog - bucket
            backlog = bucket
        out = min(backlog, rate)
        shaped[t] = out
        backlog -= out
    return shaped, nonconforming


def cbr_smoothing_delay(series, rate_per_slot, slot_seconds):
    """Coder-side buffering needed to send a VBR trace over CBR.

    With a constant channel of ``rate_per_slot`` bytes per slot, the
    coder buffers whatever the channel cannot carry immediately; the
    maximum backlog divided by the rate is the worst-case added delay
    (the "delay" cost of CBR transport from the paper's introduction).

    Returns a dict with ``"max_backlog_bytes"``, ``"max_delay_seconds"``
    and ``"utilization"`` (mean rate over channel rate).  Raises if the
    channel is slower than the mean rate (the buffer would grow without
    bound).
    """
    a = as_1d_float_array(series, "series")
    rate = require_positive(rate_per_slot, "rate_per_slot")
    slot_seconds = require_positive(slot_seconds, "slot_seconds")
    mean_rate = float(np.mean(a))
    if rate < mean_rate:
        raise ValueError(
            f"CBR rate {rate:g} bytes/slot is below the mean rate {mean_rate:g}; "
            "the smoothing buffer would diverge"
        )
    from repro.simulation.queue import max_backlog

    backlog = max_backlog(a, rate)
    return {
        "max_backlog_bytes": backlog,
        "max_delay_seconds": backlog / rate * slot_seconds,
        "utilization": mean_rate / rate,
    }
