"""Calibrated synthesizer for a Star-Wars-like two-hour VBR trace.

The paper's dataset -- 171,000 frames of intraframe-coded "Star Wars"
-- is proprietary (and the Bellcore ftp server is long gone), so this
module synthesizes a statistically faithful stand-in.  The synthesis is
*generative and hierarchical*, mirroring the paper's own explanation of
where the trace's structure comes from:

- a deterministic-shaped **story arc** (intense introduction, placid
  second quarter, building conflict, climactic finale -- Fig. 2);
- **scenes** with heavy-tailed (Pareto) durations, AR(1)-clustered
  complexity levels, and occasional two-view alternation
  (:mod:`repro.video.scenes`);
- a **fractional-Gaussian-noise** component representing the long-memory
  modulation of production style across all time scales;
- **within-scene AR(1)** fluctuations (the short-range structure that
  makes the empirical ACF look exponential up to ~100-300 lags);
- **landmark events** from the paper's Fig. 1 walkthrough: the opening
  text crawl (42 s), three extreme effects spikes near the center
  (hyperspace jumps, planet explosion) and the Death-Star explosion
  ~5 minutes before the end.

The combined (log-domain) process is then mapped through its ranks onto
an exact hybrid Gamma/Pareto marginal with the paper's Table 2 moments
(mean 27,791 B/frame, std 6,254 B/frame) -- a monotone transform that
preserves the time structure while pinning the marginal distribution.
Slice-level data (30 slices/frame) is synthesized with per-scene
spatial profiles calibrated to the paper's slice-level coefficient of
variation (0.31).

Substitution note (see DESIGN.md): every analysis in this repository
consumes only the statistics of the byte-per-frame process, so this
synthesizer preserves the behaviours that matter: heavy-tailed
marginals, H ~= 0.8 long-range dependence, exponential-then-hyperbolic
ACF, story-arc low-frequency content, and extreme effect peaks.
"""

from __future__ import annotations

import numpy as np

from repro._validation import require_in_open_interval, require_positive, require_positive_int
from repro.core.daviesharte import DaviesHarteGenerator
from repro.distributions.hybrid import GammaParetoHybrid
from repro.obs import metrics, trace
from repro.par import cache as _cache
from repro.video.scenes import generate_scene_script
from repro.video.trace import VBRTrace

__all__ = ["STARWARS_PARAMETERS", "synthesize_starwars_trace"]

_FRAMES = metrics.registry().counter(
    "repro_video_frames_total",
    help="Synthesized VBR video frames",
    unit="frames", labels={"trace": "starwars"},
)

STARWARS_PARAMETERS = {
    # Table 1 of the paper.
    "n_frames": 171_000,
    "frame_rate": 24.0,
    "slices_per_frame": 30,
    "frame_height": 480,
    "frame_width": 504,
    "bits_per_pel": 8,
    # Table 2 (frame resolution).
    "mean_frame_bytes": 27_791.0,
    "std_frame_bytes": 6_254.0,
    # Table 2 (slice resolution).
    "mean_slice_bytes": 926.4,
    "std_slice_bytes": 289.5,
    # Section 3/4 estimates.
    "hurst": 0.80,
    "tail_shape": 12.0,
    "tail_fraction": 0.03,
}
"""Published parameters of the paper's trace, used as synthesis targets."""


def _ar1_path(n, phi, rng):
    """Unit-variance stationary AR(1) path of length ``n`` (vectorized)."""
    from scipy import signal

    eps = rng.normal(0.0, np.sqrt(1.0 - phi**2), size=n)
    eps[0] = rng.normal(0.0, 1.0)
    return signal.lfilter([1.0], [1.0, -phi], eps)


def _landmark_boosts(n_frames, frame_rate):
    """Additive log-level boosts for the paper's Fig. 1 landmarks."""
    boosts = np.zeros(n_frames)
    fps = frame_rate

    def add(start, seconds, amount, ramp=0.25):
        length = max(int(seconds * fps), 1)
        end = min(start + length, n_frames)
        if end <= start:
            return
        window = np.ones(end - start)
        ramp_len = max(int(ramp * (end - start)), 1)
        window[:ramp_len] = np.linspace(0.3, 1.0, ramp_len)
        window[-ramp_len:] = np.linspace(1.0, 0.3, ramp_len)
        boosts[start:end] += amount * window

    # Opening text crawl: 42 seconds of high-complexity scrolling text.
    add(0, 42.0, 0.55, ramp=0.1)
    # Three extreme effect spikes near the center of the movie.
    add(int(0.47 * n_frames), 2.5, 1.6)
    add(int(0.50 * n_frames), 3.0, 1.9)
    add(int(0.53 * n_frames), 2.5, 1.6)
    # Death Star explosion, ~5 minutes before the end, 10 seconds.
    death_star = max(n_frames - int(300 * fps), 0)
    add(death_star, 10.0, 1.1)
    return boosts


def _rank_map(values, marginal):
    """Monotone map of ``values`` onto an exact target marginal."""
    n = values.size
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(n, dtype=float)
    ranks[order] = np.arange(1, n + 1, dtype=float)
    u = (ranks - 0.5) / n
    return np.asarray(marginal.ppf(u), dtype=float)


def _calibrated_marginal(mean, std, tail_shape, iterations=4):
    """Hybrid Gamma/Pareto whose *overall* moments match (mean, std).

    ``GammaParetoHybrid(mu, sigma, a)`` parameterizes the Gamma *body*;
    splicing in the Pareto tail shifts the overall mean and standard
    deviation slightly.  A few fixed-point iterations adjust the body
    parameters until the hybrid's true moments hit the targets.
    """
    mu, sigma = mean, std
    marginal = GammaParetoHybrid(mu, sigma, tail_shape)
    for _ in range(iterations):
        mu *= mean / marginal.mean()
        sigma *= std / marginal.std()
        marginal = GammaParetoHybrid(mu, sigma, tail_shape)
    return marginal


def _slice_split(frame_bytes, script, slices_per_frame, rng, profile_sd=0.15, frame_sd=0.15):
    """Split frame bytes into integer slice bytes with calibrated spread.

    Each scene gets a smooth spatial complexity profile over the slices
    (complex imagery is rarely uniform across the frame); every frame
    perturbs the profile with fresh noise.  The relative weight spread
    (~0.21) reproduces the paper's slice-level coefficient of variation
    of 0.31 given the frame-level 0.23.  Integerization uses the
    largest-remainder method so each frame's slices sum exactly to the
    frame's bytes.
    """
    n_frames = frame_bytes.size
    spf = slices_per_frame
    # Per-scene smooth profiles across the slice axis.
    n_scenes = len(script.scenes)
    raw = rng.normal(0.0, 1.0, size=(n_scenes, spf))
    # Two passes of a (0.25, 0.5, 0.25) smoothing kernel along the
    # slice axis: spatial complexity varies smoothly across a frame.
    for _ in range(2):
        raw = (
            0.5 * raw
            + 0.25 * np.roll(raw, 1, axis=1)
            + 0.25 * np.roll(raw, -1, axis=1)
        )
    profiles = 1.0 + profile_sd * raw / max(raw.std(), 1e-12)
    profiles = np.clip(profiles, 0.05, None)
    scene_of_frame = np.empty(n_frames, dtype=np.intp)
    for index, scene in enumerate(script.scenes):
        scene_of_frame[scene.start_frame : scene.end_frame] = index
    weights = profiles[scene_of_frame]
    weights = weights * np.clip(1.0 + frame_sd * rng.normal(0.0, 1.0, size=(n_frames, spf)), 0.05, None)
    weights /= weights.sum(axis=1, keepdims=True)
    raw_slices = frame_bytes[:, None] * weights
    base = np.floor(raw_slices)
    shortfall = np.rint(frame_bytes - base.sum(axis=1)).astype(np.intp)
    frac = raw_slices - base
    # Largest-remainder rounding: hand the missing bytes to the slices
    # with the biggest fractional parts.
    rank = np.argsort(np.argsort(-frac, axis=1, kind="stable"), axis=1)
    base += rank < shortfall[:, None]
    return base.reshape(-1)


def synthesize_starwars_trace(
    n_frames=None,
    seed=0,
    mean=None,
    std=None,
    tail_shape=None,
    hurst=None,
    frame_rate=None,
    slices_per_frame=None,
    with_slices=True,
    fgn_weight=2.2,
    ar1_weight=1.6,
    ar1_phi=0.9,
    arc_weight=0.6,
    landmark_scale=1.0,
):
    """Synthesize a calibrated Star-Wars-like VBR video trace.

    Parameters default to the paper's published values
    (:data:`STARWARS_PARAMETERS`); pass ``n_frames`` to scale the trace
    down for quick experiments (the statistical structure is preserved
    at any length).

    Parameters
    ----------
    n_frames:
        Trace length in frames (paper: 171,000 ~= 2 hours at 24 fps).
    seed:
        Seed for the deterministic random generator.
    mean, std:
        Target mean / standard deviation in bytes per frame.
    tail_shape:
        Pareto tail shape ``a`` of the marginal.
    hurst:
        Target Hurst parameter; also sets the scene-duration tail via
        ``alpha = 3 - 2 H``.
    frame_rate, slices_per_frame:
        Temporal format (paper: 24 fps, 30 slices/frame).
    with_slices:
        Synthesize genuine slice-level data (set False to save memory
        when only frame-level analysis is needed).
    fgn_weight, ar1_weight:
        Relative strengths of the FGN and within-scene AR(1) components
        against the scene-level process (in log-level standard
        deviations).  The defaults are calibrated so all three Hurst
        estimators land near the target on the full-length trace.
    ar1_phi:
        AR(1) coefficient of the within-scene fluctuation.
    arc_weight:
        Exponent on the story-arc multiplier (0 disables the arc).
    landmark_scale:
        Multiplier on the Fig. 1 landmark boosts (0 disables them).

    Returns
    -------
    :class:`repro.video.trace.VBRTrace`
    """
    p = STARWARS_PARAMETERS
    n_frames = require_positive_int(n_frames if n_frames is not None else p["n_frames"], "n_frames")
    mean = require_positive(mean if mean is not None else p["mean_frame_bytes"], "mean")
    std = require_positive(std if std is not None else p["std_frame_bytes"], "std")
    tail_shape = require_positive(tail_shape if tail_shape is not None else p["tail_shape"], "tail_shape")
    hurst = require_in_open_interval(hurst if hurst is not None else p["hurst"], "hurst", 0.5, 1.0)
    frame_rate = require_positive(frame_rate if frame_rate is not None else p["frame_rate"], "frame_rate")
    slices_per_frame = require_positive_int(
        slices_per_frame if slices_per_frame is not None else p["slices_per_frame"],
        "slices_per_frame",
    )
    # The synthesized arrays are a pure function of the calibrated
    # parameters and the seed, so a configured content cache can serve
    # the exact trace back (digest-verified); a nondeterministic run
    # (seed=None) is never cached.
    cache = _cache.active_cache()
    cache_params = None
    if cache is not None and seed is not None:
        cache_params = {
            "n_frames": n_frames, "seed": int(seed), "mean": mean, "std": std,
            "tail_shape": tail_shape, "hurst": hurst, "frame_rate": frame_rate,
            "slices_per_frame": slices_per_frame, "with_slices": bool(with_slices),
            "fgn_weight": fgn_weight, "ar1_weight": ar1_weight,
            "ar1_phi": ar1_phi, "arc_weight": arc_weight,
            "landmark_scale": landmark_scale,
        }
        hit = cache.get("starwars.trace", cache_params)
        if hit is not None:
            _FRAMES.inc(n_frames)
            return VBRTrace(
                hit["frame_bytes"],
                frame_rate=frame_rate,
                slices_per_frame=slices_per_frame,
                slice_bytes=hit.get("slice_bytes"),
            )
    rng = np.random.default_rng(seed)

    with trace.span("starwars.synthesize", n_frames=n_frames, with_slices=with_slices):
        # 1. Scene hierarchy with heavy-tailed durations (alpha = 3 - 2H).
        alpha = 3.0 - 2.0 * hurst
        script = generate_scene_script(
            n_frames,
            rng=rng,
            duration_tail_shape=alpha,
            min_scene_frames=24,
            arc_weight=arc_weight,
        )
        log_levels = np.log(script.frame_levels())
        sigma_scene = max(float(np.std(log_levels)), 1e-6)

        # 2. Long-memory background (FGN) and within-scene AR(1) texture.
        fgn = DaviesHarteGenerator(hurst).generate(n_frames, rng=rng) if n_frames >= 2 else np.zeros(1)
        ar1 = _ar1_path(n_frames, ar1_phi, rng)
        z = (
            log_levels
            + fgn_weight * sigma_scene * fgn
            + ar1_weight * sigma_scene * ar1
            + landmark_scale * _landmark_boosts(n_frames, frame_rate)
        )

        # 3. Impose the exact Gamma/Pareto marginal through the ranks.
        marginal = _calibrated_marginal(mean, std, tail_shape)
        with trace.span("transform.rank", n=n_frames):
            frame_bytes = np.rint(_rank_map(z, marginal))

        slice_bytes = None
        if with_slices:
            slice_bytes = _slice_split(frame_bytes, script, slices_per_frame, rng)
    if cache_params is not None:
        payload = {"frame_bytes": frame_bytes}
        if slice_bytes is not None:
            payload["slice_bytes"] = slice_bytes
        cache.put("starwars.trace", cache_params, payload)
    _FRAMES.inc(n_frames)
    return VBRTrace(
        frame_bytes,
        frame_rate=frame_rate,
        slices_per_frame=slices_per_frame,
        slice_bytes=slice_bytes,
    )
