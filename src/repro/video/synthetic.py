"""Procedural movie generator: luminance frames for the codec.

The paper's trace was produced by coding a real film, which is
proprietary and computationally enormous (6 weeks of 1990 CPU time).
:class:`SyntheticMovie` renders a procedural stand-in: a scene script
(:mod:`repro.video.scenes`) drives per-scene backgrounds, textured
detail whose amplitude follows the scene's complexity level, camera
motion, and occasional high-spatial-frequency "special effect" bursts.
Because the intraframe codec's bit production is governed by spatial
complexity and the scene structure controls how complexity evolves in
time, the coded bandwidth of a synthetic movie reproduces the
qualitative behaviour of the paper's trace: Gamma-ish body, bursty
peaks during effects, and scene-scale correlation.
"""

from __future__ import annotations

import numpy as np

from repro._validation import require_in_closed_interval, require_positive_int
from repro.video.scenes import generate_scene_script

__all__ = ["SyntheticMovie"]


def _smooth2d(field, passes=2):
    """Cheap separable box smoothing (keeps everything in numpy)."""
    out = field
    for _ in range(passes):
        out = (np.roll(out, 1, axis=0) + out + np.roll(out, -1, axis=0)) / 3.0
        out = (np.roll(out, 1, axis=1) + out + np.roll(out, -1, axis=1)) / 3.0
    return out


class SyntheticMovie:
    """Iterable of procedurally generated monochrome frames.

    Parameters
    ----------
    n_frames:
        Number of frames to render.
    height, width:
        Frame dimensions in pels.  Defaults (120 x 128) are a scaled
        version of the paper's 480 x 504 format, keeping the codec
        pipeline affordable in pure Python.
    seed:
        Seed for the deterministic random generator.
    effect_probability:
        Per-scene probability of a high-frequency special-effect burst
        (the paper's "jump to hyperspace" analog).
    script_kwargs:
        Extra keyword arguments for
        :func:`repro.video.scenes.generate_scene_script`.

    Iterating the object yields ``uint8`` arrays of shape
    ``(height, width)``; iteration can be repeated (each pass renders
    the same movie, because the generator is re-seeded).
    """

    def __init__(
        self,
        n_frames,
        height=120,
        width=128,
        seed=0,
        effect_probability=0.04,
        **script_kwargs,
    ):
        self.n_frames = require_positive_int(n_frames, "n_frames")
        self.height = require_positive_int(height, "height")
        self.width = require_positive_int(width, "width")
        self.seed = int(seed)
        self.effect_probability = require_in_closed_interval(
            effect_probability, "effect_probability", 0.0, 1.0
        )
        self._script_kwargs = dict(script_kwargs)
        rng = np.random.default_rng(self.seed)
        self.script = generate_scene_script(self.n_frames, rng=rng, **self._script_kwargs)

    def __len__(self):
        return self.n_frames

    def __iter__(self):
        """Render the movie frame by frame (deterministic per seed)."""
        rng = np.random.default_rng(self.seed + 1)
        h, w = self.height, self.width
        margin = 16
        yy = np.linspace(0.0, 1.0, h).reshape(-1, 1)
        xx = np.linspace(0.0, 1.0, w).reshape(1, -1)
        for scene in self.script.scenes:
            # Per-scene static background: a smooth gradient + blobs.
            angle = rng.uniform(0.0, 2 * np.pi)
            base = 110.0 + 60.0 * (np.cos(angle) * yy + np.sin(angle) * xx)
            blobs = _smooth2d(rng.normal(0.0, 1.0, size=(h, w)), passes=6)
            background = base + 25.0 * blobs
            # Texture field larger than the frame so it can be panned.
            texture = rng.normal(0.0, 1.0, size=(h + 2 * margin, w + 2 * margin))
            fine = texture
            coarse = _smooth2d(texture, passes=3)
            detail_amp = 14.0 * scene.level
            is_effect = rng.uniform() < self.effect_probability
            pan_speed = scene.activity * 1.5
            pan_angle = rng.uniform(0.0, 2 * np.pi)
            for k in range(scene.n_frames):
                dy = int(round(margin + pan_speed * k * np.sin(pan_angle))) % margin
                dx = int(round(margin + pan_speed * k * np.cos(pan_angle))) % margin
                window_fine = fine[dy : dy + h, dx : dx + w]
                window_coarse = coarse[dy : dy + h, dx : dx + w]
                frame = background + detail_amp * (0.5 * window_fine + 1.5 * window_coarse)
                if is_effect:
                    # High-spatial-frequency burst: expensive to code.
                    frame = frame + 45.0 * rng.normal(0.0, 1.0, size=(h, w))
                # Small amount of sensor noise every frame.
                frame = frame + rng.normal(0.0, 1.0, size=(h, w))
                yield np.clip(frame, 0.0, 255.0).astype(np.uint8)

    def render(self):
        """Materialize all frames as one ``(n, h, w)`` uint8 array."""
        return np.stack(list(self))

    def __repr__(self):
        return (
            f"SyntheticMovie(n_frames={self.n_frames}, height={self.height}, "
            f"width={self.width}, seed={self.seed})"
        )
