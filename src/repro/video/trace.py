"""The VBR trace container.

A :class:`VBRTrace` holds the bandwidth process of one coded video
sequence at both resolutions the paper analyses: bytes per *frame*
(41.67 ms at 24 fps) and bytes per *slice* (1.389 ms at 30 slices per
frame).  Slice data is optional; when absent it is synthesized by an
even split, which is adequate for frame-level experiments.
"""

from __future__ import annotations

import numpy as np

from repro._validation import as_1d_float_array, require_positive, require_positive_int

__all__ = ["VBRTrace"]


class VBRTrace:
    """Bandwidth trace of a VBR-coded video sequence.

    Parameters
    ----------
    frame_bytes:
        Bytes generated for each video frame (1-D, non-negative).
    frame_rate:
        Frames per second (the paper's movie runs at 24).
    slices_per_frame:
        Number of slices each frame is divided into (paper: 30).
    slice_bytes:
        Optional per-slice byte counts of length
        ``len(frame_bytes) * slices_per_frame``.  When provided, each
        frame's slices must sum to that frame's byte count (within
        rounding tolerance of 1 byte per slice).
    """

    def __init__(self, frame_bytes, frame_rate=24.0, slices_per_frame=30, slice_bytes=None):
        self.frame_bytes = as_1d_float_array(frame_bytes, "frame_bytes")
        if np.any(self.frame_bytes < 0):
            raise ValueError("frame_bytes must be non-negative")
        self.frame_rate = require_positive(frame_rate, "frame_rate")
        self.slices_per_frame = require_positive_int(slices_per_frame, "slices_per_frame")
        if slice_bytes is not None:
            slice_bytes = as_1d_float_array(slice_bytes, "slice_bytes")
            expected = self.frame_bytes.size * self.slices_per_frame
            if slice_bytes.size != expected:
                raise ValueError(
                    f"slice_bytes must have length n_frames * slices_per_frame = {expected}, "
                    f"got {slice_bytes.size}"
                )
            if np.any(slice_bytes < 0):
                raise ValueError("slice_bytes must be non-negative")
            sums = slice_bytes.reshape(-1, self.slices_per_frame).sum(axis=1)
            if np.max(np.abs(sums - self.frame_bytes)) > self.slices_per_frame:
                raise ValueError("slice_bytes do not sum to frame_bytes within tolerance")
        self._slice_bytes = slice_bytes

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n_frames(self):
        """Number of frames in the trace."""
        return int(self.frame_bytes.size)

    @property
    def frame_interval_ms(self):
        """Duration of one frame slot in milliseconds."""
        return 1000.0 / self.frame_rate

    @property
    def slice_interval_ms(self):
        """Duration of one slice slot in milliseconds."""
        return self.frame_interval_ms / self.slices_per_frame

    @property
    def duration_seconds(self):
        """Total duration of the sequence in seconds."""
        return self.n_frames / self.frame_rate

    @property
    def slice_bytes(self):
        """Per-slice byte counts (synthesized by even split if absent)."""
        if self._slice_bytes is not None:
            return self._slice_bytes
        return np.repeat(self.frame_bytes / self.slices_per_frame, self.slices_per_frame)

    @property
    def has_slice_data(self):
        """Whether genuine (non-synthesized) slice data is present."""
        return self._slice_bytes is not None

    def series(self, unit="frame"):
        """The bandwidth series at ``"frame"`` or ``"slice"`` resolution."""
        if unit == "frame":
            return self.frame_bytes
        if unit == "slice":
            return self.slice_bytes
        raise ValueError(f'unit must be "frame" or "slice", got {unit!r}')

    def time_unit_ms(self, unit="frame"):
        """Slot duration in milliseconds for the requested resolution."""
        if unit == "frame":
            return self.frame_interval_ms
        if unit == "slice":
            return self.slice_interval_ms
        raise ValueError(f'unit must be "frame" or "slice", got {unit!r}')

    # ------------------------------------------------------------------
    # Derived statistics and views
    # ------------------------------------------------------------------
    @property
    def mean_rate_bps(self):
        """Long-run mean bandwidth in bits per second."""
        return float(np.mean(self.frame_bytes)) * 8.0 * self.frame_rate

    @property
    def peak_rate_bps(self):
        """Peak (frame-slot) bandwidth in bits per second."""
        return float(np.max(self.frame_bytes)) * 8.0 * self.frame_rate

    def summary(self, unit="frame"):
        """A :class:`~repro.analysis.summary.TraceSummary` (Table 2)."""
        from repro.analysis.summary import summarize

        return summarize(self.series(unit), self.time_unit_ms(unit))

    def segment(self, start_frame, end_frame):
        """Sub-trace covering frames ``[start_frame, end_frame)``."""
        n = self.n_frames
        start_frame, end_frame = int(start_frame), int(end_frame)
        if not 0 <= start_frame < end_frame <= n:
            raise ValueError(f"invalid segment [{start_frame}, {end_frame}) for {n} frames")
        s = None
        if self._slice_bytes is not None:
            spf = self.slices_per_frame
            s = self._slice_bytes[start_frame * spf : end_frame * spf]
        return VBRTrace(
            self.frame_bytes[start_frame:end_frame],
            frame_rate=self.frame_rate,
            slices_per_frame=self.slices_per_frame,
            slice_bytes=s,
        )

    def shifted(self, lag_frames):
        """Trace cyclically shifted by ``lag_frames`` (for multiplexing).

        The paper multiplexes N copies of the trace at random offsets,
        wrapping around so all 171,000 frames are used once per source.
        """
        lag = int(lag_frames) % self.n_frames
        s = None
        if self._slice_bytes is not None:
            s = np.roll(self._slice_bytes, -lag * self.slices_per_frame)
        return VBRTrace(
            np.roll(self.frame_bytes, -lag),
            frame_rate=self.frame_rate,
            slices_per_frame=self.slices_per_frame,
            slice_bytes=s,
        )

    def __len__(self):
        return self.n_frames

    def __repr__(self):
        return (
            f"VBRTrace(n_frames={self.n_frames}, frame_rate={self.frame_rate:g}, "
            f"slices_per_frame={self.slices_per_frame}, "
            f"mean_rate={self.mean_rate_bps / 1e6:.2f} Mb/s, "
            f"slice_data={self.has_slice_data})"
        )
