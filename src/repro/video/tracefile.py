"""Trace file I/O in the Bellcore ftp format.

The paper's dataset was distributed via anonymous ftp from
``thumper.bellcore.com`` as a plain text file with one integer byte
count per line.  This module reads and writes that format (with
optional ``#`` header comments carrying the temporal metadata) so the
original trace -- or any other trace in the same format -- can be fed
directly into every analysis and simulation entry point.
"""

from __future__ import annotations

import os

import numpy as np

from repro.video.trace import VBRTrace

__all__ = ["save_trace", "load_trace"]

_HEADER_KEYS = ("frame_rate", "slices_per_frame", "unit")


def save_trace(trace, path, unit="frame"):
    """Write a trace as one integer per line with a small header.

    Parameters
    ----------
    trace:
        A :class:`~repro.video.trace.VBRTrace`.
    path:
        Destination file path.
    unit:
        ``"frame"`` writes per-frame byte counts; ``"slice"`` writes
        per-slice counts (requires genuine slice data).
    """
    if not isinstance(trace, VBRTrace):
        raise TypeError("trace must be a VBRTrace")
    if unit not in ("frame", "slice"):
        raise ValueError(f'unit must be "frame" or "slice", got {unit!r}')
    if unit == "slice" and not trace.has_slice_data:
        raise ValueError("trace has no genuine slice data to save")
    values = trace.series(unit)
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"# frame_rate {trace.frame_rate:g}\n")
        handle.write(f"# slices_per_frame {trace.slices_per_frame}\n")
        handle.write(f"# unit {unit}\n")
        for value in values:
            handle.write(f"{int(round(value))}\n")


def load_trace(path, frame_rate=None, slices_per_frame=None, unit=None):
    """Read a trace file written by :func:`save_trace` (or the original).

    Header comments provide the metadata; explicit keyword arguments
    override them.  Plain files without a header (like the original
    Bellcore file) default to the paper's format: 24 fps frames with
    30 slices per frame.  When the file holds slice data, frame byte
    counts are reconstructed by summation (the line count must be a
    multiple of ``slices_per_frame``).
    """
    if not os.path.exists(path):
        raise FileNotFoundError(f"trace file not found: {path}")
    header = {}
    values = []
    with open(path, "r", encoding="ascii") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) == 2 and parts[0] in _HEADER_KEYS:
                    header[parts[0]] = parts[1]
                continue
            try:
                values.append(float(line))
            except ValueError:
                raise ValueError(f"{path}:{line_number}: not a number: {line!r}") from None
    if not values:
        raise ValueError(f"trace file {path} contains no data lines")
    if frame_rate is None:
        frame_rate = float(header.get("frame_rate", 24.0))
    if slices_per_frame is None:
        slices_per_frame = int(header.get("slices_per_frame", 30))
    if unit is None:
        unit = header.get("unit", "frame")
    if unit not in ("frame", "slice"):
        raise ValueError(f'unit must be "frame" or "slice", got {unit!r}')
    data = np.asarray(values, dtype=float)
    if unit == "frame":
        return VBRTrace(data, frame_rate=frame_rate, slices_per_frame=slices_per_frame)
    if data.size % slices_per_frame:
        raise ValueError(
            f"slice trace length {data.size} is not a multiple of "
            f"slices_per_frame={slices_per_frame}"
        )
    frames = data.reshape(-1, slices_per_frame).sum(axis=1)
    return VBRTrace(
        frames,
        frame_rate=frame_rate,
        slices_per_frame=slices_per_frame,
        slice_bytes=data,
    )
