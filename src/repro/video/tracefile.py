"""Trace file I/O in the Bellcore ftp format.

The paper's dataset was distributed via anonymous ftp from
``thumper.bellcore.com`` as a plain text file with one integer byte
count per line.  This module reads and writes that format (with
optional ``#`` header comments carrying the temporal metadata) so the
original trace -- or any other trace in the same format -- can be fed
directly into every analysis and simulation entry point.

Real trace files arrive damaged: killed transfers truncate them
mid-line, re-encodings plant non-ASCII bytes, tooling bugs write
negative or astronomically large counts.  :func:`load_trace` therefore
has two modes.  ``errors="strict"`` (the default) raises
:class:`TraceFormatError` naming the path and first offending line.
``errors="lenient"`` repairs isolated bad lines -- up to
``repair_budget`` of them -- by linear interpolation between the
nearest good counts, trims a trailing partial frame of slice data, and
reports everything it did in a :class:`TraceRepairReport`
(:func:`load_trace_lenient` returns it alongside the trace; the
``repro doctor`` CLI prints it).
"""

from __future__ import annotations

import dataclasses
import math
import os

import numpy as np

from repro.video.trace import VBRTrace

__all__ = [
    "TraceFormatError",
    "TraceRepairReport",
    "BadLine",
    "save_trace",
    "load_trace",
    "load_trace_lenient",
]

_HEADER_KEYS = ("frame_rate", "slices_per_frame", "unit")


class TraceFormatError(ValueError):
    """A trace file violates the Bellcore format.

    ``path`` and ``line_number`` (1-based, ``None`` for file-level
    problems) locate the first offence; the message embeds both.
    """

    def __init__(self, message, path=None, line_number=None):
        super().__init__(message)
        self.path = path
        self.line_number = line_number


@dataclasses.dataclass(frozen=True)
class BadLine:
    """One rejected line: where, why, and what it said."""

    line_number: int
    reason: str
    text: str


@dataclasses.dataclass
class TraceRepairReport:
    """What the lenient loader found and fixed in one file."""

    path: str
    n_lines: int
    n_data_lines: int
    bad_lines: list
    repaired: int
    dropped_trailing: int

    @property
    def is_clean(self):
        return not self.bad_lines and not self.dropped_trailing

    def summary_lines(self):
        lines = [
            f"{self.path}: {self.n_lines} line(s), "
            f"{self.n_data_lines} good data line(s), "
            f"{len(self.bad_lines)} bad line(s), {self.repaired} repaired"
        ]
        for bad in self.bad_lines:
            lines.append(f"  line {bad.line_number}: {bad.reason}: {bad.text!r}")
        if self.dropped_trailing:
            lines.append(
                f"  dropped {self.dropped_trailing} trailing slice value(s) "
                f"(partial final frame)"
            )
        return lines


def save_trace(trace, path, unit="frame"):
    """Write a trace as one integer per line with a small header.

    Parameters
    ----------
    trace:
        A :class:`~repro.video.trace.VBRTrace`.
    path:
        Destination file path.
    unit:
        ``"frame"`` writes per-frame byte counts; ``"slice"`` writes
        per-slice counts (requires genuine slice data).
    """
    if not isinstance(trace, VBRTrace):
        raise TypeError("trace must be a VBRTrace")
    if unit not in ("frame", "slice"):
        raise ValueError(f'unit must be "frame" or "slice", got {unit!r}')
    if unit == "slice" and not trace.has_slice_data:
        raise ValueError("trace has no genuine slice data to save")
    values = trace.series(unit)
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"# frame_rate {trace.frame_rate:g}\n")
        handle.write(f"# slices_per_frame {trace.slices_per_frame}\n")
        handle.write(f"# unit {unit}\n")
        for value in values:
            handle.write(f"{int(round(value))}\n")


def _classify_line(line):
    """Parse one decoded data line; returns ``(value, reason)``.

    Exactly one of the pair is ``None``.  Beyond "not a number", the
    loader rejects the values a naive ``float()`` happily accepts but
    every analysis downstream chokes on: NaN, infinities (including
    overflowed integer literals) and negative byte counts.
    """
    try:
        value = float(line)
    except ValueError:
        return None, "not a number"
    if math.isnan(value):
        return None, "NaN count"
    if math.isinf(value):
        return None, "overflow/non-finite count"
    if value < 0:
        return None, "negative count"
    return value, None


def _parse_file(path, lenient, repair_budget):
    """Shared strict/lenient scan; returns ``(header, values, report)``.

    ``values`` carries NaN placeholders at bad lines in lenient mode;
    in strict mode the first bad line raises.  The file is read as
    bytes and decoded per line so a single non-ASCII byte is a located
    :class:`BadLine` instead of a file-level ``UnicodeDecodeError``.
    """
    header = {}
    values = []
    bad_lines = []
    n_lines = 0

    def offend(line_number, reason, text):
        if not lenient:
            raise TraceFormatError(
                f"{path}:{line_number}: {reason}: {text!r}",
                path=str(path), line_number=line_number,
            )
        if len(bad_lines) >= repair_budget:
            raise TraceFormatError(
                f"{path}: more than {repair_budget} bad line(s) "
                f"(repair budget exhausted at line {line_number}: {reason})",
                path=str(path), line_number=line_number,
            )
        bad_lines.append(BadLine(line_number, reason, text))
        values.append(np.nan)

    with open(path, "rb") as handle:
        for line_number, raw in enumerate(handle, start=1):
            n_lines = line_number
            try:
                line = raw.decode("ascii").strip()
            except UnicodeDecodeError:
                offend(line_number, "non-ASCII bytes",
                       raw.decode("ascii", errors="replace").strip()[:40])
                continue
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) == 2 and parts[0] in _HEADER_KEYS:
                    header[parts[0]] = parts[1]
                continue
            value, reason = _classify_line(line)
            if reason is not None:
                offend(line_number, reason, line[:40])
            else:
                values.append(value)

    report = TraceRepairReport(
        path=str(path),
        n_lines=n_lines,
        n_data_lines=len(values) - len(bad_lines),
        bad_lines=bad_lines,
        repaired=0,
        dropped_trailing=0,
    )
    return header, np.asarray(values, dtype=float), report


def _repair(data, report):
    """Interpolate NaN placeholders from the nearest good neighbours."""
    bad = np.isnan(data)
    if not bad.any():
        return data
    good_idx = np.flatnonzero(~bad)
    data = data.copy()
    # np.interp clamps at the ends, so leading/trailing bad lines take
    # the nearest good count instead of extrapolating.
    data[bad] = np.interp(np.flatnonzero(bad), good_idx, data[good_idx])
    report.repaired = int(bad.sum())
    return data


def _build_trace(path, header, data, report, frame_rate, slices_per_frame,
                 unit, lenient):
    if frame_rate is None:
        try:
            frame_rate = float(header.get("frame_rate", 24.0))
        except ValueError:
            raise TraceFormatError(
                f"{path}: malformed frame_rate header {header['frame_rate']!r}",
                path=str(path),
            ) from None
    if slices_per_frame is None:
        try:
            slices_per_frame = int(header.get("slices_per_frame", 30))
        except ValueError:
            raise TraceFormatError(
                f"{path}: malformed slices_per_frame header "
                f"{header['slices_per_frame']!r}",
                path=str(path),
            ) from None
    if unit is None:
        unit = header.get("unit", "frame")
    if unit not in ("frame", "slice"):
        raise ValueError(f'unit must be "frame" or "slice", got {unit!r}')
    if unit == "frame":
        return VBRTrace(data, frame_rate=frame_rate, slices_per_frame=slices_per_frame)
    if data.size % slices_per_frame:
        if not lenient or data.size < slices_per_frame:
            raise TraceFormatError(
                f"{path}: slice trace length {data.size} is not a multiple of "
                f"slices_per_frame={slices_per_frame}",
                path=str(path),
            )
        report.dropped_trailing = int(data.size % slices_per_frame)
        data = data[: data.size - report.dropped_trailing]
    frames = data.reshape(-1, slices_per_frame).sum(axis=1)
    return VBRTrace(
        frames,
        frame_rate=frame_rate,
        slices_per_frame=slices_per_frame,
        slice_bytes=data,
    )


def load_trace_lenient(path, frame_rate=None, slices_per_frame=None, unit=None,
                       repair_budget=64):
    """Load a damaged trace, repairing what a budget allows.

    Returns ``(trace, report)``: the usable
    :class:`~repro.video.trace.VBRTrace` plus the
    :class:`TraceRepairReport` describing every bad line (located and
    classified), the interpolated repairs, and any trailing slice
    values dropped to restore the lines-per-frame invariant.  More than
    ``repair_budget`` bad lines -- no longer "isolated damage" -- still
    raises :class:`TraceFormatError`.
    """
    if not os.path.exists(path):
        raise FileNotFoundError(f"trace file not found: {path}")
    header, data, report = _parse_file(path, lenient=True,
                                       repair_budget=int(repair_budget))
    if report.n_data_lines == 0:
        raise TraceFormatError(
            f"trace file {path} contains no usable data lines", path=str(path)
        )
    data = _repair(data, report)
    trace = _build_trace(path, header, data, report, frame_rate,
                         slices_per_frame, unit, lenient=True)
    trace.repair_report = report
    return trace, report


def load_trace(path, frame_rate=None, slices_per_frame=None, unit=None,
               errors="strict", repair_budget=64):
    """Read a trace file written by :func:`save_trace` (or the original).

    Header comments provide the metadata; explicit keyword arguments
    override them.  Plain files without a header (like the original
    Bellcore file) default to the paper's format: 24 fps frames with
    30 slices per frame.  When the file holds slice data, frame byte
    counts are reconstructed by summation (the line count must be a
    multiple of ``slices_per_frame``).

    ``errors="strict"`` (default) raises :class:`TraceFormatError` --
    a ``ValueError`` subclass, naming path and line number -- on the
    first malformed, non-ASCII, NaN, infinite or negative line;
    ``errors="lenient"`` instead repairs up to ``repair_budget`` bad
    lines (see :func:`load_trace_lenient`, which also returns the
    repair report).
    """
    if errors not in ("strict", "lenient"):
        raise ValueError(f'errors must be "strict" or "lenient", got {errors!r}')
    if errors == "lenient":
        trace, _ = load_trace_lenient(
            path, frame_rate=frame_rate, slices_per_frame=slices_per_frame,
            unit=unit, repair_budget=repair_budget,
        )
        return trace
    if not os.path.exists(path):
        raise FileNotFoundError(f"trace file not found: {path}")
    header, data, report = _parse_file(path, lenient=False, repair_budget=0)
    if data.size == 0:
        raise TraceFormatError(
            f"trace file {path} contains no data lines", path=str(path)
        )
    return _build_trace(path, header, data, report, frame_rate,
                        slices_per_frame, unit, lenient=False)
