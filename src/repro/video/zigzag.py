"""Zig-zag scan ordering of DCT coefficient blocks.

The JPEG-style zig-zag scan reads an ``n x n`` coefficient block in
order of increasing spatial frequency, which groups the (typically
zero) high-frequency coefficients at the end of the vector and makes
run-length coding effective.
"""

from __future__ import annotations

import functools

import numpy as np

from repro._validation import require_positive_int

__all__ = ["zigzag_indices", "zigzag_scan", "zigzag_unscan"]


@functools.lru_cache(maxsize=None)
def zigzag_indices(n=8):
    """Flat indices of the zig-zag scan over an ``n x n`` block.

    Entry ``k`` of the returned array is the flat (row-major) index of
    the ``k``-th coefficient visited.  Diagonals are traversed
    alternately up-right and down-left, starting at the DC coefficient.
    """
    n = require_positive_int(n, "n")
    order = []
    for diag in range(2 * n - 1):
        if diag % 2 == 0:
            # Even diagonal: walk up-right.
            row = min(diag, n - 1)
            col = diag - row
            while row >= 0 and col < n:
                order.append(row * n + col)
                row -= 1
                col += 1
        else:
            # Odd diagonal: walk down-left.
            col = min(diag, n - 1)
            row = diag - col
            while col >= 0 and row < n:
                order.append(row * n + col)
                row += 1
                col -= 1
    return np.asarray(order, dtype=np.intp)


def zigzag_scan(block):
    """Read a square block in zig-zag order; returns a 1-D vector."""
    block = np.asarray(block)
    if block.ndim != 2 or block.shape[0] != block.shape[1]:
        raise ValueError(f"block must be square, got shape {block.shape}")
    return block.reshape(-1)[zigzag_indices(block.shape[0])]


def zigzag_unscan(vector, n=8):
    """Inverse of :func:`zigzag_scan`: rebuild the square block."""
    vector = np.asarray(vector)
    n = require_positive_int(n, "n")
    if vector.ndim != 1 or vector.size != n * n:
        raise ValueError(f"vector must have length {n * n}, got shape {vector.shape}")
    flat = np.empty(n * n, dtype=vector.dtype)
    flat[zigzag_indices(n)] = vector
    return flat.reshape(n, n)
