"""Shared fixtures for the test suite.

Expensive artifacts (the mid-size reference trace, long generator
paths) are session-scoped so the suite stays fast while still
exercising realistic sizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions.hybrid import GammaParetoHybrid
from repro.experiments.data import reference_trace

# Tier markers, seeded_rng/golden fixtures, --qa-seed / --update-golden.
pytest_plugins = ("repro.qa.plugin",)


@pytest.fixture
def rng():
    """Fresh deterministic generator for each test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def paper_marginal():
    """Hybrid Gamma/Pareto with the paper's Table 2 frame parameters."""
    return GammaParetoHybrid(27_791.0, 6_254.0, 12.0)


@pytest.fixture(scope="session")
def small_trace():
    """A 20,000-frame calibrated trace shared across the session."""
    return reference_trace(n_frames=20_000, seed=7)


@pytest.fixture(scope="session")
def small_series(small_trace):
    """Frame-level byte series of the shared trace."""
    return small_trace.frame_bytes


@pytest.fixture(scope="session")
def fgn_path():
    """A long FGN path with H = 0.8 for estimator tests."""
    from repro.core.daviesharte import DaviesHarteGenerator

    return DaviesHarteGenerator(0.8).generate(2**15, rng=np.random.default_rng(99))
