"""Suite-wide false-positive budget for tier-2 statistical tests.

Every tier-2 check draws its alpha from one Bonferroni budget: with at
most ``MAX_STATISTICAL_CHECKS`` checks in the tier-2/tier-3 run, the
probability that a *correct* implementation fails any check on a given
seed is at most ``SUITE_ALPHA`` -- and the ``statistical_retry``
marker squares the per-check rate on top of that.  When adding tier-2
checks, raise ``MAX_STATISTICAL_CHECKS`` rather than minting private
alphas (see docs/testing.md).
"""

from repro.qa.stats import bonferroni

SUITE_ALPHA = 0.01
MAX_STATISTICAL_CHECKS = 64
CHECK_ALPHA = bonferroni(SUITE_ALPHA, MAX_STATISTICAL_CHECKS)
