"""Tests for connection admission control."""

import numpy as np
import pytest

from repro.simulation.admission import max_admissible_sources, norros_admissible_sources


@pytest.fixture(scope="module")
def series(small_series):
    return small_series


class TestMaxAdmissibleSources:
    def test_zero_when_link_too_small(self, series, rng):
        n = max_admissible_sources(
            series, 1 / 24.0, capacity_bps=1e6, buffer_bytes=10_000.0, rng=rng
        )
        assert n == 0

    def test_monotone_in_capacity(self, series):
        counts = []
        for mbps in (10.0, 25.0, 50.0):
            counts.append(
                max_admissible_sources(
                    series, 1 / 24.0, capacity_bps=mbps * 1e6,
                    buffer_bytes=300_000.0, target_loss=1e-3,
                    rng=np.random.default_rng(2),
                )
            )
        assert counts[0] <= counts[1] <= counts[2]
        assert counts[2] >= 2

    def test_bounded_by_mean_rate(self, series, rng):
        """Stability: N * mean rate cannot exceed the capacity."""
        mbps = 30.0
        n = max_admissible_sources(
            series, 1 / 24.0, capacity_bps=mbps * 1e6,
            buffer_bytes=1e9, target_loss=1e-2, rng=rng,
        )
        mean_bps = float(np.mean(series)) * 8 * 24
        assert n <= mbps * 1e6 / mean_bps + 1

    def test_looser_target_admits_more(self, series):
        strict = max_admissible_sources(
            series, 1 / 24.0, 30e6, 300_000.0, target_loss=0.0,
            rng=np.random.default_rng(3),
        )
        loose = max_admissible_sources(
            series, 1 / 24.0, 30e6, 300_000.0, target_loss=1e-2,
            rng=np.random.default_rng(3),
        )
        assert loose >= strict

    def test_admitted_configuration_is_feasible(self, series):
        """The returned N actually meets the target when re-simulated."""
        from repro.simulation.multiplex import multiplex_series, random_lags
        from repro.simulation.queue import simulate_queue

        rng = np.random.default_rng(4)
        capacity_bps = 35e6
        buffer_bytes = 400_000.0
        target = 1e-3
        n = max_admissible_sources(
            series, 1 / 24.0, capacity_bps, buffer_bytes, target_loss=target,
            rng=np.random.default_rng(4),
        )
        assert n >= 1
        capacity = capacity_bps / 8.0 / 24.0
        lags = random_lags(n, series.size, min_separation=min(1000, series.size // (2 * n)), rng=rng)
        arrivals = multiplex_series(series, lags)
        assert simulate_queue(arrivals, capacity, buffer_bytes).loss_rate <= target * 3

    def test_rejects_bad_inputs(self, series, rng):
        with pytest.raises(ValueError):
            max_admissible_sources(series, 0.0, 1e6, 1.0, rng=rng)
        with pytest.raises(ValueError):
            max_admissible_sources(np.zeros(100), 1 / 24.0, 1e6, 1.0, rng=rng)


class TestNorrosAdmission:
    def test_matches_simulation_order(self, series):
        """Effective-bandwidth admission lands within +-2 of the
        trace-driven count (at these parameters)."""
        from repro.analysis.hurst import variance_time

        h = float(np.clip(variance_time(series).hurst, 0.55, 0.95))
        a = float(np.var(series) / np.mean(series))
        n_sim = max_admissible_sources(
            series, 1 / 24.0, 45e6, 500_000.0, target_loss=1e-4,
            rng=np.random.default_rng(1),
        )
        n_norros = norros_admissible_sources(
            float(np.mean(series)), a, h, 45e6, 500_000.0, 1e-4, 1 / 24.0
        )
        assert abs(n_sim - n_norros) <= 2

    def test_zero_for_tiny_link(self, series):
        n = norros_admissible_sources(27_791.0, 1_400.0, 0.8, 1e6, 10_000.0, 1e-4, 1 / 24.0)
        assert n == 0

    def test_monotone_in_capacity(self):
        args = dict(mean_rate=27_791.0, variance_coeff=1_400.0, hurst=0.8,
                    buffer_bytes=500_000.0, target_loss=1e-4, slot_seconds=1 / 24.0)
        small = norros_admissible_sources(capacity_bps=20e6, **args)
        large = norros_admissible_sources(capacity_bps=60e6, **args)
        assert large > small


class TestAdmissionProperties:
    """Backfilled property wall: bisection exactness and search bounds."""

    def test_bisection_is_exact_for_constant_sources(self):
        """For constant-rate sources the answer has a closed form --
        floor(C/m) copies fit losslessly, one more overflows -- and the
        search must land on it exactly: N feasible and N+1 infeasible."""
        from repro.simulation.queue import simulate_queue

        m = 100.0
        series = np.full(4_000, m)
        slot_seconds = 1 / 24.0
        capacity = 550.0  # bytes per slot -> exactly 5 sources fit
        n = max_admissible_sources(
            series, slot_seconds, capacity_bps=capacity * 8.0 / slot_seconds,
            buffer_bytes=0.0, target_loss=0.0, rng=np.random.default_rng(0),
        )
        assert n == 5
        assert simulate_queue(np.full(4_000, n * m), capacity, 0.0).lost_bytes == 0.0
        assert simulate_queue(np.full(4_000, (n + 1) * m), capacity, 0.0).lost_bytes > 0.0

    def test_short_series_raises_instead_of_feigning_infeasibility(self, series):
        """Regression: _n_feasible used to return False when the trace
        was too short to place the lagged copies, silently turning "I
        cannot answer" into an admission bound."""
        from repro.simulation.admission import _n_feasible

        short = series[:10]
        with pytest.raises(ValueError, match="at least 12 slots"):
            _n_feasible(short, 6, 1e9, 1e9, 1e-3, "overall", 24, 1,
                        np.random.default_rng(0))

    def test_search_is_capped_by_trace_length(self):
        """A huge link cannot admit more copies than the trace can
        express: the public search stays inside what _n_feasible can
        answer instead of raising mid-bisection."""
        series = np.full(40, 10.0)
        n = max_admissible_sources(
            series, 1 / 24.0, capacity_bps=1e12, buffer_bytes=1e9,
            target_loss=1e-2, rng=np.random.default_rng(0),
        )
        assert n == 20  # series.size // 2

    def test_norros_admits_fewer_at_higher_hurst(self):
        args = dict(mean_rate=27_791.0, variance_coeff=1_400.0,
                    capacity_bps=45e6, buffer_bytes=500_000.0,
                    target_loss=1e-4, slot_seconds=1 / 24.0)
        smooth = norros_admissible_sources(hurst=0.55, **args)
        bursty = norros_admissible_sources(hurst=0.9, **args)
        assert smooth > bursty
