"""Tier-2 seeded fuzz for :mod:`repro.alloc`: random fleet mixes.

Tier-1 pins the allocator contract on one fixed demo fleet; this
module re-asserts the *exact* invariants -- conservation, feasibility,
harvest monotonicity, worker-count determinism -- over randomized
fleet compositions (user mixes, Hurst exponents, rates, epoch
geometry, pool sizing) drawn from the rotating ``--qa-seed``.  Every
assertion is bit-exact, so these must pass for any seed; there is no
statistical alpha to budget.

Oracle dominance is deliberately *not* fuzzed: the clairvoyant
allocator optimizes greedily epoch by epoch, which lower-bounds the
causal policies on the pinned fleets tier-1 certifies but is not a
theorem over arbitrary fleets (on ~2% of random mixes a causal policy
edges it out by stranding less backlog across a buffer re-partition).
"""

import numpy as np
import pytest

from repro.alloc import (
    FleetSpec,
    UserSpec,
    exact_sum,
    simulate_fleet,
)

pytestmark = pytest.mark.tier2

N_FLEETS = 6


def _random_fleet(rng):
    """One random heterogeneous fleet spec."""
    users = []
    n_users = int(rng.integers(4, 24))
    for _ in range(n_users):
        kind = rng.choice(["video", "video", "cbr", "data"])
        mean = float(rng.uniform(300.0, 4_000.0))
        if kind == "video":
            users.append(UserSpec(
                kind="video", mean=mean,
                std=mean * float(rng.uniform(0.2, 0.8)),
                hurst=float(rng.uniform(0.6, 0.9)),
            ))
        elif kind == "cbr":
            users.append(UserSpec(kind="cbr", mean=mean))
        else:
            users.append(UserSpec(
                kind="data", mean=mean,
                duty=float(rng.uniform(0.1, 0.5)),
                burst_slots=float(rng.uniform(2.0, 16.0)),
            ))
    return FleetSpec(
        users=users,
        epoch_slots=int(rng.integers(20, 80)),
        n_epochs=int(rng.integers(3, 10)),
        utilization=float(rng.uniform(0.6, 0.95)),
        buffer_slots=float(rng.uniform(2.0, 16.0)),
        qos_loss=float(rng.choice([1e-3, 1e-2])),
        seed=int(rng.integers(2**31)),
    )


def test_random_fleets_conserve_and_stay_feasible(seeded_rng):
    for _ in range(N_FLEETS):
        spec = _random_fleet(seeded_rng)
        capacity, buffer = spec.resolved_totals()
        for name in ("static", "harvest", "trade", "oracle"):
            result = simulate_fleet(spec, name, record_history=True)
            for entry in result.history:
                for key in ("capacity_before", "capacity_after"):
                    assert exact_sum(entry[key]) == capacity, (name, key)
                    assert np.all(np.isfinite(entry[key])), (name, key)
                    assert np.all(entry[key] > 0.0), (name, key)
                for key in ("buffer_before", "buffer_after"):
                    assert exact_sum(entry[key]) == buffer, (name, key)
                    assert np.all(np.isfinite(entry[key])), (name, key)
                    assert np.all(entry[key] >= 0.0), (name, key)


def test_random_fleets_keep_harvest_monotone(seeded_rng):
    for _ in range(N_FLEETS):
        spec = _random_fleet(seeded_rng)
        result = simulate_fleet(spec, "harvest", record_history=True)
        for entry in result.history:
            violating = entry["violating"]
            assert np.all(entry["capacity_after"][violating]
                          >= entry["capacity_before"][violating])
            assert np.all(entry["buffer_after"][violating]
                          >= entry["buffer_before"][violating])


def test_random_fleets_are_worker_count_deterministic(seeded_rng):
    for _ in range(3):
        spec = _random_fleet(seeded_rng)
        name = str(seeded_rng.choice(["static", "harvest", "trade", "oracle"]))
        digests = {simulate_fleet(spec, name, workers=w).digest()
                   for w in (1, 2, 5)}
        assert len(digests) == 1, name


def test_random_fleet_digests_are_stable_under_rerun(seeded_rng):
    for _ in range(3):
        spec = _random_fleet(seeded_rng)
        name = str(seeded_rng.choice(["static", "harvest", "trade", "oracle"]))
        first = simulate_fleet(spec, name)
        again = simulate_fleet(spec, name)
        assert first.digest() == again.digest()
        np.testing.assert_array_equal(first.lost, again.lost)
