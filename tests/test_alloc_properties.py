"""Tier-1 property wall for :mod:`repro.alloc`.

Five properties pin the allocator contract on seeded fleets, exactly --
not statistically:

- **conservation**: after *every* epoch, ``exact_sum(C_i) == C`` and
  ``exact_sum(Q_i) == Q`` bit-for-bit (the compensated partition);
- **feasibility**: every grant finite, capacities positive, buffers
  non-negative, at every epoch;
- **monotonicity**: the harvest policy never takes capacity or buffer
  from a user currently violating its QoS target -- not even a
  compensation ulp;
- **oracle dominance**: the clairvoyant allocator's fleet-total loss
  lower-bounds every causal policy on the same seeded fleet;
- **determinism**: result digests are identical at workers {1, 2, 5}
  and under a non-default ``REPRO_BATCH``.

Plus exact unit coverage for the float machinery
(:func:`~repro.alloc.exact_sum`, :func:`~repro.alloc.partition_exact`,
:func:`~repro.alloc.settle_residue`) including the round-to-even-tie
pathology that motivated the fsum-based conservation contract.
"""

import numpy as np
import pytest

from repro.alloc import (
    ALLOCATORS,
    Allocation,
    AllocationError,
    EpochObservation,
    HarvestAllocator,
    OracleAllocator,
    StaticAllocator,
    TradeAllocator,
    demo_fleet,
    exact_sum,
    make_allocator,
    partition_exact,
    settle_residue,
    simulate_fleet,
    user_epoch_seed,
)
from repro.alloc.allocators import _absorb_residue
from repro.par.batch import set_default_batch

CAUSAL = ("static", "harvest", "trade")


@pytest.fixture(scope="module")
def fleet():
    """One small heterogeneous fleet shared by the property tests."""
    return demo_fleet(16, epoch_slots=60, n_epochs=8, utilization=0.7,
                      buffer_slots=12.0, seed=11)


@pytest.fixture(scope="module")
def histories(fleet):
    """Every allocator run over the shared fleet with history recorded."""
    return {
        name: simulate_fleet(fleet, name, record_history=True)
        for name in sorted(ALLOCATORS)
    }


class TestConservation:
    def test_every_epoch_conserves_capacity_and_buffer_exactly(self, fleet, histories):
        capacity, buffer = fleet.resolved_totals()
        for name, result in histories.items():
            assert result.history, name
            for entry in result.history:
                for key in ("capacity_before", "capacity_after"):
                    assert exact_sum(entry[key]) == capacity, (name, entry["epoch"], key)
                for key in ("buffer_before", "buffer_after"):
                    assert exact_sum(entry[key]) == buffer, (name, entry["epoch"], key)

    def test_final_allocation_conserves(self, fleet, histories):
        capacity, buffer = fleet.resolved_totals()
        for name, result in histories.items():
            assert exact_sum(result.final_capacity) == capacity, name
            assert exact_sum(result.final_buffer) == buffer, name


class TestFeasibility:
    def test_no_epoch_emits_nan_negative_or_zero_grants(self, histories):
        for name, result in histories.items():
            for entry in result.history:
                for key in ("capacity_before", "capacity_after"):
                    grants = entry[key]
                    assert np.all(np.isfinite(grants)), (name, key)
                    assert np.all(grants > 0.0), (name, key)
                for key in ("buffer_before", "buffer_after"):
                    grants = entry[key]
                    assert np.all(np.isfinite(grants)), (name, key)
                    assert np.all(grants >= 0.0), (name, key)

    def test_validate_rejects_infeasible_allocations(self):
        good_c = partition_exact(np.ones(4), 100.0)
        good_q = partition_exact(np.ones(4), 40.0)
        Allocation(good_c, good_q).validate(100.0, 40.0)
        with pytest.raises(AllocationError, match="1-D arrays"):
            Allocation(good_c, good_q[:3]).validate(100.0, 40.0)
        bad = good_c.copy()
        bad[0] = np.nan
        with pytest.raises(AllocationError, match="NaN or infinite"):
            Allocation(bad, good_q).validate(100.0, 40.0)
        bad = good_c.copy()
        bad[0] = -bad[0]
        with pytest.raises(AllocationError, match="strictly positive"):
            Allocation(bad, good_q).validate(100.0, 40.0)
        bad = good_q.copy()
        bad[0] = -1.0
        with pytest.raises(AllocationError, match="non-negative"):
            Allocation(good_c, bad).validate(100.0, 40.0)
        with pytest.raises(AllocationError, match="capacity not conserved"):
            Allocation(good_c, good_q).validate(101.0, 40.0)
        with pytest.raises(AllocationError, match="buffer not conserved"):
            Allocation(good_c, good_q).validate(100.0, 41.0)


class TestHarvestMonotonicity:
    def test_violators_never_lose_capacity_or_buffer(self, histories):
        entries = histories["harvest"].history
        assert any(entry["violating"].any() for entry in entries)
        for entry in entries:
            violating = entry["violating"]
            assert np.all(entry["capacity_after"][violating]
                          >= entry["capacity_before"][violating]), entry["epoch"]
            assert np.all(entry["buffer_after"][violating]
                          >= entry["buffer_before"][violating]), entry["epoch"]

    def test_absorb_residue_protects_the_restricted_side(self):
        # Regression for the round-to-even-tie pathology: a single
        # eligible donor in total's own binade cannot express the target
        # on its own lattice; the fallback must still conserve exactly
        # without ever shrinking a protected share.
        total = 88.56886416650097
        values = np.array([12.237681921010275, 68.07716974782727, 8.254012497663435])
        eligible = np.array([False, True, False])
        protected_before = values[~eligible].copy()
        _absorb_residue(values, total, eligible)
        assert exact_sum(values) == total
        assert np.all(values[~eligible] >= protected_before)


class TestOracleDominance:
    def test_oracle_total_loss_lower_bounds_every_causal_policy(self, histories):
        oracle = histories["oracle"].total_loss_rate
        for name in CAUSAL:
            assert oracle <= histories[name].total_loss_rate, name

    def test_closed_loop_beats_static_p99(self, histories):
        static_p99 = histories["static"].loss_percentiles()["p99"]
        assert histories["harvest"].loss_percentiles()["p99"] < static_p99
        assert histories["trade"].loss_percentiles()["p99"] < static_p99


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(ALLOCATORS))
    def test_digest_identical_across_worker_counts_and_batch(self, fleet, name):
        digests = {simulate_fleet(fleet, name, workers=w).digest()
                   for w in (1, 2, 5)}
        prev = set_default_batch(7)
        try:
            digests.add(simulate_fleet(fleet, name, workers=2).digest())
        finally:
            set_default_batch(prev)
        assert len(digests) == 1, name

    def test_user_epoch_seeds_are_unique_and_stable(self):
        seeds = {user_epoch_seed(3, u, e) for u in range(8) for e in range(8)}
        assert len(seeds) == 64
        assert user_epoch_seed(3, 2, 5) == user_epoch_seed(3, 2, 5)
        assert user_epoch_seed(3, 2, 5) != user_epoch_seed(4, 2, 5)


class TestFloatMachinery:
    def test_exact_sum_is_order_independent(self):
        rng = np.random.default_rng(0)
        values = rng.random(257) * 10.0 ** rng.integers(-6, 7, size=257)
        assert exact_sum(values) == exact_sum(values[::-1])
        assert exact_sum(values) == exact_sum(rng.permutation(values))

    def test_partition_exact_is_proportional_and_exact(self):
        out = partition_exact(np.array([1.0, 2.0, 3.0]), 600.0)
        np.testing.assert_allclose(out, [100.0, 200.0, 300.0], rtol=1e-12)
        assert exact_sum(out) == 600.0

    def test_partition_exact_floor_and_zero_weights(self):
        out = partition_exact(np.zeros(4), 100.0, floor=10.0)
        np.testing.assert_allclose(out, 25.0)
        assert exact_sum(out) == 100.0
        out = partition_exact(np.array([0.0, 0.0, 1.0]), 90.0, floor=10.0)
        assert out[0] >= 10.0 - 1e-9 and out[1] >= 10.0 - 1e-9
        assert exact_sum(out) == 90.0

    def test_partition_exact_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="non-empty"):
            partition_exact(np.array([]), 1.0)
        with pytest.raises(ValueError, match="finite and non-negative"):
            partition_exact(np.array([1.0, -2.0]), 1.0)
        with pytest.raises(ValueError, match="finite and non-negative"):
            partition_exact(np.array([1.0, np.nan]), 1.0)
        with pytest.raises(ValueError, match="total"):
            partition_exact(np.ones(3), 0.0)
        with pytest.raises(ValueError, match="floor"):
            partition_exact(np.ones(3), 1.0, floor=-0.1)
        with pytest.raises(ValueError, match="infeasible"):
            partition_exact(np.ones(3), 1.0, floor=10.0)

    def test_settle_residue_lands_exactly_on_awkward_shares(self):
        rng = np.random.default_rng(5)
        for _ in range(200):
            n = int(rng.integers(2, 30))
            v = rng.random(n) * 10.0 ** rng.integers(-3, 7)
            total = float(np.sum(v)) * float(rng.uniform(0.9, 1.1))
            w = v * (total / float(np.sum(v)))
            settle_residue(w, total)
            assert exact_sum(w) == total


class TestAllocatorConstruction:
    def test_make_allocator_registry(self):
        assert set(ALLOCATORS) == {"static", "oracle", "harvest", "trade"}
        for name, cls in (("static", StaticAllocator), ("oracle", OracleAllocator),
                          ("harvest", HarvestAllocator), ("trade", TradeAllocator)):
            assert isinstance(make_allocator(name, 100.0, 50.0, 4), cls)
        with pytest.raises(ValueError, match="unknown allocator"):
            make_allocator("bogus", 100.0, 50.0, 4)

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="n_users"):
            StaticAllocator(100.0, 50.0, 0)
        with pytest.raises(ValueError, match="qos_loss"):
            StaticAllocator(100.0, 50.0, 4, qos_loss=1.5)
        with pytest.raises(ValueError, match="floor_fraction"):
            StaticAllocator(100.0, 50.0, 4, floor_fraction=1.0)
        with pytest.raises(ValueError, match="one entry per user"):
            StaticAllocator(100.0, 50.0, 4, weights=np.ones(3))
        with pytest.raises(ValueError, match="refine_rounds"):
            OracleAllocator(100.0, 50.0, 4, refine_rounds=-1)
        with pytest.raises(ValueError, match="harvest_fraction"):
            HarvestAllocator(100.0, 50.0, 4, harvest_fraction=0.0)
        with pytest.raises(ValueError, match="util_threshold"):
            TradeAllocator(100.0, 50.0, 4, util_threshold=1.0)

    def test_initial_allocation_respects_weights_and_conserves(self):
        policy = StaticAllocator(120.0, 60.0, 3, weights=np.array([1.0, 2.0, 3.0]))
        alloc = policy.initial_allocation()
        assert exact_sum(alloc.capacity) == 120.0
        assert exact_sum(alloc.buffer) == 60.0
        assert alloc.capacity[0] < alloc.capacity[1] < alloc.capacity[2]

    def test_step_rejects_a_leaky_decision(self):
        class Leaky(StaticAllocator):
            def decide(self, epoch_index, observation, current, epoch_seed):
                capacity = current.capacity.copy()
                capacity[0] += 1.0
                return Allocation(capacity, current.buffer)

        policy = Leaky(100.0, 50.0, 4)
        alloc = policy.initial_allocation()
        obs = EpochObservation(
            epoch_slots=10, offered=np.ones(4), lost=np.zeros(4),
            backlog=np.zeros(4), peak_backlog=np.zeros(4),
        )
        with pytest.raises(AllocationError, match="not conserved"):
            policy.step(0, obs, alloc, epoch_seed=1)

    def test_loss_rate_handles_zero_offered(self):
        obs = EpochObservation(
            epoch_slots=10, offered=np.array([0.0, 100.0]),
            lost=np.array([0.0, 5.0]), backlog=np.zeros(2),
            peak_backlog=np.zeros(2),
        )
        np.testing.assert_allclose(obs.loss_rate(), [0.0, 0.05])
