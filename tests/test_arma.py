"""Tests for the ARMA process and Yule-Walker estimation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arma import ARMAProcess, yule_walker


class TestConstruction:
    def test_white_noise_default(self):
        p = ARMAProcess()
        assert p.order == (0, 0)
        assert p.variance() == pytest.approx(1.0)

    def test_rejects_nonstationary_ar(self):
        with pytest.raises(ValueError):
            ARMAProcess(ar=[1.0])
        with pytest.raises(ValueError):
            ARMAProcess(ar=[1.5, -0.4])

    def test_stationarity_check(self):
        assert ARMAProcess.is_stationary([0.5])
        assert ARMAProcess.is_stationary([0.5, 0.3])
        assert not ARMAProcess.is_stationary([0.9, 0.2])

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            ARMAProcess(ar=[0.5], sigma_eps=0.0)


class TestSecondOrderStructure:
    def test_ar1_acf_geometric(self):
        p = ARMAProcess(ar=[0.8])
        np.testing.assert_allclose(p.acf(4), [1.0, 0.8, 0.64, 0.512, 0.4096], rtol=1e-9)

    def test_ar1_variance(self):
        """Var = sigma^2 / (1 - phi^2)."""
        p = ARMAProcess(ar=[0.6], sigma_eps=2.0)
        assert p.variance() == pytest.approx(4.0 / (1 - 0.36), rel=1e-9)

    def test_ma1_acf(self):
        """MA(1): rho_1 = theta / (1 + theta^2), rho_k = 0 for k > 1."""
        theta = 0.5
        p = ARMAProcess(ma=[theta])
        acf = p.acf(3)
        assert acf[1] == pytest.approx(theta / (1 + theta**2), rel=1e-9)
        np.testing.assert_allclose(acf[2:], 0.0, atol=1e-12)

    def test_arma11_acf_known(self):
        """ARMA(1,1) rho_1 = (1+phi theta)(phi+theta) / (1+2 phi theta+theta^2)."""
        phi, theta = 0.7, 0.3
        p = ARMAProcess(ar=[phi], ma=[theta])
        expected_r1 = (1 + phi * theta) * (phi + theta) / (1 + 2 * phi * theta + theta**2)
        assert p.acf(1)[1] == pytest.approx(expected_r1, rel=1e-9)
        # Beyond lag 1 the ACF decays geometrically with phi.
        acf = p.acf(5)
        np.testing.assert_allclose(acf[2:] / acf[1:-1], phi, rtol=1e-9)

    def test_psi_weights_ar1(self):
        p = ARMAProcess(ar=[0.5])
        np.testing.assert_allclose(p.ma_infinity_weights(5), 0.5 ** np.arange(5), rtol=1e-12)

    def test_acf_summable(self):
        """ARMA correlations are geometrically summable (SRD) --
        contrast with the fARIMA divergence tested elsewhere."""
        p = ARMAProcess(ar=[0.9])
        s1 = p.acf(500).sum()
        s2 = p.acf(5000).sum()
        assert s2 == pytest.approx(s1, rel=1e-3)


class TestGeneration:
    def test_sample_acf_matches_theory(self, rng):
        p = ARMAProcess(ar=[0.7], ma=[0.2])
        x = p.generate(60_000, rng=rng)
        r1 = np.corrcoef(x[:-1], x[1:])[0, 1]
        assert r1 == pytest.approx(p.acf(1)[1], abs=0.02)

    def test_sample_variance(self, rng):
        p = ARMAProcess(ar=[0.5], sigma_eps=3.0)
        x = p.generate(60_000, rng=rng)
        assert np.var(x) == pytest.approx(p.variance(), rel=0.05)

    def test_reproducible(self):
        p = ARMAProcess(ar=[0.5])
        a = p.generate(100, rng=np.random.default_rng(3))
        b = p.generate(100, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_burn_in_removes_transient(self, rng):
        """The first sample is already stationary (no startup bias)."""
        p = ARMAProcess(ar=[0.95])
        starts = [p.generate(2, rng=np.random.default_rng(s))[0] for s in range(300)]
        assert np.std(starts) == pytest.approx(np.sqrt(p.variance()), rel=0.2)


class TestYuleWalker:
    def test_recovers_ar2(self, rng):
        true = ARMAProcess(ar=[0.5, 0.25])
        x = true.generate(100_000, rng=rng)
        phi, sigma = yule_walker(x, 2)
        np.testing.assert_allclose(phi, [0.5, 0.25], atol=0.03)
        assert sigma == pytest.approx(1.0, rel=0.05)

    def test_white_noise_gives_zero(self, rng):
        phi, sigma = yule_walker(rng.standard_normal(50_000), 2)
        np.testing.assert_allclose(phi, 0.0, atol=0.02)

    def test_rejects_short_series(self):
        with pytest.raises(ValueError):
            yule_walker([1.0, 2.0], 3)

    def test_rejects_constant(self):
        with pytest.raises(ValueError):
            yule_walker(np.ones(100), 1)


@settings(max_examples=25, deadline=None)
@given(phi=st.floats(min_value=-0.9, max_value=0.9))
def test_ar1_acf_property(phi):
    """Property: AR(1) ACF is phi^k for any stationary phi."""
    if abs(phi) < 1e-6:
        phi = 0.1
    p = ARMAProcess(ar=[phi])
    acf = p.acf(6)
    np.testing.assert_allclose(acf, phi ** np.arange(7.0), rtol=1e-6, atol=1e-9)
