"""Tests for the baseline traffic models of the Fig. 16 comparison."""

import numpy as np
import pytest

from repro.core.baselines import AR1Model, DAR1Model, GaussianFarimaModel, IIDGammaParetoModel
from repro.distributions import GammaParetoHybrid


@pytest.fixture(scope="module")
def marginal():
    return GammaParetoHybrid(1000.0, 250.0, 8.0)


class TestIIDGammaPareto:
    def test_marginal_statistics(self, marginal, rng):
        y = IIDGammaParetoModel(marginal).generate(50_000, rng=rng)
        assert np.mean(y) == pytest.approx(marginal.mean(), rel=0.02)

    def test_no_time_correlation(self, marginal, rng):
        y = IIDGammaParetoModel(marginal).generate(20_000, rng=rng)
        r1 = np.corrcoef(y[:-1], y[1:])[0, 1]
        assert abs(r1) < 0.03

    def test_h_half(self, marginal, rng):
        from repro.analysis.hurst import variance_time

        y = IIDGammaParetoModel(marginal).generate(2**14, rng=rng)
        assert variance_time(y).hurst == pytest.approx(0.5, abs=0.07)

    def test_rejects_non_distribution(self):
        with pytest.raises(TypeError):
            IIDGammaParetoModel(42)


class TestGaussianFarima:
    def test_mean_and_std(self, rng):
        m = GaussianFarimaModel(1000.0, 100.0, 0.8, generator="davies-harte")
        y = m.generate(20_000, rng=rng)
        assert np.mean(y) == pytest.approx(1000.0, rel=0.05)
        assert np.std(y) == pytest.approx(100.0, rel=0.15)

    def test_no_heavy_tail(self, rng):
        """Gaussian marginals: essentially no mass beyond 5 sigma."""
        m = GaussianFarimaModel(1000.0, 100.0, 0.8, generator="davies-harte")
        y = m.generate(50_000, rng=rng)
        assert np.max(y) < 1000.0 + 6.5 * 100.0

    def test_retains_lrd(self, rng):
        from repro.analysis.hurst import variance_time

        m = GaussianFarimaModel(1000.0, 100.0, 0.8, generator="davies-harte")
        y = m.generate(2**14, rng=rng)
        assert variance_time(y).hurst == pytest.approx(0.8, abs=0.08)

    def test_clipping_at_zero(self, rng):
        """High-CoV Gaussian traffic is clipped at zero (no negative
        bandwidth)."""
        m = GaussianFarimaModel(10.0, 100.0, 0.6, generator="davies-harte")
        y = m.generate(5_000, rng=rng)
        assert np.all(y >= 0)

    def test_rejects_bad_generator(self):
        with pytest.raises(ValueError):
            GaussianFarimaModel(1.0, 1.0, 0.8, generator="spectral")


class TestAR1:
    def test_theoretical_acf(self):
        m = AR1Model(100.0, 10.0, 0.9)
        np.testing.assert_allclose(m.acf(3), [1.0, 0.9, 0.81, 0.729])

    def test_sample_acf_matches(self, rng):
        m = AR1Model(100.0, 10.0, 0.8)
        y = m.generate(30_000, rng=rng)
        r1 = np.corrcoef(y[:-1], y[1:])[0, 1]
        assert r1 == pytest.approx(0.8, abs=0.03)

    def test_marginal_std(self, rng):
        m = AR1Model(100.0, 10.0, 0.7)
        y = m.generate(30_000, rng=rng)
        assert np.std(y) == pytest.approx(10.0, rel=0.1)

    def test_is_srd(self, rng):
        from repro.analysis.hurst import variance_time

        y = AR1Model(100.0, 10.0, 0.9).generate(2**15, rng=rng)
        # Fit the slope well beyond the AR(1) correlation time (~10
        # slots at phi = 0.9), where SRD aggregation behaves like
        # white noise and the slope approaches -1.
        est = variance_time(y, fit_range=(100, 2000))
        assert est.hurst < 0.65

    def test_rejects_nonstationary_phi(self):
        with pytest.raises(ValueError):
            AR1Model(1.0, 1.0, 1.0)


class TestDAR1:
    def test_marginal_preserved_exactly(self, marginal, rng):
        """DAR(1)'s stationary marginal equals the innovation law."""
        m = DAR1Model(marginal, rho=0.9)
        y = m.generate(50_000, rng=rng)
        for q in (0.25, 0.5, 0.75):
            assert np.quantile(y, q) == pytest.approx(marginal.ppf(q), rel=0.05)

    def test_acf_geometric(self, marginal, rng):
        m = DAR1Model(marginal, rho=0.8)
        y = m.generate(40_000, rng=rng)
        r1 = np.corrcoef(y[:-1], y[1:])[0, 1]
        r2 = np.corrcoef(y[:-2], y[2:])[0, 1]
        assert r1 == pytest.approx(0.8, abs=0.05)
        assert r2 == pytest.approx(0.64, abs=0.05)

    def test_piecewise_constant_paths(self, marginal, rng):
        """DAR(1) holds its level between innovations -- runs of equal
        values occur with the expected geometric length."""
        m = DAR1Model(marginal, rho=0.9)
        y = m.generate(10_000, rng=rng)
        repeats = np.mean(y[1:] == y[:-1])
        assert repeats == pytest.approx(0.9, abs=0.02)

    def test_theoretical_acf(self, marginal):
        m = DAR1Model(marginal, rho=0.7)
        np.testing.assert_allclose(m.acf(2), [1.0, 0.7, 0.49])

    def test_rejects_bad_rho(self, marginal):
        with pytest.raises(ValueError):
            DAR1Model(marginal, rho=1.0)
