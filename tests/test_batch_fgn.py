"""Tier-1 bit-identity wall for the batched fGn synthesis layer.

``batch_fgn`` stacks B Hermitian spectra into one 2-D inverse FFT;
pocketfft runs each row with the same 1-D plan a single-trace call
would use, so every row must equal the corresponding
``PaxsonGenerator``/``DaviesHarteGenerator`` sample **bit for bit** --
not approximately.  These tests pin that per backend, Hurst value,
batch size and odd/even length, then walk the identity up the stack:
the pooled fan-out (``batch_fgn_pool``, ``shard_fgn(batch=...)``), the
independent-source multiplexer, and the streaming block source must
all be pure execution strategies -- ``batch`` and ``workers`` change
wall-clock time and nothing else.
"""

import numpy as np
import pytest

from repro.core.batch import batch_fgn, batch_generate, batch_row_seeds
from repro.core.daviesharte import DaviesHarteGenerator
from repro.core.paxson import PaxsonGenerator
from repro.par.batch import batch_fgn_pool, default_batch, set_default_batch
from repro.par.pool import derive_task_seed
from repro.par.shard import shard_fgn
from repro.simulation.multiplex import multiplex_fgn
from repro.stream.sources import make_source

BACKENDS = {"paxson": PaxsonGenerator, "davies-harte": DaviesHarteGenerator}
HURSTS = (0.5, 0.7, 0.9)
BATCHES = (1, 2, 7)
WORKER_COUNTS = (1, 2, 5)


class TestRowBitIdentity:
    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    @pytest.mark.parametrize("hurst", HURSTS)
    @pytest.mark.parametrize("batch", BATCHES)
    @pytest.mark.parametrize("n", (256, 257))  # even and odd lengths
    def test_rows_match_single_trace_calls(self, backend, hurst, batch, n):
        rows = batch_fgn(n, hurst, batch, backend=backend, seed=11)
        assert rows.shape == (batch, n)
        generator = BACKENDS[backend](hurst)
        for i, row_seed in enumerate(batch_row_seeds(11, batch)):
            reference = generator.generate(n, rng=np.random.default_rng(row_seed))
            np.testing.assert_array_equal(rows[i], reference)

    def test_explicit_seeds_override_derivation(self):
        seeds = [301, 17, 301]  # repeats allowed: rows 0 and 2 coincide
        rows = batch_fgn(500, 0.8, 3, seeds=seeds)
        np.testing.assert_array_equal(rows[0], rows[2])
        assert not np.array_equal(rows[0], rows[1])
        single = PaxsonGenerator(0.8).generate(500, rng=np.random.default_rng(17))
        np.testing.assert_array_equal(rows[1], single)

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_shared_rng_mode_matches_sequential_calls(self, backend):
        rows = batch_fgn(300, 0.7, 4, backend=backend,
                         rng=np.random.default_rng(42))
        generator = BACKENDS[backend](0.7)
        rng = np.random.default_rng(42)
        for i in range(4):
            np.testing.assert_array_equal(rows[i], generator.generate(300, rng=rng))

    def test_n_equals_one(self):
        rows = batch_fgn(1, 0.8, 3, seed=5)
        assert rows.shape == (3, 1)
        for i, row_seed in enumerate(batch_row_seeds(5, 3)):
            reference = PaxsonGenerator(0.8).generate(
                1, rng=np.random.default_rng(row_seed)
            )
            np.testing.assert_array_equal(rows[i], reference)

    def test_batch_generate_reuses_a_live_generator(self):
        generator = DaviesHarteGenerator(0.8)
        rngs = [np.random.default_rng(s) for s in (3, 9)]
        rows = batch_generate(generator, 200, rngs)
        for i, seed in enumerate((3, 9)):
            np.testing.assert_array_equal(
                rows[i], generator.generate(200, rng=np.random.default_rng(seed))
            )


class TestValidation:
    def test_zero_batch_names_requested_shape(self):
        with pytest.raises(ValueError, match=r"\(0, 128\)"):
            batch_fgn(128, 0.8, 0)

    def test_non_integer_batch_names_requested_shape(self):
        with pytest.raises(ValueError, match=r"positive integer.*2\.5"):
            batch_fgn(128, 0.8, 2.5)

    def test_bool_batch_rejected(self):
        with pytest.raises(ValueError, match="positive integer"):
            batch_fgn(128, 0.8, True)

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            batch_fgn(128, 0.8, 2, backend="hosking")

    def test_seeds_length_mismatch(self):
        with pytest.raises(ValueError, match="need 3 row seeds, got 2"):
            batch_fgn(128, 0.8, 3, seeds=[1, 2])

    def test_rng_and_seeds_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            batch_fgn(128, 0.8, 2, seeds=[1, 2], rng=np.random.default_rng(0))

    def test_batch_generate_rejects_foreign_generators(self):
        with pytest.raises(TypeError, match="PaxsonGenerator"):
            batch_generate(object(), 128, [np.random.default_rng(0)])

    def test_batch_generate_requires_rows(self):
        with pytest.raises(ValueError, match="at least one row"):
            batch_generate(PaxsonGenerator(0.8), 128, [])


class TestDefaultBatch:
    def test_set_and_restore(self):
        previous = set_default_batch(4)
        try:
            assert default_batch() == 4
        finally:
            set_default_batch(previous)
        assert default_batch() == previous

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="batch"):
            set_default_batch(0)


class TestPooledBatching:
    """batch/workers grouping never changes the stacked rows."""

    @pytest.mark.parametrize("batch", BATCHES)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_batch_fgn_pool_invariance(self, batch, workers):
        reference = batch_fgn(400, 0.8, 5, seed=13)
        rows = batch_fgn_pool(400, 0.8, 5, seed=13, batch=batch, workers=workers)
        np.testing.assert_array_equal(rows, reference)

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    @pytest.mark.parametrize("batch", BATCHES)
    def test_shard_fgn_batch_invariance(self, backend, batch):
        # Odd boundaries: short final shard with a cross-fade seam.
        reference = shard_fgn(
            10_001, 0.8, backend=backend, seed=5,
            shard_size=3000, overlap=100, workers=1, batch=1,
        )
        for workers in WORKER_COUNTS:
            np.testing.assert_array_equal(
                shard_fgn(
                    10_001, 0.8, backend=backend, seed=5,
                    shard_size=3000, overlap=100, workers=workers, batch=batch,
                ),
                reference,
            )

    def test_pool_rows_carry_the_shardlike_seed_scheme(self):
        rows = batch_fgn_pool(200, 0.8, 3, seed=21, batch=2)
        for i in range(3):
            row_seed = derive_task_seed(21, i, label="batch")
            reference = PaxsonGenerator(0.8).generate(
                200, rng=np.random.default_rng(row_seed)
            )
            np.testing.assert_array_equal(rows[i], reference)


class TestMultiplexFGN:
    @pytest.mark.parametrize("batch", BATCHES)
    def test_aggregate_is_batch_invariant(self, batch):
        reference = multiplex_fgn(600, 0.8, 5, seed=3, batch=1)
        np.testing.assert_array_equal(
            multiplex_fgn(600, 0.8, 5, seed=3, batch=batch), reference
        )

    def test_marginal_mode_is_batch_invariant(self, paper_marginal):
        reference = multiplex_fgn(400, 0.8, 4, seed=8, batch=1,
                                  marginal=paper_marginal)
        np.testing.assert_array_equal(
            multiplex_fgn(400, 0.8, 4, seed=8, batch=4, marginal=paper_marginal),
            reference,
        )


class TestStreamingSourceBatch:
    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    @pytest.mark.parametrize("batch", BATCHES)
    def test_block_source_emits_identical_samples(self, backend, batch):
        def samples(b):
            source = make_source(backend, hurst=0.8, block_size=1_024,
                                 overlap=64, batch=b)
            rng = np.random.default_rng(31)
            return np.concatenate(list(source.chunks(5_000, 700, rng=rng)))

        np.testing.assert_array_equal(samples(batch), samples(1))

    def test_hosking_ignores_batch(self):
        source = make_source("hosking", hurst=0.8, batch=8)
        rng = np.random.default_rng(2)
        chunks = list(source.chunks(256, 100, rng=rng))
        assert sum(c.size for c in chunks) == 256
