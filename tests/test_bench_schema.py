"""Every BENCH_*.json at the repo root must be a valid repro-bench/1
document with its budgets satisfied.

The benchmark writers (``benchmarks/test_*.py``) and the nightly
``repro obs bench-diff`` gate both speak this schema; a committed file
that drifts from it -- wrong shape, bad name, or a recorded value that
already violates its own budget -- fails here, in the PR gate.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.obs.bench import load_bench

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_FILES = sorted(REPO_ROOT.glob("BENCH_*.json"))


def test_bench_files_exist():
    assert BENCH_FILES, "no BENCH_*.json committed at the repo root"


@pytest.mark.parametrize("path", BENCH_FILES, ids=lambda p: p.name)
def test_bench_file_is_valid(path):
    doc = load_bench(path)  # validates schema, names, and budgets
    names = [entry["name"] for entry in doc["benchmarks"]]
    assert names == sorted(names), f"{path.name}: entries not sorted by name"
    assert len(set(names)) == len(names), f"{path.name}: duplicate entry names"
