"""Tests for the bitstream and run-length coding layers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video.bitstream import BitReader, BitWriter
from repro.video.rle import (
    EOB,
    ZRL,
    decode_amplitude,
    encode_amplitude,
    magnitude_category,
    rle_decode_block,
    rle_encode_block,
)


class TestBitstream:
    def test_roundtrip_fields(self):
        w = BitWriter()
        w.write_bits(5, 3)
        w.write_bits(0, 1)
        w.write_bits(1023, 10)
        r = BitReader(w.getvalue())
        assert r.read_bits(3) == 5
        assert r.read_bits(1) == 0
        assert r.read_bits(10) == 1023

    def test_bit_length_tracking(self):
        w = BitWriter()
        w.write_bits(1, 1)
        w.write_bits(3, 2)
        assert w.bit_length == 3

    def test_msb_first_packing(self):
        w = BitWriter()
        w.write_bits(0b1, 1)
        w.write_bits(0b0000000, 7)
        assert w.getvalue() == b"\x80"

    def test_padding_to_byte(self):
        w = BitWriter()
        w.write_bits(1, 1)
        assert len(w.getvalue()) == 1

    def test_zero_width_write(self):
        w = BitWriter()
        w.write_bits(0, 0)
        assert w.bit_length == 0

    def test_value_too_large(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bits(4, 2)

    def test_read_past_end(self):
        r = BitReader(b"\xff")
        r.read_bits(8)
        with pytest.raises(EOFError):
            r.read_bit()

    def test_bits_remaining(self):
        r = BitReader(b"\x00\x00")
        r.read_bits(3)
        assert r.bits_remaining == 13


class TestAmplitudeCoding:
    def test_categories(self):
        assert magnitude_category(0) == 0
        assert magnitude_category(1) == 1
        assert magnitude_category(-1) == 1
        assert magnitude_category(255) == 8
        assert magnitude_category(-256) == 9

    @pytest.mark.parametrize("value", [-255, -16, -1, 0, 1, 7, 128, 1000])
    def test_roundtrip(self, value):
        bits, size = encode_amplitude(value)
        assert decode_amplitude(bits, size) == value

    def test_negative_clears_top_bit(self):
        """One's-complement convention: negatives have a 0 top bit."""
        bits, size = encode_amplitude(-5)
        assert size == 3
        assert (bits >> (size - 1)) == 0


class TestRLEBlock:
    def test_simple_block(self):
        coeffs = np.zeros(64, dtype=int)
        coeffs[0] = 10  # DC
        coeffs[3] = -2
        symbols, amplitudes = rle_encode_block(coeffs)
        assert symbols[0] == ("DC", 4)
        assert symbols[1] == ("AC", 2, 2)
        assert symbols[-1] == EOB
        np.testing.assert_array_equal(rle_decode_block(symbols, amplitudes), coeffs)

    def test_all_zero_block(self):
        coeffs = np.zeros(64, dtype=int)
        symbols, amplitudes = rle_encode_block(coeffs)
        assert symbols == [("DC", 0), EOB]
        np.testing.assert_array_equal(rle_decode_block(symbols, amplitudes), coeffs)

    def test_long_zero_run_uses_zrl(self):
        coeffs = np.zeros(64, dtype=int)
        coeffs[0] = 1
        coeffs[40] = 3  # run of 39 zeros -> 2 ZRLs + run 7
        symbols, amplitudes = rle_encode_block(coeffs)
        assert symbols.count(ZRL) == 2
        np.testing.assert_array_equal(rle_decode_block(symbols, amplitudes), coeffs)

    def test_dense_block_no_eob(self):
        """A block ending in a nonzero coefficient has no EOB."""
        coeffs = np.arange(1, 65)
        symbols, amplitudes = rle_encode_block(coeffs)
        assert EOB not in symbols
        np.testing.assert_array_equal(rle_decode_block(symbols, amplitudes), coeffs)

    def test_negative_dc(self):
        coeffs = np.zeros(64, dtype=int)
        coeffs[0] = -100
        symbols, amplitudes = rle_encode_block(coeffs)
        np.testing.assert_array_equal(rle_decode_block(symbols, amplitudes), coeffs)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            rle_encode_block(np.array([]))

    def test_decode_validates_lengths(self):
        with pytest.raises(ValueError):
            rle_decode_block([("DC", 1)], [])

    def test_decode_requires_dc_first(self):
        with pytest.raises(ValueError):
            rle_decode_block([EOB], [(0, 0)])


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 100_000), sparsity=st.floats(0.0, 1.0))
def test_rle_roundtrip_property(seed, sparsity):
    """Property: RLE decode(encode(x)) == x for arbitrary sparse blocks."""
    rng = np.random.default_rng(seed)
    coeffs = rng.integers(-200, 200, size=64)
    mask = rng.uniform(size=64) < sparsity
    coeffs[mask] = 0
    symbols, amplitudes = rle_encode_block(coeffs)
    np.testing.assert_array_equal(rle_decode_block(symbols, amplitudes), coeffs)


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(
        st.tuples(st.integers(0, 2**12 - 1), st.integers(1, 12)), min_size=1, max_size=50
    )
)
def test_bitstream_roundtrip_property(values):
    """Property: any sequence of (value, width) fields roundtrips."""
    w = BitWriter()
    for value, width in values:
        w.write_bits(value & ((1 << width) - 1), width)
    r = BitReader(w.getvalue())
    for value, width in values:
        assert r.read_bits(width) == (value & ((1 << width) - 1))
