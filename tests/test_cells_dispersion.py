"""Tests for cell-level arrivals and the index of dispersion."""

import numpy as np
import pytest

from repro.analysis.dispersion import index_of_dispersion
from repro.simulation.cells import (
    CELL_PAYLOAD_BYTES,
    cell_arrivals,
    packetize,
    simulate_cell_queue,
)


class TestPacketize:
    def test_ceiling_division(self):
        np.testing.assert_array_equal(packetize([0, 1, 48, 49, 96]), [0, 1, 1, 2, 2])

    def test_custom_payload(self):
        np.testing.assert_array_equal(packetize([100], cell_payload=50), [2])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            packetize([-1.0])


class TestCellArrivals:
    def test_uniform_conserves_cells(self, small_trace):
        grid = cell_arrivals(small_trace, unit="frame", subslots=30, spacing="uniform")
        expected = packetize(small_trace.frame_bytes).sum()
        assert grid.sum() == expected

    def test_random_conserves_cells(self, small_trace, rng):
        grid = cell_arrivals(small_trace, unit="frame", subslots=30, spacing="random", rng=rng)
        expected = packetize(small_trace.frame_bytes).sum()
        assert grid.sum() == expected

    def test_uniform_spacing_is_even(self):
        from repro.video.trace import VBRTrace

        trace = VBRTrace(np.array([48.0 * 60]))  # exactly 60 cells
        grid = cell_arrivals(trace, subslots=30, spacing="uniform")
        np.testing.assert_array_equal(grid, np.full(30, 2))

    def test_uniform_remainder_spread(self):
        from repro.video.trace import VBRTrace

        trace = VBRTrace(np.array([48.0 * 31]))  # 31 cells over 30 slots
        grid = cell_arrivals(trace, subslots=30, spacing="uniform")
        assert grid.sum() == 31
        assert grid.max() == 2
        assert grid.min() == 1

    def test_random_more_variable_than_uniform(self, small_trace, rng):
        uni = cell_arrivals(small_trace, subslots=30, spacing="uniform")
        ran = cell_arrivals(small_trace, subslots=30, spacing="random", rng=rng)
        assert ran.var() > uni.var()

    def test_grid_length(self, small_trace):
        grid = cell_arrivals(small_trace, unit="frame", subslots=10)
        assert grid.size == small_trace.n_frames * 10

    def test_slice_unit(self, small_trace):
        grid = cell_arrivals(small_trace, unit="slice", subslots=2)
        assert grid.size == small_trace.n_frames * small_trace.slices_per_frame * 2

    def test_rejects_bad_spacing(self, small_trace):
        with pytest.raises(ValueError):
            cell_arrivals(small_trace, spacing="bursty")


class TestCellQueue:
    def test_no_loss_with_peak_capacity(self, small_trace):
        peak_bps = small_trace.peak_rate_bps * 1.2
        result = simulate_cell_queue(small_trace, peak_bps, buffer_cells=100)
        assert result.loss_rate == 0.0

    def test_loss_under_pressure(self, small_trace):
        mean_bps = small_trace.mean_rate_bps
        result = simulate_cell_queue(small_trace, mean_bps * 1.01, buffer_cells=10)
        assert result.loss_rate > 0

    def test_agrees_with_fluid_model(self, small_trace):
        """Cell-level and byte-fluid losses agree closely at matched
        parameters -- the justification for the fluid Q-C machinery
        (and the paper's own finding that spacing details barely
        matter)."""
        from repro.simulation.queue import simulate_queue

        capacity_bps = small_trace.mean_rate_bps * 1.05
        buffer_bytes = 200_000.0
        fluid = simulate_queue(
            small_trace.frame_bytes,
            capacity_bps / 8.0 / small_trace.frame_rate,
            buffer_bytes,
        )
        cells = simulate_cell_queue(
            small_trace, capacity_bps, buffer_cells=buffer_bytes / CELL_PAYLOAD_BYTES
        )
        assert cells.loss_rate == pytest.approx(fluid.loss_rate, rel=0.25)

    def test_uniform_vs_random_spacing_minor(self, small_trace, rng):
        """The paper's observation: spacing choice changes little."""
        capacity_bps = small_trace.mean_rate_bps * 1.05
        uni = simulate_cell_queue(small_trace, capacity_bps, 2000, spacing="uniform")
        ran = simulate_cell_queue(small_trace, capacity_bps, 2000, spacing="random", rng=rng)
        assert ran.loss_rate == pytest.approx(uni.loss_rate, rel=0.2)


class TestIndexOfDispersion:
    def test_iid_poisson_like_flat(self, rng):
        x = rng.poisson(10.0, size=100_000).astype(float)
        result = index_of_dispersion(x)
        assert abs(result.slope) < 0.1
        assert result.hurst == pytest.approx(0.5, abs=0.06)

    def test_fgn_growth_rate(self, fgn_path):
        """IDC grows like m^(2H-1) for LRD input."""
        x = fgn_path - fgn_path.min() + 1.0  # make non-negative
        result = index_of_dispersion(x)
        assert result.hurst == pytest.approx(0.8, abs=0.08)

    def test_reference_trace_lrd(self, small_series):
        result = index_of_dispersion(small_series)
        assert result.hurst > 0.7
        # IDC grows monotonically (up to noise) across decades.
        assert result.idc[-1] > 10 * result.idc[0]

    def test_consistent_with_variance_time(self, small_series):
        """IDC and variance-time measure the same exponent."""
        from repro.analysis.hurst import variance_time

        h_idc = index_of_dispersion(small_series).hurst
        h_vt = variance_time(small_series).hurst
        assert h_idc == pytest.approx(h_vt, abs=0.03)

    def test_rejects_negative_data(self):
        with pytest.raises(ValueError):
            index_of_dispersion(np.linspace(-1, 1, 500))

    def test_rejects_zero_mean(self):
        with pytest.raises(ValueError):
            index_of_dispersion(np.zeros(500))
