"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_synthesize_args(self):
        args = build_parser().parse_args(
            ["synthesize", "--frames", "100", "--out", "x.dat"]
        )
        assert args.command == "synthesize"
        assert args.frames == 100

    def test_simulate_requires_capacity(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "t.dat"])

    def test_stream_defaults(self):
        args = build_parser().parse_args(["stream"])
        assert args.command == "stream"
        assert args.samples == 1_000_000
        assert args.chunk == 65_536
        assert args.backend == "paxson"
        assert args.out == "-"

    def test_stream_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--backend", "exact"])


class TestCommands:
    def test_synthesize_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "trace.dat"
        assert main(["synthesize", "--frames", "2000", "--out", str(out)]) == 0
        assert out.exists()
        from repro.video.tracefile import load_trace

        trace = load_trace(out)
        assert trace.n_frames == 2000
        # Diagnostics go through the obs logger to stderr; stdout stays
        # reserved for data products.
        captured = capsys.readouterr()
        assert "wrote 2000 frames" in captured.err
        assert captured.out == ""

    def test_synthesize_slice_unit(self, tmp_path):
        out = tmp_path / "slices.dat"
        assert main(["synthesize", "--frames", "500", "--unit", "slice", "--out", str(out)]) == 0
        from repro.video.tracefile import load_trace

        trace = load_trace(out)
        assert trace.has_slice_data

    def test_synthesize_mpeg(self, tmp_path):
        out = tmp_path / "mpeg.dat"
        assert main(["synthesize", "--frames", "1200", "--mpeg", "--out", str(out)]) == 0
        from repro.video.tracefile import load_trace

        trace = load_trace(out)
        assert trace.n_frames == 1200

    def test_analyze_synthetic(self, capsys):
        assert main(["analyze", "--synthetic", "--frames", "4000"]) == 0
        out = capsys.readouterr().out
        assert "Hurst estimates" in out
        assert "Tail ranking" in out

    def test_analyze_file(self, tmp_path, capsys):
        path = tmp_path / "t.dat"
        main(["synthesize", "--frames", "3000", "--out", str(path)])
        capsys.readouterr()
        assert main(["analyze", str(path)]) == 0
        assert "Summary (frame)" in capsys.readouterr().out

    def test_simulate(self, capsys):
        code = main([
            "simulate", "--synthetic", "--frames", "4000",
            "--sources", "2", "--capacity-mbps", "12", "--buffer-ms", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "loss rate" in out
        assert "utilization" in out

    def test_simulate_overprovisioned_no_loss(self, capsys):
        main([
            "simulate", "--synthetic", "--frames", "3000",
            "--sources", "1", "--capacity-mbps", "20", "--buffer-ms", "100",
        ])
        out = capsys.readouterr().out
        assert "P_l = 0.000e+00" in out

    def test_generate(self, tmp_path, capsys):
        out_path = tmp_path / "gen.dat"
        code = main([
            "generate", "--synthetic", "--frames", "3000", "--out", str(out_path)
        ])
        assert code == 0
        from repro.video.tracefile import load_trace

        trace = load_trace(out_path)
        assert trace.n_frames == 3000
        # Generated traffic carries the fitted statistics.
        assert np.mean(trace.frame_bytes) == pytest.approx(27_791, rel=0.15)

    def test_report(self, capsys):
        code = main(["report", "--synthetic", "--frames", "5000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "VERDICT" in out
        assert "Hurst panel" in out


class TestStreamCommand:
    def test_npy_output(self, tmp_path, capsys):
        out = tmp_path / "frames.npy"
        code = main([
            "stream", "--samples", "20000", "--chunk", "4096",
            "--backend", "paxson", "--block-size", "4096", "--overlap", "256",
            "--out", str(out), "--stats",
        ])
        assert code == 0
        x = np.load(out)
        assert x.shape == (20_000,)
        assert np.mean(x) == pytest.approx(27_791, rel=0.1)
        printed = capsys.readouterr().err  # diagnostics live on stderr
        assert "streamed 20000 samples" in printed
        assert "mean" in printed

    def test_stdout_lines(self, capsys):
        code = main([
            "stream", "--samples", "500", "--chunk", "128",
            "--backend", "hosking", "--gaussian",
        ])
        assert code == 0
        captured = capsys.readouterr()
        lines = captured.out.strip().split("\n")
        assert len(lines) == 500
        float(lines[0])  # each line is one sample
        assert "streamed 500 samples" in captured.err

    def test_matches_batch_model(self, tmp_path):
        """CLI hosking stream == VBRVideoModel.generate under the seed."""
        out = tmp_path / "s.npy"
        main([
            "stream", "--samples", "800", "--chunk", "100",
            "--backend", "hosking", "--seed", "42", "--out", str(out),
        ])
        from repro.core.model import VBRVideoModel

        model = VBRVideoModel(27_791.0, 6_254.0, 12.0, 0.8)
        ref = model.generate(800, rng=np.random.default_rng(42), generator="hosking")
        np.testing.assert_array_equal(np.load(out), ref)

    def test_multi_source_aggregate(self, tmp_path, capsys):
        out = tmp_path / "agg.npy"
        code = main([
            "stream", "--samples", "8000", "--chunk", "2048",
            "--block-size", "2048", "--overlap", "128",
            "--sources", "3", "--out", str(out),
        ])
        assert code == 0
        x = np.load(out)
        assert x.shape == (8000,)
        # The summed Gaussians are renormalized through the N(0, sqrt(N))
        # source law, so the emitted traffic keeps the paper marginal.
        assert np.mean(x) == pytest.approx(27_791, rel=0.1)

    def test_table_transform(self, tmp_path):
        out = tmp_path / "t.npy"
        code = main([
            "stream", "--samples", "5000", "--chunk", "1024",
            "--block-size", "1024", "--overlap", "64",
            "--table", "--out", str(out),
        ])
        assert code == 0
        assert np.load(out).shape == (5000,)

    def test_rejects_bad_samples(self):
        with pytest.raises(SystemExit):
            main(["stream", "--samples", "0"])

    def test_rejects_bad_batch(self):
        # Clean SystemExit, not a ValueError traceback from make_source.
        with pytest.raises(SystemExit, match="--batch"):
            main(["stream", "--samples", "1000", "--batch", "0"])
        with pytest.raises(SystemExit, match="--batch"):
            main(["experiments", "--quick", "--batch", "0"])

    def test_batched_stream_bit_identical(self, tmp_path):
        """--batch is a pure execution strategy: same bytes out."""
        a, b = tmp_path / "a.npy", tmp_path / "b.npy"
        base = ["stream", "--samples", "5000", "--chunk", "1024",
                "--backend", "paxson"]
        assert main(base + ["--out", str(a)]) == 0
        assert main(base + ["--batch", "4", "--out", str(b)]) == 0
        np.testing.assert_array_equal(np.load(a), np.load(b))


class TestStreamCommandRegressions:
    """Regression coverage for `repro stream` plumbing: the SIGPIPE
    quiet-exit path and the --stats accumulator wiring."""

    def test_sigpipe_exits_quietly(self, tmp_path):
        """`repro stream ... | head` must end with exit code 0 and no
        traceback: the writer sees BrokenPipeError mid-stream (the
        emitted text far exceeds the pipe buffer) and must swallow it,
        including the interpreter's exit-time stdout flush."""
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        src_dir = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        pipeline = (
            f"{sys.executable} -m repro stream --samples 300000 --chunk 8192 "
            "--backend paxson --block-size 8192 --overlap 256 --seed 0 "
            "| head -n 5"
        )
        proc = subprocess.run(
            ["bash", "-c", f"set -o pipefail; {pipeline}"],
            capture_output=True, text=True, timeout=120, env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert len(proc.stdout.strip().split("\n")) == 5
        assert "Traceback" not in proc.stderr
        assert "BrokenPipeError" not in proc.stderr

    def test_stats_match_online_moments_pass(self, tmp_path, capsys):
        """--stats must report exactly what an OnlineMoments pass over
        the written samples reports (same accumulator, same data)."""
        from repro.stream import OnlineMoments

        out = tmp_path / "stats.npy"
        code = main([
            "stream", "--samples", "20000", "--chunk", "4096",
            "--backend", "paxson", "--block-size", "4096", "--overlap", "256",
            "--seed", "42", "--out", str(out), "--stats",
        ])
        assert code == 0
        x = np.load(out)
        om = OnlineMoments()
        om.update(x)
        printed = capsys.readouterr().err  # diagnostics live on stderr
        assert om.count == 20_000
        expected = (
            f"mean {om.mean:.1f}  std {om.std:.1f}  "
            f"min {om.minimum:.1f}  max {om.maximum:.1f}"
        )
        assert expected in printed
        assert "streamed 20000 samples" in printed

    def test_stats_hurst_line_present(self, tmp_path, capsys):
        """The variance-time Hurst line appears whenever enough samples
        streamed for the dyadic fit to be defined."""
        out = tmp_path / "h.npy"
        code = main([
            "stream", "--samples", "30000", "--chunk", "4096",
            "--backend", "paxson", "--block-size", "8192", "--overlap", "256",
            "--seed", "7", "--out", str(out), "--stats",
        ])
        assert code == 0
        printed = capsys.readouterr().err  # diagnostics live on stderr
        assert "variance-time Hurst estimate:" in printed


class TestErrorHandling:
    """Bad user input must print one line on stderr and exit 2."""

    def test_missing_trace_exits_2(self, capsys):
        assert main(["analyze", "/no/such/trace.dat"]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert "Traceback" not in captured.err

    def test_malformed_trace_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.dat"
        path.write_text("100\noops\n")
        assert main(["analyze", str(path)]) == 2
        err = capsys.readouterr().err
        assert "bad.dat:2" in err

    def test_simulate_with_malformed_trace_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.dat"
        path.write_text("nan\n100\n")
        code = main(["simulate", str(path), "--capacity-mbps", "10"])
        assert code == 2
        assert "bad.dat:1" in capsys.readouterr().err

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(SystemExit, match="checkpoint-dir"):
            main(["experiments", "--quick", "--resume"])


class TestDoctorCommand:
    def make_file(self, tmp_path, text):
        path = tmp_path / "t.dat"
        path.write_text(text)
        return str(path)

    def test_clean_trace(self, tmp_path, capsys):
        path = self.make_file(tmp_path, "100\n200\n300\n")
        assert main(["doctor", path]) == 0
        out = capsys.readouterr().out
        assert "0 bad line(s)" in out
        assert out.strip().splitlines()[-1].startswith("clean:")

    def test_repairable_trace(self, tmp_path, capsys):
        path = self.make_file(tmp_path, "100\nnan\n300\n-5\n400\n")
        assert main(["doctor", path]) == 0
        out = capsys.readouterr().out
        assert "2 bad line(s), 2 repaired" in out
        assert "NaN count" in out
        assert "negative count" in out
        assert out.strip().splitlines()[-1].startswith("repaired:")

    def test_unusable_trace(self, tmp_path, capsys):
        path = self.make_file(tmp_path, "x\ny\n")
        assert main(["doctor", path]) == 2
        assert "unusable" in capsys.readouterr().out

    def test_missing_trace(self, capsys):
        assert main(["doctor", "/no/such/file.dat"]) == 2
        assert "error: " in capsys.readouterr().err

    def test_budget_flag(self, tmp_path, capsys):
        path = self.make_file(tmp_path, "\n".join(["100", "bad"] * 10) + "\n")
        assert main(["doctor", path, "--repair-budget", "3"]) == 2
        assert "unusable" in capsys.readouterr().out


class TestLoggingFlags:
    """Global --log-level/--log-json/--quiet work before or after the
    subcommand, and diagnostics never leak onto stdout."""

    def test_quiet_before_subcommand_silences_stderr(self, tmp_path, capsys):
        out = tmp_path / "q.dat"
        assert main(["--quiet", "synthesize", "--frames", "500",
                     "--out", str(out)]) == 0
        captured = capsys.readouterr()
        assert captured.err == ""
        assert captured.out == ""

    def test_quiet_after_subcommand(self, tmp_path, capsys):
        out = tmp_path / "q.dat"
        assert main(["synthesize", "--frames", "500", "--out", str(out),
                     "--quiet"]) == 0
        assert capsys.readouterr().err == ""

    def test_log_json_emits_structured_lines(self, tmp_path, capsys):
        import json

        out = tmp_path / "j.dat"
        assert main(["--log-json", "synthesize", "--frames", "500",
                     "--out", str(out)]) == 0
        lines = [json.loads(l) for l in capsys.readouterr().err.splitlines()]
        wrote = [l for l in lines if "wrote" in l["msg"]]
        assert wrote and wrote[0]["logger"] == "repro.cli"
        assert wrote[0]["level"] == "INFO"

    def test_log_level_filters(self, tmp_path, capsys):
        out = tmp_path / "w.dat"
        assert main(["--log-level", "WARNING", "synthesize", "--frames", "500",
                     "--out", str(out)]) == 0
        assert "wrote" not in capsys.readouterr().err


class TestObsCommands:
    def _write_run(self, tmp_path):
        path = tmp_path / "run.json"
        from repro.obs import metrics, trace
        from repro.obs.report import profile

        with profile("unit", config={"n": 5}, seed=1, path=path):
            with trace.span("work", n=5):
                metrics.registry().counter("repro_test_cli_total").inc(5)
        return path

    def test_obs_report_renders_manifest(self, tmp_path, capsys):
        path = self._write_run(tmp_path)
        assert main(["obs", "report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "run: unit" in out
        assert "span totals" in out
        assert "work" in out
        assert "repro_test_cli_total" in out

    def test_obs_export_metrics_prometheus(self, tmp_path, capsys):
        path = self._write_run(tmp_path)
        assert main(["obs", "export-metrics", str(path)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_test_cli_total counter" in out
        assert "repro_test_cli_total 5" in out

    def test_obs_report_rejects_non_manifest(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "nope"}')
        assert main(["obs", "report", str(bad)]) == 2
        assert "error: " in capsys.readouterr().err

    def test_obs_bench_diff(self, tmp_path, capsys):
        import json

        from repro.obs.bench import make_bench

        entry = {"name": "rate", "value": 100.0, "unit": "samples/s",
                 "higher_is_better": True}
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        base.write_text(json.dumps(make_bench([entry])))
        cur.write_text(json.dumps(make_bench([dict(entry, value=70.0)])))
        assert main(["obs", "bench-diff", str(base), str(cur)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "rate" in out
        # Within tolerance: exit 0.
        cur.write_text(json.dumps(make_bench([dict(entry, value=90.0)])))
        assert main(["obs", "bench-diff", str(base), str(cur)]) == 0


class TestProfileFlags:
    def test_stream_profile_writes_run_json(self, tmp_path, capsys):
        out = tmp_path / "s.npy"
        run = tmp_path / "run.json"
        code = main([
            "stream", "--samples", "8192", "--chunk", "2048",
            "--backend", "paxson", "--block-size", "2048", "--overlap", "128",
            "--out", str(out), "--profile", "--run-report", str(run),
        ])
        assert code == 0
        from repro.obs.report import RunReport

        doc = RunReport.load(run)
        assert doc["command"] == "stream"
        names = {s["name"] for s in doc["spans"]}
        assert any(n.endswith(".generate") for n in names)
        # ISSUE acceptance: stage sample counters equal the configured
        # run length exactly.
        assert doc["metrics"]['repro_stream_samples_total{stage="source"}'][
            "value"] == 8192.0
        assert doc["metrics"]['repro_stream_samples_total{stage="transform"}'][
            "value"] == 8192.0

    def test_experiments_profile_single_experiment(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        run = tmp_path / "run.json"
        code = main([
            "experiments", "--quick",
            "--profile", "fig14", "--run-report", str(run),
        ])
        assert code == 0
        assert "completed: fig14" in capsys.readouterr().out
        from repro.obs.report import RunReport

        doc = RunReport.load(run)
        totals = doc["span_totals"]
        assert "experiment.fig14" in totals
        assert "queue.simulate" in totals
        assert any(name.endswith(".generate") for name in totals)
        assert any(name.startswith("transform.") for name in totals)


class TestExperimentsResilienceFlags:
    def test_parser_accepts_resilience_flags(self):
        args = build_parser().parse_args([
            "experiments", "--quick", "--checkpoint-dir", "ckpt",
            "--resume", "--max-retries", "2", "--timeout-s", "30",
        ])
        assert args.checkpoint_dir == "ckpt"
        assert args.resume is True
        assert args.max_retries == 2
        assert args.timeout_s == 30.0

    def test_defaults_stay_legacy(self):
        args = build_parser().parse_args(["experiments", "--quick"])
        assert args.checkpoint_dir is None
        assert args.resume is False
        assert args.max_retries == 0


class TestNetCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["net", "--demo"])
        assert args.command == "net"
        assert args.demo is True
        assert args.workers == 1
        assert args.record_events is False

    def test_requires_spec_or_demo(self, capsys):
        with pytest.raises(SystemExit):
            main(["net"])

    def test_demo_summary(self, capsys):
        assert main(["net", "--demo", "--frames", "400", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "demo-tandem" in out
        assert "a->b" in out and "c->d" in out
        assert "video" in out

    def test_spec_file_json_output(self, tmp_path, capsys):
        import json as json_mod

        spec = {
            "slots": 50,
            "nodes": [{"name": "a", "buffer_bytes": 10.0},
                      {"name": "b", "buffer_bytes": 0.0}],
            "links": [{"src": "a", "dst": "b", "capacity_per_slot": 5.0}],
            "flows": [{"name": "f", "path": ["a", "b"],
                       "source": {"kind": "array", "values": [4.0] * 50}}],
        }
        path = tmp_path / "topo.json"
        path.write_text(json_mod.dumps(spec))
        assert main(["net", str(path), "--record-events", "--json", "--quiet"]) == 0
        doc = json_mod.loads(capsys.readouterr().out)
        assert doc["spec"] == str(path)
        assert doc["ports"]["a->b"]["lost_bytes"] == 0.0
        assert doc["flows"]["f"]["delivered_fraction"] > 0.9
        assert len(doc["event_trace_sha256"]) == 64

    def test_multiple_specs_sweep(self, tmp_path, capsys):
        import json as json_mod

        paths = []
        for i, cap in enumerate((3.0, 5.0)):
            spec = {
                "slots": 30,
                "nodes": [{"name": "a", "buffer_bytes": 4.0},
                          {"name": "b", "buffer_bytes": 0.0}],
                "links": [{"src": "a", "dst": "b", "capacity_per_slot": cap}],
                "flows": [{"name": "f", "path": ["a", "b"],
                           "source": {"kind": "array", "values": [4.0] * 30}}],
            }
            p = tmp_path / f"t{i}.json"
            p.write_text(json_mod.dumps(spec))
            paths.append(str(p))
        assert main(["net", *paths, "--json", "--quiet"]) == 0
        docs = json_mod.loads(capsys.readouterr().out)
        assert [d["spec"] for d in docs] == paths
        # cap=3 loses fluid every slot; cap=5 never does.
        assert docs[0]["flows"]["f"]["loss_rate"] > 0.0
        assert docs[1]["flows"]["f"]["loss_rate"] == 0.0

    @pytest.mark.parametrize("content", [
        "not json",
        '{"slots": 100, "nodes": [], "links": [], "flows": []}',
        '{"slots": 10, "nodes": [{"buffer_bytes": 1.0}],'
        ' "links": [{"src": "a", "dst": "b", "capacity_per_slot": 5.0}],'
        ' "flows": [{"name": "f", "path": ["a", "b"],'
        ' "source": {"kind": "array", "values": [1.0]}}]}',
    ])
    def test_bad_spec_is_user_error(self, tmp_path, capsys, content):
        """Invalid JSON, empty topology, missing key: error line, exit 2."""
        path = tmp_path / "bad.json"
        path.write_text(content)
        assert main(["net", str(path), "--quiet"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err

    def test_missing_spec_file_is_user_error(self, tmp_path, capsys):
        assert main(["net", str(tmp_path / "nope.json"), "--quiet"]) == 2
        assert "error:" in capsys.readouterr().err


class TestAllocCommand:
    DEMO = ["alloc", "--demo", "--users", "8", "--epochs", "4",
            "--epoch-slots", "40"]

    def test_demo_table(self, capsys):
        assert main(self.DEMO) == 0
        out = capsys.readouterr().out
        assert "allocator" in out and "p99 loss" in out
        for name in ("static", "harvest", "trade", "oracle"):
            assert name in out
            assert f"digest {name}: " in out

    def test_single_allocator_json(self, capsys):
        import json

        assert main(self.DEMO + ["--allocator", "harvest", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert list(doc) == ["harvest"]
        summary = doc["harvest"]
        assert summary["n_users"] == 8
        assert len(summary["digest"]) == 64

    def test_workers_share_the_digest(self, capsys):
        import json

        digests = set()
        for w in ("1", "2"):
            assert main(self.DEMO + ["--allocator", "trade", "--json",
                                     "--workers", w]) == 0
            doc = json.loads(capsys.readouterr().out)
            digests.add(doc["trade"]["digest"])
        assert len(digests) == 1

    def test_unknown_allocator_is_user_error(self, capsys):
        assert main(self.DEMO + ["--allocator", "nope", "--quiet"]) == 2
        err = capsys.readouterr().err
        assert "unknown allocator" in err
        assert "Traceback" not in err

    def test_bad_counts_exit_nonzero(self):
        with pytest.raises(SystemExit):
            main(["alloc", "--demo", "--users", "0"])
        with pytest.raises(SystemExit):
            main(["alloc", "--demo", "--workers", "0"])
