"""Tier-1 tests for cluster-wide observability.

Covers the four pieces this layer is made of: the flight recorder
(ring semantics, gating, streaming, atomic persistence, crash hooks,
the canonical determinism projection), heartbeat metric scraping
(``diff_dump``/``relabel_dump``/``ScrapeMerger`` under duplicated,
reordered and restarted-worker scrapes), cross-node trace propagation
(detached attempt spans stitched into one coordinator forest, killed
attempts included), and the ``repro dist top`` console over the
streamed recording.  The worker-count byte-identity wall for the
canonical projection is tier-2 in ``test_dist_chaos.py``.
"""

from __future__ import annotations

import json
import sys

import pytest

import repro.obs as obs
from repro.dist import (
    FaultScript,
    SimCluster,
    TaskSpec,
    TopView,
    run_distributed,
    task_seed,
)
from repro.dist.top import read_events, run_top
from repro.obs import flight as obs_flight
from repro.obs import metrics, trace
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import ScrapeMerger, diff_dump, relabel_dump
from repro.obs.report import git_revision_info


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.disable()
    trace.reset()
    metrics.registry().reset()
    obs_flight.configure()  # fresh gated default recorder
    yield
    obs.disable()
    trace.reset()
    metrics.registry().reset()
    obs_flight.configure()


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_ring_is_bounded_and_ordered(self):
        rec = FlightRecorder(capacity=3)
        for i in range(5):
            rec.record("tick", i=i)
        events = rec.events()
        assert [e["i"] for e in events] == [2, 3, 4]
        assert [e["seq"] for e in events] == [3, 4, 5]
        assert all(e["kind"] == "tick" for e in events)

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)

    def test_gated_recorder_follows_obs_flag(self):
        rec = FlightRecorder(gated=True)
        assert rec.record("dropped") is None
        assert rec.events() == []
        obs.enable()
        assert rec.record("kept")["kind"] == "kept"
        assert len(rec.events()) == 1

    def test_explicit_recorder_always_records(self):
        rec = FlightRecorder()
        assert rec.record("kept")["kind"] == "kept"

    def test_streaming_appends_live(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        rec = FlightRecorder(path=path)
        rec.record("a")
        rec.record("b", x=1)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [e["kind"] for e in lines] == ["a", "b"]
        rec.close()

    def test_persist_rewrites_ring_atomically(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        rec = FlightRecorder(capacity=2, path=path)
        for i in range(4):
            rec.record("tick", i=i)
        assert rec.persist() == path
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [e["i"] for e in lines] == [2, 3]  # only the retained ring
        assert not path.with_suffix(".jsonl.tmp").exists()
        rec.close()

    def test_persist_without_path_is_noop(self):
        assert FlightRecorder().persist() is None

    def test_broken_stream_never_raises(self, tmp_path):
        rec = FlightRecorder(path=tmp_path / "flight.jsonl")
        rec._stream.close()  # simulate the fd dying under the recorder
        rec.record("still_fine")
        assert rec.events()[0]["kind"] == "still_fine"

    def test_excepthook_persists_on_crash(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        rec = FlightRecorder(path=path)
        previous = sys.excepthook
        rec.arm()
        try:
            rec.record("before_crash")
            sys.excepthook(ValueError, ValueError("boom"), None)
        finally:
            rec.disarm()
        assert sys.excepthook is previous
        kinds = [e["kind"] for e in read_events(path)]
        assert kinds == ["before_crash", "crash"]
        crash = read_events(path)[-1]
        assert crash["error_type"] == "ValueError"
        rec.close()

    def test_arm_requires_a_path(self):
        with pytest.raises(ValueError, match="path"):
            FlightRecorder().arm()

    def test_canonical_lines_project_terminal_outcomes(self):
        rec = FlightRecorder()
        rec.record("task_assigned", task_id="b", node="n0", attempt=0, seed=1)
        rec.record("task_failed", task_id="b", attempt=0, seed=1,
                   error_type="ValueError")
        rec.record("task_completed", task_id="b", node="n1", attempt=1, seed=2)
        rec.record("task_completed", task_id="a", node="n0", attempt=0, seed=9)
        rec.record("node_lost", node="n0", reason="x")  # ignored
        lines = rec.canonical_lines()
        docs = [json.loads(l) for l in lines]
        assert [d["task_id"] for d in docs] == ["a", "b"]  # sorted
        assert docs[1] == {"task_id": "b", "attempt": 1, "seed": 2,
                           "status": "completed"}  # last terminal event wins

    def test_configure_replaces_default(self, tmp_path):
        first = obs_flight.recorder()
        new = obs_flight.configure(path=tmp_path / "f.jsonl")
        assert obs_flight.recorder() is new
        assert new is not first
        assert not new.gated  # a path opts in

    def test_clear_restarts_sequence(self):
        rec = FlightRecorder()
        rec.record("a")
        rec.clear()
        assert rec.events() == []
        assert rec.record("b")["seq"] == 1


# ----------------------------------------------------------------------
# Heartbeat scrape merging
# ----------------------------------------------------------------------
def _counter_dump(value, name="jobs_total"):
    return {name: {"type": "counter", "help": "", "unit": None,
                   "labels": {}, "value": value}}


def _hist_dump(buckets, total, count, bounds=(1.0, float("inf"))):
    cumulative = {}
    running = 0
    for bound, n in zip(bounds, buckets):
        running += n
        key = "+Inf" if bound == float("inf") else f"{bound:g}"
        cumulative[key] = running
    return {"lat": {"type": "histogram", "help": "", "unit": None,
                    "labels": {}, "buckets": cumulative,
                    "sum": total, "count": count}}


class TestDiffDump:
    def test_counter_delta(self):
        out = diff_dump(_counter_dump(7), _counter_dump(4))
        assert out["jobs_total"]["value"] == 3

    def test_counter_restart_uses_full_value(self):
        # A restarted worker's counter going backwards means the old
        # total was already merged by a previous scrape of the old
        # incarnation; the new incarnation starts over.
        out = diff_dump(_counter_dump(2), _counter_dump(9))
        assert out["jobs_total"]["value"] == 2

    def test_new_entries_pass_through_whole(self):
        out = diff_dump(_counter_dump(5), {})
        assert out["jobs_total"]["value"] == 5

    def test_histogram_per_bucket_delta(self):
        old = _hist_dump([2, 1], total=3.5, count=3)
        new = _hist_dump([5, 2], total=9.0, count=7)
        out = diff_dump(new, old)
        assert out["lat"]["buckets"] == {"1": 3, "+Inf": 4}
        assert out["lat"]["count"] == 4
        assert out["lat"]["sum"] == pytest.approx(5.5)

    def test_histogram_bounds_mismatch_hard_errors(self):
        old = _hist_dump([2, 1], total=3.0, count=3, bounds=(1.0, float("inf")))
        new = _hist_dump([2, 1, 1], total=4.0, count=4,
                         bounds=(1.0, 2.0, float("inf")))
        with pytest.raises(ValueError, match="bucket bounds"):
            diff_dump(new, old)


class TestRelabelDump:
    def test_label_folded_into_key(self):
        out = relabel_dump(_counter_dump(3), node="n0")
        (key,) = out.keys()
        assert key == 'jobs_total{node="n0"}'
        assert out[key]["labels"] == {"node": "n0"}

    def test_merges_with_existing_labels(self):
        dump = {'t{k="v"}': {"type": "counter", "help": "", "unit": None,
                             "labels": {"k": "v"}, "value": 1}}
        out = relabel_dump(dump, node="n1")
        (key,) = out.keys()
        assert "k=" in key and 'node="n1"' in key


class TestScrapeMerger:
    def test_cumulative_scrapes_merge_as_deltas(self):
        into = metrics.MetricsRegistry()
        merger = ScrapeMerger(into=into)
        assert merger.ingest("n0", 1, _counter_dump(3))
        assert merger.ingest("n0", 2, _counter_dump(8))
        dump = into.to_dict()
        assert dump['jobs_total{node="n0"}']["value"] == 8

    def test_duplicate_seq_is_idempotent(self):
        # A heartbeat retransmitted behind a healed partition must not
        # double-count.
        into = metrics.MetricsRegistry()
        merger = ScrapeMerger(into=into)
        merger.ingest("n0", 1, _counter_dump(5))
        assert not merger.ingest("n0", 1, _counter_dump(5))
        assert into.to_dict()['jobs_total{node="n0"}']["value"] == 5

    def test_out_of_order_scrape_dropped(self):
        into = metrics.MetricsRegistry()
        merger = ScrapeMerger(into=into)
        merger.ingest("n0", 3, _counter_dump(9))
        assert not merger.ingest("n0", 2, _counter_dump(4))
        assert into.to_dict()['jobs_total{node="n0"}']["value"] == 9
        assert merger.seen("n0") == 3

    def test_nodes_are_independent(self):
        into = metrics.MetricsRegistry()
        merger = ScrapeMerger(into=into)
        merger.ingest("n0", 1, _counter_dump(2))
        merger.ingest("n1", 1, _counter_dump(7))
        dump = into.to_dict()
        assert dump['jobs_total{node="n0"}']["value"] == 2
        assert dump['jobs_total{node="n1"}']["value"] == 7

    def test_worker_restart_not_double_counted(self):
        into = metrics.MetricsRegistry()
        merger = ScrapeMerger(into=into)
        merger.ingest("n0", 1, _counter_dump(6))
        # Node process restarts: seq resets too, so a fresh seq=1 from
        # the new incarnation is dropped; only seq progress re-admits.
        assert not merger.ingest("n0", 1, _counter_dump(2))
        assert merger.ingest("n0", 2, _counter_dump(2))
        # Counter went backwards inside an admitted scrape -> full new
        # value added, not a negative delta.
        assert into.to_dict()['jobs_total{node="n0"}']["value"] == 8

    def test_empty_dump_ignored(self):
        merger = ScrapeMerger(into=metrics.MetricsRegistry())
        assert not merger.ingest("n0", 1, {})
        assert merger.seen("n0") == 0


# ----------------------------------------------------------------------
# Trace propagation
# ----------------------------------------------------------------------
class TestTracePropagation:
    def test_trace_id_is_seed_deterministic(self):
        assert trace.new_trace_id(7) == trace.new_trace_id(7)
        assert trace.new_trace_id(7) != trace.new_trace_id(8)
        assert trace.new_trace_id() != trace.new_trace_id()

    def test_detached_span_skips_collector(self):
        obs.enable()
        with trace.span("attempt", detached=True) as sp:
            pass
        assert trace.snapshot() == []
        assert sp.to_dict()["name"] == "attempt"

    def test_adopt_grafts_remote_tree_under_trace_id(self):
        obs.enable()
        with trace.span("campaign") as campaign:
            campaign.trace_id = "abc123"
            campaign.adopt({"name": "dist.task", "wall_s": 0.5,
                            "attrs": {"task": "t0"}})
        (root,) = trace.snapshot()
        child = root["children"][0]
        assert child["trace_id"] == "abc123"
        assert child["attrs"]["task"] == "t0"

    def test_adopt_rejects_non_span_dicts(self):
        obs.enable()
        with trace.span("campaign") as campaign:
            with pytest.raises(ValueError, match="adopt"):
                campaign.adopt({"no": "name"})

    def test_plain_spans_carry_no_trace_fields(self):
        obs.enable()
        with trace.span("local"):
            pass
        (root,) = trace.snapshot()
        assert "trace_id" not in root and "span_id" not in root


def _sleep_tasks(n, duration_s=0.0):
    return [
        TaskSpec(f"t{i}", "sleep", {"duration_s": duration_s, "value": i})
        for i in range(n)
    ]


class TestClusterStitching:
    def test_killed_attempt_and_rerun_in_one_forest(self, tmp_path):
        """The PR's acceptance scenario: sim:3, one worker killed
        mid-task, a single span forest holding the killed attempt (node
        id + attempt seed) and the successful rerun on a survivor."""
        obs.enable()
        flight_path = tmp_path / "flight.jsonl"
        script = FaultScript([
            {"node": "n1", "kind": "kill", "at_task": 1, "phase": "start"},
        ])
        with SimCluster(3, script=script) as cluster:
            report = run_distributed(
                _sleep_tasks(6), cluster.endpoints(), base_seed=7,
                lease_s=0.4, flight_path=str(flight_path),
            )
        assert report.ok
        assert report.node_states["n1"] == "dead"

        campaigns = [r for r in trace.snapshot() if r["name"] == "dist.campaign"]
        assert len(campaigns) == 1
        forest = campaigns[0]
        assert forest["trace_id"] == trace.new_trace_id(7)

        killed = [c for c in forest["children"]
                  if c["name"] == "dist.task" and c.get("error") == "NodeLost"]
        assert len(killed) == 1
        killed_task = killed[0]["attrs"]["task"]
        assert killed[0]["attrs"]["node"] == "n1"
        assert killed[0]["attrs"]["seed"] == task_seed(7, killed_task, 0)

        # The rerun: same task, same attempt/seed, on a survivor, with
        # the worker's shipped dist.attempt subtree underneath.
        reruns = [c for c in forest["children"]
                  if c["name"] == "dist.task" and "error" not in c
                  and c["attrs"]["task"] == killed_task]
        assert len(reruns) == 1
        assert reruns[0]["attrs"]["node"] != "n1"
        assert reruns[0]["attrs"]["seed"] == killed[0]["attrs"]["seed"]
        (attempt,) = reruns[0]["children"]
        assert attempt["name"] == "dist.attempt"
        assert attempt["trace_id"] == forest["trace_id"]
        assert attempt["attrs"]["parent_span_id"] == forest["span_id"]

        # Every completed task carries an adopted worker attempt span.
        ok_tasks = [c for c in forest["children"]
                    if c["name"] == "dist.task" and "error" not in c]
        assert len(ok_tasks) == 6

        # And the flight recording replays the failure in order.
        kinds = [e["kind"] for e in read_events(flight_path)]
        assert kinds[0] == "campaign_start"
        assert kinds[-1] == "campaign_finished"
        assert (kinds.index("fault_injected")
                < kinds.index("lease_expired")
                < kinds.index("task_reassigned"))

    def test_heartbeat_scrapes_merge_into_node_series(self):
        obs.enable()
        with SimCluster(2) as cluster:
            report = run_distributed(_sleep_tasks(4), cluster.endpoints(),
                                     lease_s=2.0)
        assert report.ok
        dump = metrics.registry().to_dict()
        per_node = {
            key: m["value"] for key, m in dump.items()
            if key.startswith("repro_dist_worker_tasks_total{")
        }
        assert per_node  # node="..."-labeled series exist
        assert sum(per_node.values()) == 4
        assert all('node="' in key for key in per_node)

    def test_disabled_obs_ships_no_scrapes_or_spans(self):
        with SimCluster(2) as cluster:
            report = run_distributed(_sleep_tasks(3), cluster.endpoints(),
                                     lease_s=2.0)
        assert report.ok
        assert trace.snapshot() == []
        # Metric identities persist across registry resets, so check
        # that no worker-scraped series accumulated any value.
        dump = metrics.registry().to_dict()
        for key, m in dump.items():
            if "repro_dist_worker" in key:
                assert m.get("value", m.get("count", 0)) == 0, key


# ----------------------------------------------------------------------
# git_revision_info degradation
# ----------------------------------------------------------------------
class TestGitRevisionInfo:
    def test_inside_checkout(self):
        rev, reason = git_revision_info()
        assert rev is not None and reason is None

    def test_outside_checkout_gives_reason(self, tmp_path):
        rev, reason = git_revision_info(cwd=tmp_path)
        assert rev is None
        assert reason  # e.g. "fatal: not a git repository ..."

    def test_git_missing_gives_reason(self, monkeypatch):
        monkeypatch.setenv("PATH", "")
        rev, reason = git_revision_info()
        assert rev is None
        assert reason == "git executable not found"

    def test_run_report_records_reason(self, tmp_path, monkeypatch):
        from repro.obs.report import RunReport

        monkeypatch.chdir(tmp_path)
        doc = RunReport("unit").finish().to_dict()
        assert doc["git_rev"] is None
        assert doc["git_rev_reason"]


# ----------------------------------------------------------------------
# repro dist top
# ----------------------------------------------------------------------
def _demo_events():
    return [
        {"seq": 1, "t": 0.0, "kind": "campaign_start", "tasks": 3, "nodes": 2},
        {"seq": 2, "t": 0.1, "kind": "task_assigned", "task_id": "t0",
         "node": "n0", "attempt": 0, "seed": 1},
        {"seq": 3, "t": 0.2, "kind": "task_assigned", "task_id": "t1",
         "node": "n1", "attempt": 0, "seed": 2},
        {"seq": 4, "t": 1.0, "kind": "task_completed", "task_id": "t0",
         "node": "n0", "attempt": 0, "seed": 1},
        {"seq": 5, "t": 1.1, "kind": "lease_expired", "node": "n1",
         "task_id": "t1", "attempt": 0},
        {"seq": 6, "t": 1.2, "kind": "node_lost", "node": "n1", "reason": "x"},
        {"seq": 7, "t": 1.3, "kind": "task_reassigned", "task_id": "t1",
         "node": "n1", "attempt": 0},
        {"seq": 8, "t": 1.4, "kind": "task_assigned", "task_id": "t1",
         "node": "n0", "attempt": 0, "seed": 2},
        {"seq": 9, "t": 2.0, "kind": "task_completed", "task_id": "t1",
         "node": "n0", "attempt": 0, "seed": 2},
    ]


class TestTopView:
    def test_folds_events_into_state(self):
        view = TopView().feed_all(_demo_events())
        assert view.tasks_total == 3
        assert view.completed == 2 and view.failed == 0
        assert view.reassignments == 1
        assert view.nodes["n0"].completed == 2
        assert view.nodes["n1"].state == "dead"
        assert view.nodes["n1"].lease_expiries == 1
        assert view.finished is None

    def test_throughput_and_eta(self):
        view = TopView().feed_all(_demo_events())
        assert view.throughput() == pytest.approx(2 / 2.0)
        assert view.eta_s() == pytest.approx(1 / 1.0)

    def test_render_lines_shape(self):
        view = TopView().feed_all(_demo_events())
        lines = view.render_lines()
        assert "2/3 tasks" in lines[0]
        assert "status: running" in lines[0]
        assert any("n1" in line and "dead" in line for line in lines)
        rendered = "\n".join(lines)
        assert "retries: 0" in rendered and "eta:" in rendered

    def test_terminal_event_sets_status(self):
        events = _demo_events() + [
            {"seq": 10, "t": 2.1, "kind": "task_completed", "task_id": "t2",
             "node": "n0", "attempt": 0, "seed": 3},
            {"seq": 11, "t": 2.2, "kind": "campaign_finished", "completed": 3,
             "tasks": 3, "failures": 0},
        ]
        view = TopView().feed_all(events)
        assert view.finished == "campaign_finished"
        assert "status: campaign_finished" in view.render_lines()[0]
        assert view.eta_s() == 0.0

    def test_read_events_skips_torn_lines(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        path.write_text('{"kind": "a", "t": 0}\n{"kind": "b", "t"\n')
        events = read_events(path)
        assert [e["kind"] for e in events] == ["a"]

    def test_run_top_one_shot(self, tmp_path, capsys):
        path = tmp_path / "flight.jsonl"
        path.write_text("\n".join(json.dumps(e) for e in _demo_events()) + "\n")
        view = run_top(path)
        out = capsys.readouterr().out
        assert "2/3 tasks" in out
        assert view.completed == 2

    def test_run_top_follow_plain_until_finish(self, tmp_path):
        import io

        path = tmp_path / "flight.jsonl"
        events = _demo_events() + [
            {"seq": 10, "t": 2.2, "kind": "campaign_finished"},
        ]
        path.write_text("\n".join(json.dumps(e) for e in events) + "\n")
        out = io.StringIO()
        view = run_top(path, follow=True, interval=0.01, stream=out)
        assert view.finished == "campaign_finished"
        assert "campaign_finished" in out.getvalue()


class TestCli:
    def test_dist_top_cli(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "flight.jsonl"
        path.write_text("\n".join(json.dumps(e) for e in _demo_events()) + "\n")
        assert main(["dist", "top", str(path)]) == 0
        assert "2/3 tasks" in capsys.readouterr().out

    def test_dist_top_missing_file(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["dist", "top", str(tmp_path / "nope.jsonl")]) == 2
        assert "no flight recording" in capsys.readouterr().err

    def test_experiments_flight_flag_passes_through(self, monkeypatch, tmp_path):
        from repro import cli as cli_module

        captured = {}

        def fake_run_suite(nodes, **kwargs):
            captured.update(kwargs, nodes=nodes)

            class _Report:
                ok = True
                results = {"fig11": object()}

                def summary_lines(self):
                    return []

            return _Report()

        monkeypatch.setattr("repro.dist.campaign.run_suite", fake_run_suite)
        monkeypatch.chdir(tmp_path)
        flight = tmp_path / "f.jsonl"
        # --profile fig11 keeps the summary on the per-experiment path
        # (the full-suite table needs real results).
        assert cli_module.main([
            "experiments", "--quick", "--nodes", "sim:2",
            "--profile", "fig11", "--flight", str(flight),
        ]) == 0
        assert captured["flight_path"] == str(flight)
        assert captured["nodes"] == "sim:2"
        assert captured["only"] == "fig11"
