"""Tests for the complete intraframe codec."""

import numpy as np
import pytest

from repro.video.codec import EncodedFrame, IntraframeCodec


@pytest.fixture(scope="module")
def codec():
    return IntraframeCodec(quant_step=16.0, slices_per_frame=6)


@pytest.fixture(scope="module")
def frame(paper_marginal):
    rng = np.random.default_rng(42)
    yy, xx = np.mgrid[0:48, 0:64]
    img = 100 + 50 * np.sin(xx / 10.0) + 30 * np.cos(yy / 7.0)
    img += rng.normal(0, 8, size=img.shape)
    return np.clip(img, 0, 255).astype(np.uint8)


class TestEncodeDecode:
    def test_roundtrip_error_bounded_by_quantizer(self, codec, frame):
        """Entropy coding is lossless; only quantization distorts.
        Max pel error is bounded by the worst-case IDCT amplification
        of the per-coefficient bound step/2 (factor 8 for an 8x8
        orthonormal basis)."""
        encoded = codec.encode_frame(frame)
        decoded = codec.decode_frame(encoded)
        assert decoded.shape == frame.shape
        assert np.max(np.abs(decoded - frame)) <= 8 * codec.quant_step / 2 + 1e-6

    def test_rmse_small(self, codec, frame):
        decoded = codec.decode_frame(codec.encode_frame(frame))
        rmse = float(np.sqrt(np.mean((decoded - frame) ** 2)))
        assert rmse < codec.quant_step

    def test_lossless_at_entropy_layer(self, codec, frame):
        """Re-encoding the decoded frame reproduces identical levels:
        quantization is idempotent on reconstructed data."""
        once = codec.decode_frame(codec.encode_frame(frame))
        twice = codec.decode_frame(codec.encode_frame(once))
        assert np.max(np.abs(twice - once)) <= 1.0

    def test_padding_of_nonmultiple_frames(self, codec):
        img = np.full((20, 30), 128.0)
        encoded = codec.encode_frame(img)
        assert encoded.padded_shape == (24, 32)
        decoded = codec.decode_frame(encoded)
        assert decoded.shape == (20, 30)

    def test_slice_bytes_sum_to_total(self, codec, frame):
        encoded = codec.encode_frame(frame)
        assert encoded.slice_bytes.sum() == encoded.total_bytes
        assert encoded.slice_bytes.size == codec.slices_per_frame

    def test_decode_rejects_wrong_type(self, codec):
        with pytest.raises(TypeError):
            codec.decode_frame(b"not a frame")

    def test_rejects_bad_frame(self, codec):
        with pytest.raises(ValueError):
            codec.encode_frame(np.zeros((0, 8)))
        with pytest.raises(ValueError):
            codec.encode_frame(np.zeros((8, 8, 3)))


class TestRateBehaviour:
    def test_complex_frames_cost_more(self, codec, rng):
        """The core VBR mechanism: bits track spatial complexity."""
        flat = np.full((48, 64), 128.0)
        noisy = np.clip(128 + rng.normal(0, 40, size=(48, 64)), 0, 255)
        assert codec.encode_frame(noisy).total_bytes > 3 * codec.encode_frame(flat).total_bytes

    def test_coarser_quantizer_fewer_bytes(self, frame):
        fine = IntraframeCodec(quant_step=4.0, slices_per_frame=6)
        coarse = IntraframeCodec(quant_step=64.0, slices_per_frame=6)
        assert coarse.encode_frame(frame).total_bytes < fine.encode_frame(frame).total_bytes

    def test_compression_ratio_reasonable(self, codec, frame):
        ratio = codec.compression_ratio(frame)
        assert 1.0 < ratio < 100.0

    def test_complexity_concentrated_in_slices(self, codec, rng):
        """A frame complex only at the bottom spends its bytes there."""
        img = np.full((48, 64), 128.0)
        img[40:, :] = np.clip(128 + rng.normal(0, 60, size=(8, 64)), 0, 255)
        encoded = codec.encode_frame(img)
        assert encoded.slice_bytes[-1] > 2 * encoded.slice_bytes[0]


class TestMovieCoding:
    def test_encode_movie_trace(self, codec):
        frames = [np.full((16, 16), v, dtype=np.uint8) for v in (0, 128, 255)]
        trace = codec.encode_movie(frames, frame_rate=24.0)
        assert trace.n_frames == 3
        assert trace.has_slice_data
        assert trace.slices_per_frame == codec.slices_per_frame

    def test_synthetic_movie_end_to_end(self):
        from repro.video.synthetic import SyntheticMovie

        codec = IntraframeCodec(quant_step=16.0, slices_per_frame=30)
        movie = SyntheticMovie(6, height=48, width=64, seed=3)
        trace = codec.encode_movie(movie)
        assert trace.n_frames == 6
        assert np.all(trace.frame_bytes > 0)

    def test_empty_movie_rejected(self, codec):
        with pytest.raises(ValueError):
            codec.encode_movie([])

    def test_effect_scenes_produce_peaks(self):
        """Special-effect (high spatial frequency) frames cost far
        more than placid ones -- the codec-level origin of the trace's
        extreme peaks."""
        from repro.video.synthetic import SyntheticMovie

        codec = IntraframeCodec(quant_step=16.0, slices_per_frame=10)
        calm = SyntheticMovie(4, height=48, width=64, seed=5, effect_probability=0.0)
        wild = SyntheticMovie(4, height=48, width=64, seed=5, effect_probability=1.0)
        calm_bytes = codec.encode_movie(calm).frame_bytes.mean()
        wild_bytes = codec.encode_movie(wild).frame_bytes.mean()
        assert wild_bytes > 1.5 * calm_bytes
