"""Tests for the SRD-augmented composite model (paper's future work)."""

import numpy as np
import pytest

from repro.core.arma import ARMAProcess
from repro.core.composite import CompositeVBRModel
from repro.core.model import VBRVideoModel


@pytest.fixture(scope="module")
def base():
    return VBRVideoModel(27_791.0, 6_254.0, 12.0, 0.8)


@pytest.fixture(scope="module")
def composite(base):
    return CompositeVBRModel(base, ARMAProcess(ar=[0.8]), srd_weight=0.6)


class TestConstruction:
    def test_zero_weight_is_base_model(self, base, rng):
        c = CompositeVBRModel(base, ARMAProcess(ar=[0.8]), srd_weight=0.0)
        x = c.generate_gaussian(500, rng=np.random.default_rng(1))
        y = base.generate_gaussian(500, rng=np.random.default_rng(1), generator="davies-harte")
        np.testing.assert_array_equal(x, y)

    def test_rejects_bad_types(self, base):
        with pytest.raises(TypeError):
            CompositeVBRModel("base", ARMAProcess())
        with pytest.raises(TypeError):
            CompositeVBRModel(base, "arma")

    def test_rejects_bad_weight(self, base):
        with pytest.raises(ValueError):
            CompositeVBRModel(base, ARMAProcess(), srd_weight=1.0)

    def test_parameters(self, composite):
        params = composite.parameters
        assert params["srd_weight"] == 0.6
        assert params["ar"] == [0.8]


class TestStatisticalProperties:
    def test_gaussian_mix_unit_variance(self, composite, rng):
        z = composite.generate_gaussian(20_000, rng=rng)
        assert np.var(z) == pytest.approx(1.0, abs=0.2)

    def test_short_lag_acf_follows_mix(self, composite, rng):
        """Lag-1 autocorrelation matches the theoretical mixture."""
        z = composite.generate_gaussian(40_000, rng=rng)
        r1 = np.corrcoef(z[:-1], z[1:])[0, 1]
        # LRD sample autocorrelations converge slowly; 0.07 is ~2 sigma.
        assert r1 == pytest.approx(composite.theoretical_short_acf(1)[1], abs=0.07)

    def test_hurst_preserved(self, composite):
        """The SRD component cannot change the asymptotic H."""
        from repro.analysis.hurst import variance_time

        z = composite.generate_gaussian(2**15, rng=np.random.default_rng(3))
        est = variance_time(z, fit_range=(100, 3000))
        assert est.hurst == pytest.approx(0.8, abs=0.1)

    def test_marginal_imposed(self, composite, rng):
        y = composite.generate(20_000, rng=rng)
        # LRD sample means wander as n^(H-1): sigma ~ 860 bytes here.
        assert np.mean(y) == pytest.approx(composite.base.marginal.mean(), rel=0.08)
        assert np.all(y > 0)

    def test_stronger_srd_than_base(self, base, rng):
        """With a high-phi AR component the composite has higher lag-1
        correlation than the plain LRD model -- the point of the
        augmentation."""
        composite = CompositeVBRModel(base, ARMAProcess(ar=[0.95]), srd_weight=0.7)
        z_plain = base.generate_gaussian(20_000, rng=np.random.default_rng(4), generator="davies-harte")
        z_comp = composite.generate_gaussian(20_000, rng=np.random.default_rng(4))
        r1_plain = np.corrcoef(z_plain[:-1], z_plain[1:])[0, 1]
        r1_comp = np.corrcoef(z_comp[:-1], z_comp[1:])[0, 1]
        assert r1_comp > r1_plain + 0.1


class TestFit:
    def test_fit_from_trace(self, small_series):
        model = CompositeVBRModel.fit(small_series, ar_order=2)
        assert 0.0 <= model.srd_weight < 1.0
        assert model.arma.order[0] == 2
        assert 0.6 < model.base.hurst < 0.95

    def test_fit_matches_lag1(self, small_series):
        """The fitted weight reproduces the data's (Gaussianized)
        lag-1 autocorrelation."""
        from repro.core.transform import normal_scores

        model = CompositeVBRModel.fit(small_series, ar_order=2)
        z = normal_scores(small_series)
        r1_data = float(np.corrcoef(z[:-1], z[1:])[0, 1])
        r1_model = float(model.theoretical_short_acf(1)[1])
        assert r1_model == pytest.approx(r1_data, abs=0.1)

    def test_fit_then_generate(self, small_series, rng):
        model = CompositeVBRModel.fit(small_series, ar_order=1)
        y = model.generate(5_000, rng=rng)
        assert np.mean(y) == pytest.approx(np.mean(small_series), rel=0.1)

    def test_composite_short_acf_closer_than_base(self, small_series):
        """The composite matches the trace's short-lag ACF better than
        the plain model -- the improvement the paper anticipated."""
        from repro.analysis.correlation import autocorrelation
        from repro.core.fractional import farima_acf
        from repro.core.transform import normal_scores

        model = CompositeVBRModel.fit(small_series, ar_order=2)
        z = normal_scores(small_series)
        data_acf = autocorrelation(z, max_lag=10)[1:]
        base_acf = farima_acf(model.base.hurst - 0.5, 10)[1:]
        comp_acf = model.theoretical_short_acf(10)[1:]
        err_base = np.mean(np.abs(base_acf - data_acf))
        err_comp = np.mean(np.abs(comp_acf - data_acf))
        assert err_comp < err_base
