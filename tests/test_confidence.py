"""Tests for i.i.d. vs LRD confidence intervals (Fig. 9)."""

import numpy as np
import pytest

from repro.analysis.confidence import lrd_mean_ci, mean_confidence_convergence
from repro.core.daviesharte import DaviesHarteGenerator


class TestLrdMeanCI:
    def test_reduces_to_iid_at_half(self, rng):
        x = rng.standard_normal(10_000)
        mean, hw = lrd_mean_ci(x, hurst=0.5)
        expected = 1.959963985 * np.std(x, ddof=1) / np.sqrt(x.size)
        assert hw == pytest.approx(expected, rel=1e-6)
        assert mean == pytest.approx(np.mean(x))

    def test_wider_for_higher_hurst(self, rng):
        x = rng.standard_normal(10_000)
        _, hw_iid = lrd_mean_ci(x, hurst=0.5)
        _, hw_lrd = lrd_mean_ci(x, hurst=0.8)
        assert hw_lrd > 5 * hw_iid

    def test_scaling_exponent(self, rng):
        """Halfwidth scales as n^(H-1)."""
        x = rng.standard_normal(40_000)
        _, hw_small = lrd_mean_ci(x[:10_000], hurst=0.8)
        _, hw_large = lrd_mean_ci(x, hurst=0.8)
        expected_ratio = (40_000 / 10_000) ** (0.8 - 1.0)
        assert hw_large / hw_small == pytest.approx(expected_ratio, rel=0.05)

    def test_confidence_level_changes_width(self, rng):
        x = rng.standard_normal(1_000)
        _, hw95 = lrd_mean_ci(x, 0.7, confidence=0.95)
        _, hw99 = lrd_mean_ci(x, 0.7, confidence=0.99)
        assert hw99 > hw95

    def test_rejects_bad_confidence(self, rng):
        with pytest.raises(ValueError):
            lrd_mean_ci(rng.standard_normal(100), 0.7, confidence=1.0)

    def test_rejects_bad_hurst(self, rng):
        with pytest.raises(ValueError):
            lrd_mean_ci(rng.standard_normal(100), 1.0)


class TestMeanConvergence:
    def test_structure(self, small_series):
        conv = mean_confidence_convergence(small_series, 0.8)
        assert conv.sample_sizes.size == conv.means.size
        assert conv.iid_halfwidths.shape == conv.lrd_halfwidths.shape
        assert conv.final_mean == pytest.approx(float(np.mean(small_series)))

    def test_lrd_wider_than_iid(self, small_series):
        conv = mean_confidence_convergence(small_series, 0.8)
        assert np.all(conv.lrd_halfwidths >= conv.iid_halfwidths)

    def test_iid_coverage_fails_for_lrd_data(self):
        """The paper's Fig. 9 message: conventional CIs on LRD data
        are far too narrow.  LRD-aware CIs must beat i.i.d. CIs on
        honest coverage, averaged over realizations."""
        gen = DaviesHarteGenerator(0.85)
        iid_cov = []
        lrd_cov = []
        for seed in range(12):
            x = gen.generate(2**13, rng=np.random.default_rng(seed))
            conv = mean_confidence_convergence(x, 0.85)
            iid_cov.append(conv.iid_coverage())
            lrd_cov.append(conv.lrd_coverage())
        assert np.mean(lrd_cov) > np.mean(iid_cov) + 0.2
        assert np.mean(iid_cov) < 0.6

    def test_iid_coverage_fine_for_iid_data(self, rng):
        x = rng.standard_normal(2**13)
        conv = mean_confidence_convergence(x, 0.5)
        # i.i.d. CIs on genuinely i.i.d. data: most prefixes covered.
        assert conv.iid_coverage() > 0.6

    def test_explicit_sample_sizes(self, small_series):
        conv = mean_confidence_convergence(small_series, 0.8, sample_sizes=[100, 1000])
        assert conv.sample_sizes.tolist() == [100, 1000]

    def test_rejects_out_of_range_sizes(self, small_series):
        with pytest.raises(ValueError):
            mean_confidence_convergence(small_series, 0.8, sample_sizes=[10**9])

    def test_halfwidths_shrink_with_n(self, small_series):
        conv = mean_confidence_convergence(small_series, 0.8)
        assert conv.iid_halfwidths[-1] < conv.iid_halfwidths[0]
        assert conv.lrd_halfwidths[-1] < conv.lrd_halfwidths[0]
