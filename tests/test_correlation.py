"""Tests for autocorrelation, periodogram, aggregation, moving average."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.correlation import (
    aggregate,
    autocorrelation,
    exponential_acf_fit,
    moving_average,
    periodogram,
)


class TestAutocorrelation:
    def test_lag_zero_is_one(self, rng):
        r = autocorrelation(rng.standard_normal(500), max_lag=10)
        assert r[0] == pytest.approx(1.0)

    def test_matches_direct_computation(self, rng):
        """FFT implementation equals the O(n^2) textbook estimator."""
        x = rng.standard_normal(200)
        r = autocorrelation(x, max_lag=20)
        c = x - x.mean()
        denom = np.dot(c, c)
        direct = [np.dot(c[: 200 - k], c[k:]) / denom for k in range(21)]
        np.testing.assert_allclose(r, direct, atol=1e-12)

    def test_ar1_acf(self, rng):
        from scipy import signal

        phi = 0.8
        eps = rng.standard_normal(100_000)
        x = signal.lfilter([1.0], [1.0, -phi], eps)
        r = autocorrelation(x, max_lag=5)
        np.testing.assert_allclose(r[1:], phi ** np.arange(1, 6), atol=0.02)

    def test_white_noise_near_zero(self, rng):
        r = autocorrelation(rng.standard_normal(50_000), max_lag=10)
        np.testing.assert_allclose(r[1:], 0.0, atol=0.02)

    def test_default_max_lag(self, rng):
        x = rng.standard_normal(64)
        assert autocorrelation(x).shape == (64,)

    def test_rejects_constant_series(self):
        with pytest.raises(ValueError):
            autocorrelation(np.ones(100), max_lag=5)

    def test_rejects_excessive_lag(self, rng):
        with pytest.raises(ValueError):
            autocorrelation(rng.standard_normal(10), max_lag=10)


class TestPeriodogram:
    def test_frequencies_and_shape(self, rng):
        omega, i = periodogram(rng.standard_normal(1000))
        assert omega.shape == i.shape == (500,)
        assert omega[0] == pytest.approx(2 * np.pi / 1000)
        assert omega[-1] == pytest.approx(np.pi)

    def test_parseval_total_power(self, rng):
        """Sum of the periodogram over all frequencies recovers the
        variance (Parseval): sum I(w_j) * (2 pi / n) * 2 ~= var."""
        x = rng.standard_normal(4096)
        omega, i = periodogram(x)
        total = 2.0 * np.sum(i) * 2 * np.pi / x.size
        assert total == pytest.approx(np.var(x), rel=0.02)

    def test_sinusoid_peak(self):
        n = 1024
        t = np.arange(n)
        x = np.sin(2 * np.pi * 64 * t / n)
        omega, i = periodogram(x)
        assert np.argmax(i) == 63  # omega_64 is the 64th ordinate (index 63)

    def test_white_noise_flat(self, rng):
        x = rng.standard_normal(2**14)
        omega, i = periodogram(x)
        low = np.mean(i[: i.size // 10])
        high = np.mean(i[-i.size // 10 :])
        assert low == pytest.approx(high, rel=0.2)

    def test_lrd_divergence_at_origin(self, fgn_path):
        """For H=0.8 the low-frequency intensities dominate the high
        ones: the paper's Fig. 8 signature."""
        omega, i = periodogram(fgn_path)
        low = np.mean(i[:30])
        high = np.mean(i[-1000:])
        assert low > 10 * high


class TestMovingAverage:
    def test_matches_direct_mean(self, rng):
        x = rng.standard_normal(100)
        pos, ma = moving_average(x, 10)
        assert ma.shape == (91,)
        assert ma[0] == pytest.approx(np.mean(x[:10]))
        assert ma[-1] == pytest.approx(np.mean(x[-10:]))

    def test_centers(self):
        pos, _ = moving_average(np.arange(10.0), 4)
        assert pos[0] == pytest.approx(1.5)

    def test_window_one_identity(self):
        x = np.array([3.0, 1.0, 4.0])
        _, ma = moving_average(x, 1)
        np.testing.assert_array_equal(ma, x)

    def test_rejects_oversized_window(self):
        with pytest.raises(ValueError):
            moving_average(np.arange(5.0), 6)


class TestAggregate:
    def test_block_means(self):
        out = aggregate([1.0, 3.0, 5.0, 7.0], 2)
        np.testing.assert_array_equal(out, [2.0, 6.0])

    def test_drops_partial_block(self):
        out = aggregate([1.0, 3.0, 5.0], 2)
        np.testing.assert_array_equal(out, [2.0])

    def test_m_one_identity(self):
        x = np.array([1.0, 2.0])
        np.testing.assert_array_equal(aggregate(x, 1), x)

    def test_preserves_mean(self, rng):
        x = rng.uniform(size=1000)
        assert aggregate(x, 10).mean() == pytest.approx(x.mean(), abs=1e-12)

    def test_iid_variance_scaling(self, rng):
        """Var(X^(m)) = sigma^2 / m for i.i.d. data (the SRD baseline
        of the variance-time plot)."""
        x = rng.standard_normal(200_000)
        v = np.var(aggregate(x, 100))
        assert v == pytest.approx(1.0 / 100.0, rel=0.15)

    def test_rejects_oversized_block(self):
        with pytest.raises(ValueError):
            aggregate(np.arange(5.0), 6)


class TestExponentialFit:
    def test_recovers_exact_exponential(self):
        rho = 0.95
        acf = rho ** np.arange(200, dtype=float)
        fitted_rho, curve = exponential_acf_fit(acf, np.arange(1, 100))
        assert fitted_rho == pytest.approx(rho, rel=1e-6)
        np.testing.assert_allclose(curve, acf, rtol=1e-5)

    def test_rejects_bad_lags(self):
        acf = 0.9 ** np.arange(50, dtype=float)
        with pytest.raises(ValueError):
            exponential_acf_fit(acf, [0, 1])
        with pytest.raises(ValueError):
            exponential_acf_fit(acf, [45, 55])

    def test_rejects_negative_acf_region(self):
        acf = np.concatenate(([1.0], -np.ones(20)))
        with pytest.raises(ValueError):
            exponential_acf_fit(acf, np.arange(1, 20))


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(min_value=1, max_value=50),
    n_blocks=st.integers(min_value=2, max_value=40),
)
def test_aggregate_shape_property(m, n_blocks):
    """Property: aggregation by m maps m*k points to exactly k."""
    x = np.arange(m * n_blocks, dtype=float)
    assert aggregate(x, m).shape == (n_blocks,)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_autocorrelation_bounds_property(seed):
    """Property: |r(k)| <= 1 for all lags on arbitrary data."""
    x = np.random.default_rng(seed).uniform(size=256)
    r = autocorrelation(x, max_lag=100)
    assert np.all(np.abs(r) <= 1.0 + 1e-9)
