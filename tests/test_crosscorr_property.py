"""Cross-correlation tests and a deeper property-based layer.

The property tests here pit fast implementations against slow
reference implementations over randomized inputs -- the strongest kind
of correctness evidence for the queueing and coding kernels.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.crosscorr import effective_independent_sources, lagged_copy_correlation


class TestLaggedCopyCorrelation:
    def test_lag_zero_is_one(self, small_series):
        out = lagged_copy_correlation(small_series, [0])
        assert out[0] == pytest.approx(1.0)

    def test_lrd_trace_correlated_at_long_lags(self, small_series):
        """The paper's Section 5.1 observation: cross-correlation is
        *statistically significant* even at 1000+ frame offsets --
        small in absolute terms, but several null standard errors
        (1/sqrt(n)) above what independence would allow."""
        lags = [1000, 2000, 4000]
        out = lagged_copy_correlation(small_series, lags)
        null_sigma = 1.0 / np.sqrt(small_series.size)
        assert np.mean(np.abs(out)) > 2.0 * null_sigma

    def test_iid_control_uncorrelated(self, rng):
        x = rng.gamma(20.0, 1000.0, size=20_000)
        out = lagged_copy_correlation(x, [1000, 2000])
        assert np.all(np.abs(out) < 0.03)

    def test_rejects_empty_lags(self, small_series):
        with pytest.raises(ValueError):
            lagged_copy_correlation(small_series, [])


class TestEffectiveIndependentSources:
    def test_iid_copies_fully_independent(self, rng):
        x = rng.standard_normal(50_000)
        result = effective_independent_sources(x, [0, 10_000, 20_000, 30_000])
        assert result["variance_ratio"] == pytest.approx(1.0, abs=0.1)
        assert result["effective_sources"] == pytest.approx(4.0, rel=0.15)

    def test_identical_copies_fully_dependent(self, rng):
        x = rng.standard_normal(10_000)
        result = effective_independent_sources(x, [0, 0, 0])
        # Var(3X) = 9 Var(X): ratio 3, one effective source.
        assert result["variance_ratio"] == pytest.approx(3.0, rel=1e-6)
        assert result["effective_sources"] == pytest.approx(1.0, rel=1e-6)

    def test_lrd_copies_less_than_fully_independent(self, small_series):
        result = effective_independent_sources(
            small_series, [0, 2_000, 4_000, 6_000, 8_000]
        )
        assert result["variance_ratio"] > 1.02
        assert result["effective_sources"] < 5.0


# ----------------------------------------------------------------------
# Reference-implementation property tests
# ----------------------------------------------------------------------
def _reference_queue(arrivals, capacity, buffer_bytes):
    """Straight-line textbook implementation of the fluid queue."""
    backlog = 0.0
    lost = 0.0
    for a in arrivals:
        backlog = backlog + a - capacity
        if backlog < 0:
            backlog = 0.0
        if backlog > buffer_bytes:
            lost += backlog - buffer_bytes
            backlog = buffer_bytes
    return lost, backlog


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    capacity=st.floats(0.5, 30.0),
    buffer_bytes=st.floats(0.0, 200.0),
)
def test_queue_matches_reference_property(seed, capacity, buffer_bytes):
    """Property: the production queue equals the textbook recursion."""
    from repro.simulation.queue import simulate_queue

    arrivals = np.random.default_rng(seed).uniform(0, 20, size=200)
    result = simulate_queue(arrivals, capacity, buffer_bytes)
    lost_ref, backlog_ref = _reference_queue(arrivals.tolist(), capacity, buffer_bytes)
    assert result.lost_bytes == pytest.approx(lost_ref, abs=1e-9)
    assert result.final_backlog == pytest.approx(backlog_ref, abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_priority_queue_refines_fifo_property(seed):
    """Property: total loss under strict priority + pushout equals the
    FIFO loss on the merged stream (work conservation), for any input."""
    from repro.simulation.priority import simulate_priority_queue
    from repro.simulation.queue import simulate_queue

    rng = np.random.default_rng(seed)
    h = rng.uniform(0, 10, size=300)
    low = rng.uniform(0, 10, size=300)
    c = float(rng.uniform(4, 16))
    q = float(rng.uniform(0, 60))
    prio = simulate_priority_queue(h, low, c, q)
    fifo = simulate_queue(h + low, c, q)
    assert prio.high_lost + prio.low_lost == pytest.approx(fifo.lost_bytes, abs=1e-6)
    # And the base layer never does worse than the merged stream.
    assert prio.high_loss_rate <= fifo.loss_rate + 1e-12


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), quant=st.sampled_from([4.0, 16.0, 48.0]))
def test_codec_roundtrip_property(seed, quant):
    """Property: for arbitrary frames the codec decodes its own output
    with error bounded by the quantizer geometry."""
    from repro.video.codec import IntraframeCodec

    rng = np.random.default_rng(seed)
    frame = rng.integers(0, 256, size=(16, 24)).astype(np.uint8)
    codec = IntraframeCodec(quant_step=quant, slices_per_frame=3)
    decoded = codec.decode_frame(codec.encode_frame(frame))
    assert np.max(np.abs(decoded - frame)) <= 8 * quant / 2 + 1e-6


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(10, 200),
)
def test_tracefile_roundtrip_property(seed, n, tmp_path_factory):
    """Property: save -> load is the identity on integer traces."""
    from repro.video.trace import VBRTrace
    from repro.video.tracefile import load_trace, save_trace

    rng = np.random.default_rng(seed)
    frames = rng.integers(1, 100_000, size=n).astype(float)
    trace = VBRTrace(frames, frame_rate=24.0, slices_per_frame=5)
    path = tmp_path_factory.mktemp("traces") / f"t{seed}.dat"
    save_trace(trace, path)
    loaded = load_trace(path)
    np.testing.assert_array_equal(loaded.frame_bytes, frames)
    assert loaded.slices_per_frame == 5


@settings(max_examples=25, deadline=None)
@given(
    mean=st.floats(100.0, 1e5),
    cov=st.floats(0.1, 0.5),
    a=st.floats(3.0, 25.0),
    n_sources=st.integers(2, 6),
)
def test_hybrid_aggregate_moments_property(mean, cov, a, n_sources):
    """Property: the table convolution reproduces the exact moments of
    the N-source sum for any hybrid parameters."""
    from repro.distributions.hybrid import GammaParetoHybrid

    h = GammaParetoHybrid(mean, mean * cov, a)
    agg = h.aggregate(n_sources, n_points=2000)
    assert agg.mean() == pytest.approx(n_sources * h.mean(), rel=0.02)
    if a > 2.5:
        assert agg.var() == pytest.approx(n_sources * h.var(), rel=0.3)
