"""Tests for the Davies-Harte FGN generator."""

import numpy as np
import pytest

from repro.core.daviesharte import DaviesHarteGenerator, davies_harte_fgn
from repro.core.fractional import fgn_acf


def sample_acov(x, max_lag, demean=True):
    """Sample autocovariance.

    For short, strongly correlated FGN paths the *sample*-mean
    correction biases the autocovariance down by Var(mean) =
    n^(2H-2) -- substantial at n=128 -- so ensemble tests over many
    paths pass ``demean=False`` and rely on the known zero mean.
    """
    if demean:
        x = x - x.mean()
    n = x.size
    return np.array([float(np.dot(x[: n - k], x[k:])) / n for k in range(max_lag + 1)])


class TestConstruction:
    def test_rejects_invalid_hurst(self):
        with pytest.raises(ValueError):
            DaviesHarteGenerator(1.0)
        with pytest.raises(ValueError):
            DaviesHarteGenerator(0.0)

    def test_rejects_invalid_variance(self):
        with pytest.raises(ValueError):
            DaviesHarteGenerator(0.8, variance=-1.0)

    def test_length_one_path(self, rng):
        x = DaviesHarteGenerator(0.8).generate(1, rng=rng)
        assert x.shape == (1,)


class TestExactness:
    def test_unit_variance(self, rng):
        x = DaviesHarteGenerator(0.8).generate(2**14, rng=rng)
        assert np.var(x) == pytest.approx(1.0, abs=0.1)

    def test_variance_parameter(self, rng):
        x = DaviesHarteGenerator(0.7, variance=9.0).generate(2**13, rng=rng)
        assert np.var(x) == pytest.approx(9.0, rel=0.2)

    def test_autocovariance_matches_fgn(self, rng):
        """The generator is exact: the ensemble autocovariance equals
        the FGN autocovariance.  Averaging over many short paths keeps
        the Monte-Carlo error small."""
        h = 0.8
        gen = DaviesHarteGenerator(h)
        acc = np.zeros(6)
        reps = 400
        for _ in range(reps):
            x = gen.generate(128, rng=rng)
            acc += sample_acov(x, 5, demean=False)
        measured = acc / reps
        theory = fgn_acf(h, 5)
        np.testing.assert_allclose(measured, theory, atol=0.05)

    def test_white_noise_at_h_half(self, rng):
        x = DaviesHarteGenerator(0.5).generate(2**13, rng=rng)
        acov = sample_acov(x, 3)
        np.testing.assert_allclose(acov[1:] / acov[0], 0.0, atol=0.05)

    def test_hurst_recovered_by_estimators(self, fgn_path):
        from repro.analysis.hurst import variance_time

        est = variance_time(fgn_path)
        assert est.hurst == pytest.approx(0.8, abs=0.06)

    def test_increments_of_fbm_are_selfsimilar(self, rng):
        """Var of the cumulative sum over m steps scales like m^2H."""
        h = 0.8
        gen = DaviesHarteGenerator(h)
        reps, n = 300, 256
        totals = np.empty((reps, 2))
        for i in range(reps):
            x = gen.generate(n, rng=rng)
            totals[i, 0] = x[:16].sum()
            totals[i, 1] = x[:256].sum()
        ratio = totals[:, 1].var() / totals[:, 0].var()
        assert ratio == pytest.approx((256 / 16) ** (2 * h), rel=0.35)


class TestCachingAndDeterminism:
    def test_eigenvalue_cache_reused(self, rng):
        gen = DaviesHarteGenerator(0.8)
        gen.generate(512, rng=rng)
        cached = gen._cached_sqrt_eig
        gen.generate(512, rng=rng)
        assert gen._cached_sqrt_eig is cached

    def test_cache_invalidated_on_new_length(self, rng):
        gen = DaviesHarteGenerator(0.8)
        gen.generate(256, rng=rng)
        gen.generate(512, rng=rng)
        assert gen._cached_n == 512

    def test_reproducible(self):
        a = DaviesHarteGenerator(0.8).generate(300, rng=np.random.default_rng(8))
        b = DaviesHarteGenerator(0.8).generate(300, rng=np.random.default_rng(8))
        np.testing.assert_array_equal(a, b)

    def test_wrapper(self, rng):
        assert davies_harte_fgn(100, hurst=0.6, rng=rng).shape == (100,)


class TestAgreementWithHosking:
    def test_same_long_range_behaviour(self, rng):
        """Hosking fARIMA and Davies-Harte FGN with the same H must
        yield indistinguishable variance-time slopes."""
        from repro.analysis.hurst import variance_time

        from repro.core.hosking import HoskingGenerator

        h = 0.75
        x_hosk = HoskingGenerator(hurst=h).generate(4096, rng=rng)
        x_dh = DaviesHarteGenerator(h).generate(4096, rng=rng)
        h1 = variance_time(x_hosk).hurst
        h2 = variance_time(x_dh).hurst
        assert h1 == pytest.approx(h2, abs=0.12)
