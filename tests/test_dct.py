"""Tests for the 8x8 DCT implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video.dct import (
    block_view,
    blockwise_dct,
    blockwise_idct,
    dct2,
    dct_matrix,
    idct2,
    unblock_view,
)


class TestDCTMatrix:
    def test_orthogonal(self):
        c = dct_matrix(8)
        np.testing.assert_allclose(c @ c.T, np.eye(8), atol=1e-12)

    def test_first_row_constant(self):
        c = dct_matrix(8)
        np.testing.assert_allclose(c[0], np.full(8, np.sqrt(1 / 8)))

    def test_matches_scipy(self):
        """Cross-check against scipy's orthonormalized DCT-II."""
        from scipy import fft as sfft

        x = np.random.default_rng(0).uniform(size=8)
        ours = dct_matrix(8) @ x
        theirs = sfft.dct(x, norm="ortho")
        np.testing.assert_allclose(ours, theirs, atol=1e-12)

    def test_other_sizes(self):
        for n in (4, 16):
            c = dct_matrix(n)
            np.testing.assert_allclose(c @ c.T, np.eye(n), atol=1e-12)


class TestBlockTransforms:
    def test_roundtrip(self, rng):
        block = rng.uniform(0, 255, size=(8, 8))
        np.testing.assert_allclose(idct2(dct2(block)), block, atol=1e-9)

    def test_constant_block_energy_in_dc(self):
        block = np.full((8, 8), 100.0)
        coeffs = dct2(block)
        assert coeffs[0, 0] == pytest.approx(800.0)  # 100 * 8 (orthonormal)
        assert np.abs(coeffs).sum() == pytest.approx(800.0)

    def test_parseval(self, rng):
        """Orthonormal transform preserves energy."""
        block = rng.standard_normal((8, 8))
        coeffs = dct2(block)
        assert np.sum(coeffs**2) == pytest.approx(np.sum(block**2), rel=1e-12)

    def test_high_frequency_content(self):
        """A checkerboard concentrates energy at the highest frequency."""
        block = np.indices((8, 8)).sum(axis=0) % 2 * 2.0 - 1.0
        coeffs = dct2(block)
        assert np.abs(coeffs[7, 7]) > 0.9 * np.abs(coeffs).max()

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            dct2(np.ones((4, 8)))


class TestBlockView:
    def test_roundtrip(self, rng):
        img = rng.uniform(size=(16, 24))
        np.testing.assert_array_equal(unblock_view(block_view(img, 8)), img)

    def test_shape(self):
        blocks = block_view(np.zeros((16, 24)), 8)
        assert blocks.shape == (2, 3, 8, 8)

    def test_block_contents(self):
        img = np.arange(64.0).reshape(8, 8)
        big = np.tile(img, (2, 2))
        blocks = block_view(big, 8)
        np.testing.assert_array_equal(blocks[0, 0], img)
        np.testing.assert_array_equal(blocks[1, 1], img)

    def test_rejects_nonmultiple(self):
        with pytest.raises(ValueError):
            block_view(np.zeros((10, 16)), 8)


class TestBlockwise:
    def test_matches_per_block(self, rng):
        img = rng.uniform(0, 255, size=(16, 16))
        all_coeffs = blockwise_dct(img)
        blocks = block_view(img)
        for i in range(2):
            for j in range(2):
                np.testing.assert_allclose(all_coeffs[i, j], dct2(blocks[i, j]), atol=1e-10)

    def test_roundtrip(self, rng):
        img = rng.uniform(0, 255, size=(24, 32))
        np.testing.assert_allclose(blockwise_idct(blockwise_dct(img)), img, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_dct_energy_property(seed):
    """Property: blockwise DCT preserves total energy for any image."""
    img = np.random.default_rng(seed).uniform(-100, 100, size=(16, 16))
    coeffs = blockwise_dct(img)
    assert np.sum(coeffs**2) == pytest.approx(np.sum(img**2), rel=1e-9)
