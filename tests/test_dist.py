"""Tier-1 tests for the distributed campaign layer.

Covers the protocol (task model, seeds, artifact references), the
transports (address parsing, the simulated fabric's latency/partition/
death semantics, a real unix-socket worker), the coordinator's
robustness paths (retry, lease expiry and reassignment, stalled-worker
timeout, local fallback, checkpoint/resume) and the campaign/CLI
wiring.  The multi-scenario digest-identity wall lives in
``test_dist_chaos.py``; scheduler benchmarks in
``benchmarks/test_dist.py``.
"""

import threading
import time

import numpy as np
import pytest

from repro.dist import (
    ArtifactMiss,
    ChannelClosed,
    DistError,
    FaultEvent,
    FaultScript,
    SimCluster,
    TaskSpec,
    WorkerLoop,
    execute_task,
    fgn_tasks,
    make_artifact_ref,
    parse_nodes,
    register_task_kind,
    resolve_payload,
    run_distributed,
    task_seed,
)
from repro.dist import protocol, transport
from repro.dist.transport import sim_pair
from repro.par.cache import ContentCache
from repro.resilience.faults import FaultPlan, TransientFault
from repro.resilience.runner import derive_attempt_seed


class TestProtocol:
    def test_task_spec_wire_round_trip(self):
        task = TaskSpec("t1", "sleep", {"duration_s": 0.0, "value": 3})
        assert TaskSpec.from_wire(task.to_wire()) == task

    def test_task_spec_validation(self):
        with pytest.raises(ValueError, match="task_id"):
            TaskSpec("", "sleep")
        with pytest.raises(TypeError, match="params"):
            TaskSpec("t", "sleep", params=[1])

    def test_task_seed_matches_supervisor_discipline(self):
        assert task_seed(7, "fgn003", 2) == derive_attempt_seed(7, "fgn003", 2)
        assert task_seed(7, "fgn003", 0) != task_seed(7, "fgn003", 1)

    def test_unknown_kind_is_an_error(self):
        with pytest.raises(ValueError, match="unknown task kind"):
            execute_task(TaskSpec("t", "no-such-kind"), seed=0)

    def test_register_task_kind_validation(self):
        with pytest.raises(ValueError, match="kind"):
            register_task_kind("", lambda params, seed: None)
        with pytest.raises(TypeError, match="callable"):
            register_task_kind("bad", "not-callable")

    def test_execute_fires_reach_site(self):
        plan = FaultPlan().fail_at("dist.task:sleep", call=1, exc=TransientFault)
        with plan.active():
            with pytest.raises(TransientFault):
                execute_task(TaskSpec("t", "sleep", {"duration_s": 0.0}), seed=0)

    def test_fgn_task_is_seed_deterministic(self):
        task = TaskSpec("f", "fgn", {"n": 256, "hurst": 0.8})
        a = execute_task(task, seed=task_seed(0, "f", 0))
        b = execute_task(task, seed=task_seed(0, "f", 0))
        c = execute_task(task, seed=task_seed(0, "f", 1))
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)


class TestArtifactRefs:
    def test_round_trip_through_store(self, tmp_path):
        cache = ContentCache(tmp_path)
        array = np.arange(64.0)
        ref = make_artifact_ref("dist.fgn", {"seed": 1}, array, cache)
        assert protocol.is_artifact_ref(ref)
        np.testing.assert_array_equal(resolve_payload(ref, cache), array)

    def test_plain_payloads_pass_through(self, tmp_path):
        assert resolve_payload({"knees": 3}, ContentCache(tmp_path)) == {"knees": 3}
        assert resolve_payload(41, None) == 41

    def test_missing_entry_raises_artifact_miss(self, tmp_path):
        cache = ContentCache(tmp_path)
        ref = make_artifact_ref("dist.fgn", {"seed": 1}, np.arange(8.0), cache)
        payload_path, meta_path = cache.entry_paths("dist.fgn", {"seed": 1})
        payload_path.unlink()
        meta_path.unlink()
        with pytest.raises(ArtifactMiss, match="missing"):
            resolve_payload(ref, cache)

    def test_poisoned_entry_never_served(self, tmp_path):
        cache = ContentCache(tmp_path)
        ref = make_artifact_ref("dist.fgn", {"seed": 1}, np.arange(8.0), cache)
        payload_path, _ = cache.entry_paths("dist.fgn", {"seed": 1})
        blob = bytearray(payload_path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        payload_path.write_bytes(bytes(blob))
        # The store's own digest check evicts the entry -> miss.
        with pytest.raises(ArtifactMiss):
            resolve_payload(ref, cache)

    def test_end_to_end_digest_check_catches_store_bypass(self, tmp_path):
        # Same key, different bytes: even if the store serves happily,
        # the reference's own digest refuses the payload.
        cache = ContentCache(tmp_path)
        ref = make_artifact_ref("dist.fgn", {"seed": 1}, np.arange(8.0), cache)
        cache.put("dist.fgn", {"seed": 1}, np.zeros(8))
        with pytest.raises(ArtifactMiss, match="end-to-end digest"):
            resolve_payload(ref, cache)

    def test_no_cache_configured_is_a_miss(self, tmp_path):
        cache = ContentCache(tmp_path)
        ref = make_artifact_ref("dist.fgn", {"seed": 1}, np.arange(8.0), cache)
        with pytest.raises(ArtifactMiss, match="no.*shared cache"):
            resolve_payload(ref, cache=None)


class TestTransport:
    def test_parse_address(self):
        assert transport.parse_address("127.0.0.1:9001") == ("127.0.0.1", 9001)
        assert transport.parse_address("unix:/tmp/x.sock") == "/tmp/x.sock"
        for bad in ("", "nohost", "host:", "host:abc", "unix:"):
            with pytest.raises(ValueError):
                transport.parse_address(bad)

    def test_sim_pair_delivers_both_ways(self):
        a, b = sim_pair("t")
        a.send({"type": "ping"})
        assert b.poll(0.5) and b.recv() == {"type": "ping"}
        b.send({"type": "pong"})
        assert a.poll(0.5) and a.recv() == {"type": "pong"}
        assert not a.poll(0.0)

    def test_partition_drops_messages_silently(self):
        a, b = sim_pair("t")
        a.link.partition(60.0)
        a.send({"type": "lost"})  # no error, no delivery
        assert not b.poll(0.05)

    def test_killed_link_raises_channel_closed(self):
        a, b = sim_pair("t")
        a.link.kill()
        with pytest.raises(ChannelClosed):
            a.send({"type": "x"})
        assert b.poll(0.05)  # dead link is "readable" so recv can raise
        with pytest.raises(ChannelClosed):
            b.recv()

    def test_latency_delays_delivery(self):
        a, b = sim_pair("t", latency_s=0.15)
        a.send({"type": "slow"})
        assert not b.poll(0.0)
        assert b.poll(1.0)
        assert b.recv() == {"type": "slow"}

    def test_unix_socket_serve_probe_detach(self, tmp_path):
        from repro.dist.worker import serve

        address = f"unix:{tmp_path / 'w.sock'}"
        ready = threading.Event()
        outcome = {}

        def _serve():
            outcome["result"] = serve(
                address, name="w-test", once=True, ready=lambda bound: ready.set()
            )

        thread = threading.Thread(target=_serve, daemon=True)
        thread.start()
        assert ready.wait(5.0)
        ok, rtt, detail = transport.probe(address)
        assert ok and rtt is not None and detail == "w-test"
        thread.join(5.0)
        assert outcome.get("result") == "detach"

    def test_probe_unreachable(self, tmp_path):
        ok, rtt, detail = transport.probe(
            f"unix:{tmp_path / 'nothing.sock'}", timeout_s=0.5
        )
        assert not ok and rtt is None and detail


class TestWorkerLoop:
    def test_hello_task_result_shutdown(self):
        coord, node = sim_pair("t")
        loop = WorkerLoop(node, name="w0")
        thread = threading.Thread(target=lambda: loop.run(), daemon=True)
        thread.start()
        assert coord.poll(2.0)
        hello = coord.recv()
        assert hello["type"] == "hello" and hello["node"] == "w0"
        task = TaskSpec("t1", "sleep", {"duration_s": 0.0, "value": 9})
        coord.send(protocol.make_task_message(task, seed=1, attempt=0, lease_s=1.0))
        message = coord.recv() if coord.poll(2.0) else None
        while message is not None and message["type"] == "heartbeat":
            message = coord.recv() if coord.poll(2.0) else None
        assert message is not None and message["ok"] and message["payload"] == 9
        coord.send({"type": "shutdown"})
        thread.join(2.0)
        assert not thread.is_alive()

    def test_heartbeats_flow_during_long_task(self):
        coord, node = sim_pair("t")
        loop = WorkerLoop(node, name="w0")
        thread = threading.Thread(target=lambda: loop.run(), daemon=True)
        thread.start()
        coord.recv()  # hello
        task = TaskSpec("slow", "sleep", {"duration_s": 0.4, "value": 1})
        coord.send(protocol.make_task_message(task, seed=1, attempt=0, lease_s=0.2))
        beats = 0
        while coord.poll(2.0):
            message = coord.recv()
            if message["type"] == "heartbeat":
                beats += 1
                assert message["task_id"] == "slow"
            elif message["type"] == "result":
                break
        assert beats >= 2
        coord.send({"type": "shutdown"})
        thread.join(2.0)

    def test_task_error_reported_with_transient_flag(self):
        coord, node = sim_pair("t")
        loop = WorkerLoop(node, name="w0")
        thread = threading.Thread(target=lambda: loop.run(), daemon=True)
        thread.start()
        coord.recv()  # hello
        task = TaskSpec("bad", "no-such-kind", {})
        coord.send(protocol.make_task_message(task, seed=1, attempt=0, lease_s=1.0))
        assert coord.poll(2.0)
        message = coord.recv()
        assert not message["ok"]
        assert message["error"]["error_type"] == "ValueError"
        assert not message["error"]["transient"]
        coord.send({"type": "shutdown"})
        thread.join(2.0)


def _sleep_tasks(n, duration_s=0.0):
    return [
        TaskSpec(f"t{i}", "sleep", {"duration_s": duration_s, "value": i})
        for i in range(n)
    ]


class TestCoordinator:
    def test_results_in_task_order_any_node_count(self):
        tasks = _sleep_tasks(7)
        expected = {f"t{i}": i for i in range(7)}
        for nodes in (1, 3):
            with SimCluster(nodes) as cluster:
                report = run_distributed(tasks, cluster.endpoints(), lease_s=2.0)
            assert report.ok
            assert report.results == expected
            assert [r.task_id for r in report.records] == [t.task_id for t in tasks]

    def test_duplicate_task_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate task id"):
            run_distributed([TaskSpec("t", "sleep"), TaskSpec("t", "sleep")], {})

    def test_transient_failure_retries_with_rotated_seed(self):
        plan = FaultPlan().fail_at("dist.task:fgn", call=1, exc=TransientFault)
        tasks = fgn_tasks(3, 256)
        with plan.active():
            with SimCluster(1) as cluster:
                report = run_distributed(
                    tasks, cluster.endpoints(), lease_s=2.0, max_retries=1,
                    base_seed=3,
                )
        assert report.ok
        assert len(report.attempt_failures) == 1
        failed = report.attempt_failures[0]
        assert failed.transient and failed.attempt == 0
        record = next(r for r in report.records if r.task_id == failed.task_id)
        assert record.attempts == 2  # second attempt, rotated seed, succeeded

    def test_terminal_failure_recorded_campaign_continues(self):
        tasks = _sleep_tasks(3) + [TaskSpec("bad", "no-such-kind")]
        with SimCluster(2) as cluster:
            report = run_distributed(tasks, cluster.endpoints(), lease_s=2.0,
                                     max_retries=2)
        assert not report.ok
        assert [f.task_id for f in report.failures] == ["bad"]
        assert len(report.results) == 3  # the healthy tasks all completed
        assert any("FAILED: bad" in line for line in report.summary_lines())

    def test_killed_node_work_reassigned_same_seed(self):
        tasks = fgn_tasks(6, 512)
        with SimCluster(1) as cluster:
            baseline = run_distributed(tasks, cluster.endpoints(), lease_s=2.0,
                                       base_seed=7)
        script = FaultScript([FaultEvent("n0", "kill", at_task=1, phase="finish")])
        events = []
        with SimCluster(3, script=script) as cluster:
            report = run_distributed(
                tasks, cluster.endpoints(), lease_s=0.3, base_seed=7,
                on_event=lambda kind, detail: events.append(kind),
            )
        assert [e.kind for e in script.fired] == ["kill"]
        assert report.ok
        assert report.node_states["n0"] == "dead"
        assert sum(r.reassignments for r in report.records) == 1
        assert "node_lost" in events and "reassign" in events
        # The rerun kept the attempt number, so results are bit-identical.
        for task in tasks:
            np.testing.assert_array_equal(
                baseline.results[task.task_id], report.results[task.task_id]
            )
        assert all(f"t{r.attempts}" and r.attempts == 1 for r in report.records)

    def test_stalled_worker_caught_by_task_timeout(self):
        # A stall heartbeats forever without delivering; only the hard
        # per-attempt cap can catch it.
        script = FaultScript([
            FaultEvent("n0", "stall", at_task=1, phase="finish", duration_s=60.0)
        ])
        tasks = _sleep_tasks(3)
        with SimCluster(2, script=script) as cluster:
            report = run_distributed(tasks, cluster.endpoints(), lease_s=0.2,
                                     task_timeout_s=0.6)
        assert report.ok
        assert report.node_states["n0"] == "dead"
        assert report.node_states["n1"] == "alive"

    def test_all_nodes_dead_without_fallback_raises(self):
        script = FaultScript([FaultEvent("n0", "kill", at_task=1)])
        with SimCluster(1, script=script) as cluster:
            with pytest.raises(DistError, match="worker node"):
                run_distributed(_sleep_tasks(4), cluster.endpoints(),
                                lease_s=0.2, fallback_local=False)

    def test_all_nodes_dead_degrades_to_local(self):
        tasks = fgn_tasks(4, 256)
        with SimCluster(1) as cluster:
            baseline = run_distributed(tasks, cluster.endpoints(), lease_s=2.0,
                                       base_seed=5)
        script = FaultScript([FaultEvent("n0", "kill", at_task=1)])
        with SimCluster(1, script=script) as cluster:
            report = run_distributed(tasks, cluster.endpoints(), lease_s=0.2,
                                     base_seed=5)
        assert report.ok and report.degraded_to_local
        for task in tasks:
            np.testing.assert_array_equal(
                baseline.results[task.task_id], report.results[task.task_id]
            )
        assert any("degraded to local" in line for line in report.summary_lines())

    def test_checkpoint_resume_skips_verified_tasks(self, tmp_path):
        tasks = fgn_tasks(5, 256)
        ckpt = tmp_path / "ckpt"
        with SimCluster(2) as cluster:
            run_distributed(tasks[:3], cluster.endpoints(), lease_s=2.0,
                            base_seed=5, checkpoint_dir=ckpt, manifest={"v": 1})
        with SimCluster(2) as cluster:
            report = run_distributed(tasks, cluster.endpoints(), lease_s=2.0,
                                     base_seed=5, checkpoint_dir=ckpt,
                                     manifest={"v": 1})
        assert report.ok
        assert sorted(report.resumed) == ["fgn000", "fgn001", "fgn002"]
        statuses = {r.task_id: r.status for r in report.records}
        assert statuses["fgn000"] == "resumed" and statuses["fgn004"] == "completed"

    def test_resume_refuses_drifted_manifest(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        with SimCluster(1) as cluster:
            run_distributed(_sleep_tasks(2), cluster.endpoints(), lease_s=2.0,
                            checkpoint_dir=ckpt, manifest={"v": 1})
        with SimCluster(1) as cluster:
            with pytest.raises(ValueError, match="different campaign"):
                run_distributed(_sleep_tasks(2), cluster.endpoints(),
                                lease_s=2.0, checkpoint_dir=ckpt,
                                manifest={"v": 2})

    def test_artifact_refs_resolved_through_shared_store(self, tmp_path):
        from repro.par.cache import using

        tasks = fgn_tasks(4, 512)
        with SimCluster(1) as cluster:
            baseline = run_distributed(tasks, cluster.endpoints(), lease_s=2.0,
                                       base_seed=7)
        with using(tmp_path / "store"):
            with SimCluster(2) as cluster:
                report = run_distributed(tasks, cluster.endpoints(), lease_s=2.0,
                                         base_seed=7)
        assert report.ok
        for task in tasks:
            # Refs crossed the wire; resolved payloads are the raw arrays.
            np.testing.assert_array_equal(
                baseline.results[task.task_id], report.results[task.task_id]
            )

    def test_lease_must_be_positive(self):
        with pytest.raises(ValueError, match="lease_s"):
            run_distributed(_sleep_tasks(1), {}, lease_s=0.0)


class TestFaultScript:
    def test_random_is_seed_deterministic(self):
        nodes = [f"n{i}" for i in range(5)]
        a = FaultScript.random(3, nodes, n_events=3)
        b = FaultScript.random(3, nodes, n_events=3)
        assert [(e.node, e.kind, e.at_task, e.phase) for e in a.events] == [
            (e.node, e.kind, e.at_task, e.phase) for e in b.events
        ]
        c = FaultScript.random(4, nodes, n_events=3)
        assert [(e.node, e.kind) for e in a.events] != [
            (e.node, e.kind) for e in c.events
        ] or [e.at_task for e in a.events] != [e.at_task for e in c.events]

    def test_random_spares_survivors(self):
        nodes = [f"n{i}" for i in range(4)]
        for seed in range(8):
            script = FaultScript.random(seed, nodes, n_events=10, spare=2)
            assert len({e.node for e in script.events}) <= 2

    def test_single_node_cluster_can_be_fully_faulted(self):
        script = FaultScript.random(0, ["n0"], n_events=1)
        assert len(script.events) == 1

    def test_event_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FaultEvent("n0", "meteor")
        with pytest.raises(ValueError, match="phase"):
            FaultEvent("n0", "kill", phase="middle")
        with pytest.raises(ValueError, match="1-based"):
            FaultEvent("n0", "kill", at_task=0)


class TestCampaign:
    def test_parse_nodes(self):
        assert parse_nodes("sim:3") == ("sim", 3)
        assert parse_nodes("sim") == ("sim", 2)
        assert parse_nodes("a:1,b:2") == ("addresses", ["a:1", "b:2"])
        assert parse_nodes(["unix:/tmp/x"]) == ("addresses", ["unix:/tmp/x"])
        for bad in ("", "sim:0", "sim:x", ",", "host:"):
            with pytest.raises(ValueError):
                parse_nodes(bad)

    def test_fgn_tasks_shape(self):
        tasks = fgn_tasks(3, 1024, hurst=0.75, backend="paxson")
        assert [t.task_id for t in tasks] == ["fgn000", "fgn001", "fgn002"]
        assert all(t.kind == "fgn" and t.params["hurst"] == 0.75 for t in tasks)
        with pytest.raises(ValueError, match="at least one"):
            fgn_tasks(0, 8)

    def test_experiment_tasks_validates_only(self):
        from repro.dist.campaign import experiment_tasks

        tasks = experiment_tasks(quick=True, only="fig11", trace_frames=2_000)
        assert [t.task_id for t in tasks] == ["fig11"]
        assert tasks[0].params["trace_frames"] == 2_000
        with pytest.raises(ValueError, match="unknown experiment"):
            experiment_tasks(quick=True, only="fig99", trace_frames=2_000)

    def test_run_all_nodes_rejects_custom_trace(self):
        from repro.experiments.runner import run_all
        from repro.video.starwars import synthesize_starwars_trace

        trace = synthesize_starwars_trace(n_frames=500, seed=0, with_slices=False)
        with pytest.raises(ValueError, match="reference"):
            run_all(trace=trace, nodes="sim:2")
        with pytest.raises(ValueError, match="local supervisor"):
            run_all(nodes="sim:2", timeout_s=5.0)


class TestCli:
    def test_doctor_nodes_unreachable_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        status = main(["doctor", "--nodes", f"unix:{tmp_path / 'no.sock'}",
                       "--probe-timeout-s", "0.5"])
        assert status == 2
        assert "UNREACHABLE" in capsys.readouterr().err

    def test_doctor_nodes_reachable_exits_0(self, tmp_path, capsys):
        from repro.cli import main
        from repro.dist.worker import serve

        address = f"unix:{tmp_path / 'w.sock'}"
        ready = threading.Event()
        thread = threading.Thread(
            target=lambda: serve(address, name="w-doc", once=True,
                                 ready=lambda bound: ready.set()),
            daemon=True,
        )
        thread.start()
        assert ready.wait(5.0)
        status = main(["doctor", "--nodes", address])
        thread.join(5.0)
        out = capsys.readouterr().out
        assert status == 0
        assert "cluster ok" in out and "w-doc" in out

    def test_doctor_rejects_sim_nodes(self, capsys):
        from repro.cli import main

        assert main(["doctor", "--nodes", "sim:3"]) == 2
        assert "simulated" in capsys.readouterr().err

    def test_doctor_without_trace_or_nodes_exits_2(self, capsys):
        from repro.cli import main

        assert main(["doctor"]) == 2
        assert "trace file and/or --nodes" in capsys.readouterr().err

    def test_dist_serve_bad_address_exits_2(self, capsys):
        from repro.cli import main

        assert main(["dist", "serve", "not-an-address"]) == 2
        assert "error:" in capsys.readouterr().err
