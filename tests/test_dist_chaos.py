"""Chaos wall for the distributed coordinator (ISSUE 8 acceptance).

The invariant under test: a campaign that loses nodes mid-flight --
killed, hung, stalled, partitioned, or degraded all the way to local
fallback -- produces **bit-identical results and checkpoint digests**
to the uninterrupted single-node run.  Node loss keeps the attempt
number (same derived seed, same bits); only genuine task failures
rotate seeds.

Scenarios are driven by seeded :class:`~repro.dist.FaultScript`\\ s
whose seeds rotate with the nightly ``--qa-seed``, so every night
explores a fresh corner of the fault space while any failure
reproduces exactly from the report header.  Worker counts {1, 2, 5}
are crossed with two fault seeds per count, per the acceptance
criteria; the count-1 kill exercises the local-fallback path.

Marked tier2: multi-second sleeps on lease expiry make this a nightly
job, not a PR gate (a 3-node smoke slice runs on PRs from CI directly).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.dist import (
    DistError,
    FaultEvent,
    FaultScript,
    SimCluster,
    fgn_tasks,
    run_distributed,
)
from repro.qa.golden import diff_digests, summarize
from repro.qa.plugin import derive_seed

pytestmark = pytest.mark.tier2

BASE_SEED = 7
N_TASKS = 8
TASK_N = 1_024


@pytest.fixture
def chaos_seed(request):
    """Scenario seed rotated by the nightly ``--qa-seed``.

    Derived per-test so scenarios are independent; the value is echoed
    in the failure message via the FaultScript repr, and any night's
    run reproduces with ``--qa-seed <reported>``.
    """
    return derive_seed(request.config.getoption("--qa-seed"), request.node.nodeid)


def _tasks():
    return fgn_tasks(N_TASKS, TASK_N, hurst=0.8)


def _digest(results):
    """JSON-normalized golden digest of a result mapping."""
    return json.loads(json.dumps(summarize(results)))


def _checkpoint_digests(root):
    """``{task_id: golden digest}`` from the checkpoint metadata files."""
    digests = {}
    for meta_path in sorted(root.glob("*.json")):
        if meta_path.name == "campaign.json":
            continue
        meta = json.loads(meta_path.read_text())
        digests[meta["experiment"]] = meta["digest"]
    return digests


@pytest.fixture(scope="module")
def uninterrupted(tmp_path_factory):
    """The golden single-node run every chaos scenario must match."""
    ckpt = tmp_path_factory.mktemp("golden-ckpt")
    with SimCluster(1) as cluster:
        report = run_distributed(
            _tasks(), cluster.endpoints(), base_seed=BASE_SEED,
            lease_s=5.0, checkpoint_dir=ckpt,
        )
    assert report.ok and not report.failures
    return {
        "digest": _digest(report.results),
        "checkpoints": _checkpoint_digests(ckpt),
        "results": report.results,
    }


def _assert_identical(report, uninterrupted, ckpt=None):
    __tracebackhide__ = True
    assert report.ok, report.failures
    assert diff_digests(uninterrupted["digest"], _digest(report.results)) == []
    for task_id, golden in uninterrupted["results"].items():
        np.testing.assert_array_equal(golden, report.results[task_id])
    if ckpt is not None:
        assert _checkpoint_digests(ckpt) == uninterrupted["checkpoints"]


class TestChaosWall:
    """Worker counts {1, 2, 5} x 2 rotating fault seeds, digest-identical."""

    @pytest.mark.parametrize("n_nodes", [1, 2, 5])
    @pytest.mark.parametrize("salt", [0, 1])
    def test_random_faults_digest_identical(self, n_nodes, salt, chaos_seed,
                                            uninterrupted, tmp_path):
        fault_seed = derive_seed(chaos_seed, f"faults-{n_nodes}", salt)
        names = [f"n{i}" for i in range(n_nodes)]
        # max_task 2: with 8 tasks over n nodes every node sees at least
        # two, so scripted events reliably fire (at_task beyond a node's
        # share would silently never trigger).
        script = FaultScript.random(
            fault_seed, names, n_events=max(1, n_nodes - 1), max_task=2,
            duration_s=0.5,
        )
        ckpt = tmp_path / "ckpt"
        with SimCluster(n_nodes, script=script) as cluster:
            report = run_distributed(
                _tasks(), cluster.endpoints(), base_seed=BASE_SEED,
                lease_s=0.3, task_timeout_s=3.0, checkpoint_dir=ckpt,
            )
        assert script.fired, (
            f"fault script {script.events} never fired (seed {fault_seed})"
        )
        _assert_identical(report, uninterrupted, ckpt)

    def test_single_node_killed_degrades_to_local_identically(
            self, uninterrupted, tmp_path):
        script = FaultScript([FaultEvent("n0", "kill", at_task=2)])
        ckpt = tmp_path / "ckpt"
        with SimCluster(1, script=script) as cluster:
            report = run_distributed(
                _tasks(), cluster.endpoints(), base_seed=BASE_SEED,
                lease_s=0.3, checkpoint_dir=ckpt,
            )
        assert report.degraded_to_local
        _assert_identical(report, uninterrupted, ckpt)


class TestKillResumeMigration:
    """The ISSUE headline: killed on node A, resumed on node B."""

    def test_kill_then_resume_on_different_node(self, uninterrupted, tmp_path):
        ckpt = tmp_path / "ckpt"
        script = FaultScript([FaultEvent("n0", "kill", at_task=3, phase="start")])
        with SimCluster(["n0"], script=script) as cluster:
            with pytest.raises(DistError):
                run_distributed(
                    _tasks(), cluster.endpoints(), base_seed=BASE_SEED,
                    lease_s=0.3, checkpoint_dir=ckpt, fallback_local=False,
                )
        partial = _checkpoint_digests(ckpt)
        assert 0 < len(partial) < N_TASKS  # died mid-campaign, some work saved
        # Resume the same campaign on a *different* node.
        with SimCluster(["nB"]) as cluster:
            report = run_distributed(
                _tasks(), cluster.endpoints(), base_seed=BASE_SEED,
                lease_s=5.0, checkpoint_dir=ckpt,
            )
        assert sorted(report.resumed) == sorted(partial)
        _assert_identical(report, uninterrupted, ckpt)

    def test_resume_after_partition_heals(self, uninterrupted, chaos_seed,
                                          tmp_path):
        fault_seed = derive_seed(chaos_seed, "partition", 0)
        script = FaultScript([
            FaultEvent("n0", "partition", at_task=1, phase="finish",
                       duration_s=0.8),
            FaultEvent("n1", "kill", at_task=2, phase="start"),
        ])
        ckpt = tmp_path / "ckpt"
        with SimCluster(3, script=script) as cluster:
            report = run_distributed(
                _tasks(), cluster.endpoints(),
                base_seed=BASE_SEED, lease_s=0.3, task_timeout_s=3.0,
                checkpoint_dir=ckpt,
            )
        assert {e.kind for e in script.fired} == {"partition", "kill"}, fault_seed
        _assert_identical(report, uninterrupted, ckpt)


class TestFlightDeterminism:
    """ISSUE 9 acceptance: the flight recording's canonical projection
    (per-task terminal outcomes: id, attempt, seed, status) is
    byte-identical at worker counts {1, 2, 5}, fault scripts included
    -- node loss keeps attempt numbers, so the projection is a function
    of ``(tasks, base_seed)`` alone.  Full recordings (scheduling-
    dependent by nature) are persisted to ``REPRO_CHAOS_FLIGHT_DIR``
    when set, so nightly CI can attach them to failures."""

    def test_canonical_recording_identical_across_worker_counts(
            self, chaos_seed, tmp_path):
        import os

        from repro.obs import flight as obs_flight

        out_dir = os.environ.get("REPRO_CHAOS_FLIGHT_DIR")
        out_dir = tmp_path if out_dir is None else __import__("pathlib").Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        canonical = {}
        try:
            for n_nodes in (1, 2, 5):
                names = [f"n{i}" for i in range(n_nodes)]
                fault_seed = derive_seed(chaos_seed, f"flight-{n_nodes}")
                script = FaultScript.random(
                    fault_seed, names, n_events=max(1, n_nodes - 1),
                    max_task=2, duration_s=0.5,
                )
                flight_path = out_dir / f"flight-{n_nodes}w.jsonl"
                with SimCluster(n_nodes, script=script) as cluster:
                    report = run_distributed(
                        _tasks(), cluster.endpoints(), base_seed=BASE_SEED,
                        lease_s=0.3, task_timeout_s=3.0,
                        flight_path=str(flight_path),
                    )
                assert report.ok, report.failures
                recording = obs_flight.recorder()
                # The full ordered recording landed on disk...
                assert flight_path.exists() and flight_path.stat().st_size > 0
                # ...and the canonical projection is worker-count-free.
                canonical[n_nodes] = (
                    "\n".join(recording.canonical_lines()) + "\n"
                ).encode()
        finally:
            obs_flight.configure()  # restore the gated default recorder
        assert len(canonical) == 3
        assert canonical[1] == canonical[2] == canonical[5], (
            f"canonical flight projections diverged (qa chaos seed {chaos_seed})"
        )
        # Every task reached a terminal outcome exactly once.
        assert len(canonical[1].splitlines()) == N_TASKS


class TestSharedStoreUnderChaos:
    def test_artifact_store_survives_node_loss(self, uninterrupted, tmp_path):
        """Refs minted by a node that later dies still resolve (the
        store outlives its writers), and digests stay identical."""
        from repro.par.cache import using

        script = FaultScript([FaultEvent("n1", "kill", at_task=2,
                                         phase="finish")])
        with using(tmp_path / "store"):
            with SimCluster(3, script=script) as cluster:
                report = run_distributed(
                    _tasks(), cluster.endpoints(), base_seed=BASE_SEED,
                    lease_s=0.3,
                )
        assert script.fired
        _assert_identical(report, uninterrupted)
