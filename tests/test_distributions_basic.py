"""Tests for the Normal, Gamma, Lognormal and Pareto distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import Gamma, Lognormal, Normal, Pareto


class TestNormal:
    def test_pdf_integrates_to_one(self):
        d = Normal(3.0, 2.0)
        x = np.linspace(-20, 30, 20001)
        assert np.trapezoid(d.pdf(x), x) == pytest.approx(1.0, abs=1e-6)

    def test_cdf_at_mean_is_half(self):
        assert Normal(5.0, 1.5).cdf(5.0) == pytest.approx(0.5)

    def test_ppf_inverts_cdf(self):
        d = Normal(-2.0, 0.7)
        q = np.linspace(0.001, 0.999, 97)
        np.testing.assert_allclose(d.cdf(d.ppf(q)), q, atol=1e-10)

    def test_sf_complements_cdf(self):
        d = Normal(0.0, 1.0)
        x = np.linspace(-4, 4, 33)
        np.testing.assert_allclose(d.sf(x) + d.cdf(x), 1.0, atol=1e-12)

    def test_moments(self):
        d = Normal(7.0, 3.0)
        assert d.mean() == 7.0
        assert d.var() == 9.0
        assert d.std() == 3.0

    def test_fit_recovers_parameters(self, rng):
        data = rng.normal(10.0, 2.0, size=200_00)
        d = Normal.fit(data)
        assert d.mu == pytest.approx(10.0, abs=0.1)
        assert d.sigma == pytest.approx(2.0, abs=0.1)

    def test_fit_rejects_constant_data(self):
        with pytest.raises(ValueError):
            Normal.fit(np.ones(100))

    def test_sample_statistics(self, rng):
        d = Normal(1.0, 0.5)
        x = d.sample(50_000, rng=rng)
        assert np.mean(x) == pytest.approx(1.0, abs=0.02)
        assert np.std(x) == pytest.approx(0.5, abs=0.02)

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            Normal(0.0, 0.0)
        with pytest.raises(ValueError):
            Normal(0.0, -1.0)

    def test_invalid_mu(self):
        with pytest.raises(ValueError):
            Normal(float("nan"), 1.0)

    def test_ppf_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Normal(0, 1).ppf(1.5)

    def test_loglike_matches_formula(self):
        d = Normal(0.0, 1.0)
        data = np.array([0.0, 1.0, -1.0])
        expected = np.sum(np.log(d.pdf(data)))
        assert d.loglike(data) == pytest.approx(expected)


class TestGamma:
    def test_paper_parameterization(self):
        """Paper eq. 14: mean = s/lambda, var = s/lambda^2."""
        d = Gamma(shape=4.0, rate=2.0)
        assert d.mean() == pytest.approx(2.0)
        assert d.var() == pytest.approx(1.0)

    def test_from_moments_roundtrip(self):
        d = Gamma.from_moments(27_791.0, 6_254.0)
        assert d.mean() == pytest.approx(27_791.0)
        assert d.std() == pytest.approx(6_254.0)

    def test_pdf_integrates_to_one(self):
        d = Gamma.from_moments(10.0, 3.0)
        x = np.linspace(0, 60, 60001)
        assert np.trapezoid(d.pdf(x), x) == pytest.approx(1.0, abs=1e-6)

    def test_pdf_zero_for_nonpositive(self):
        d = Gamma(2.0, 1.0)
        assert d.pdf(0.0) == 0.0
        assert d.pdf(-1.0) == 0.0

    def test_cdf_monotone(self):
        d = Gamma.from_moments(5.0, 2.0)
        x = np.linspace(0.01, 30, 500)
        assert np.all(np.diff(d.cdf(x)) >= 0)

    def test_ppf_inverts_cdf(self):
        d = Gamma.from_moments(27_791.0, 6_254.0)
        q = np.linspace(0.001, 0.999, 51)
        np.testing.assert_allclose(d.cdf(d.ppf(q)), q, rtol=1e-9)

    def test_exponential_special_case(self):
        """shape = 1 reduces to the exponential distribution."""
        d = Gamma(1.0, 0.5)
        x = np.array([0.5, 1.0, 4.0])
        np.testing.assert_allclose(d.sf(x), np.exp(-0.5 * x), rtol=1e-10)

    def test_loglog_ccdf_slope_decreases(self):
        """The log-log CCDF slope must decrease monotonically (so the
        hybrid splice point is unique)."""
        d = Gamma.from_moments(27_791.0, 6_254.0)
        x = np.linspace(10_000, 80_000, 100)
        slopes = d.loglog_ccdf_slope(x)
        assert np.all(np.diff(slopes) < 0)

    def test_fit_recovers_moments(self, rng):
        data = rng.gamma(9.0, 2.0, size=100_000)
        d = Gamma.fit(data)
        assert d.mean() == pytest.approx(18.0, rel=0.02)

    def test_sample_moments(self, rng):
        d = Gamma.from_moments(100.0, 20.0)
        x = d.sample(50_000, rng=rng)
        assert np.mean(x) == pytest.approx(100.0, rel=0.01)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Gamma(-1.0, 1.0)
        with pytest.raises(ValueError):
            Gamma(1.0, 0.0)


class TestLognormal:
    def test_from_moments_matches(self):
        d = Lognormal.from_moments(50.0, 12.0)
        assert d.mean() == pytest.approx(50.0)
        assert np.sqrt(d.var()) == pytest.approx(12.0)

    def test_pdf_integrates_to_one(self):
        d = Lognormal.from_moments(10.0, 5.0)
        x = np.linspace(0.001, 200, 200001)
        assert np.trapezoid(d.pdf(x), x) == pytest.approx(1.0, abs=1e-4)

    def test_pdf_zero_at_nonpositive(self):
        d = Lognormal(0.0, 1.0)
        assert d.pdf(0.0) == 0.0
        assert d.pdf(-3.0) == 0.0

    def test_ppf_inverts_cdf(self):
        d = Lognormal(1.0, 0.4)
        q = np.linspace(0.01, 0.99, 45)
        np.testing.assert_allclose(d.cdf(d.ppf(q)), q, atol=1e-10)

    def test_median_is_exp_mu(self):
        d = Lognormal(2.0, 0.7)
        assert d.ppf(0.5) == pytest.approx(np.exp(2.0))

    def test_fit_is_mle_on_logs(self, rng):
        data = rng.lognormal(1.5, 0.3, size=50_000)
        d = Lognormal.fit(data)
        assert d.mu_log == pytest.approx(1.5, abs=0.01)
        assert d.sigma_log == pytest.approx(0.3, abs=0.01)

    def test_fit_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Lognormal.fit(np.array([1.0, -2.0, 3.0]))

    def test_heavier_tail_than_gamma(self):
        """The paper chose Lognormal as the 'heavier-tail' candidate."""
        mean, std = 27_791.0, 6_254.0
        logn = Lognormal.from_moments(mean, std)
        gam = Gamma.from_moments(mean, std)
        x_far = mean + 8 * std
        assert logn.sf(x_far) > gam.sf(x_far)


class TestPareto:
    def test_paper_cdf_formula(self):
        """Paper eq. 16: F(x) = 1 - (k/x)^a."""
        d = Pareto(2.0, 3.0)
        x = np.array([2.5, 4.0, 10.0])
        np.testing.assert_allclose(d.cdf(x), 1.0 - (2.0 / x) ** 3.0)

    def test_support_starts_at_k(self):
        d = Pareto(5.0, 2.0)
        assert d.cdf(5.0) == 0.0
        assert d.pdf(4.999) == 0.0
        assert d.sf(4.0) == 1.0

    def test_loglog_ccdf_is_straight_line(self):
        """The defining property exploited in Fig. 4."""
        d = Pareto(1.0, 2.5)
        x = np.geomspace(1.5, 1000, 50)
        log_sf = np.log(d.sf(x))
        slopes = np.diff(log_sf) / np.diff(np.log(x))
        np.testing.assert_allclose(slopes, -2.5, rtol=1e-9)

    def test_ppf_inverts_cdf(self):
        d = Pareto(3.0, 1.5)
        q = np.linspace(0.0, 0.999, 40)
        np.testing.assert_allclose(d.cdf(d.ppf(q)), q, atol=1e-10)

    def test_infinite_mean_when_a_below_one(self):
        assert Pareto(1.0, 0.9).mean() == float("inf")

    def test_infinite_variance_when_a_below_two(self):
        assert Pareto(1.0, 1.5).var() == float("inf")
        assert np.isfinite(Pareto(1.0, 2.5).var())

    def test_finite_moments(self):
        d = Pareto(2.0, 3.0)
        assert d.mean() == pytest.approx(3.0)

    def test_hill_estimator_fit(self, rng):
        d = Pareto(1.0, 2.0)
        data = d.sample(100_000, rng=rng)
        fitted = Pareto.fit(data, k=1.0)
        assert fitted.a == pytest.approx(2.0, rel=0.03)

    def test_fit_rejects_data_below_k(self):
        with pytest.raises(ValueError):
            Pareto.fit(np.array([0.5, 2.0, 3.0]), k=1.0)

    def test_pdf_integrates_to_one(self):
        d = Pareto(1.0, 2.0)
        x = np.geomspace(1.0, 1e6, 400001)
        assert np.trapezoid(d.pdf(x), x) == pytest.approx(1.0, abs=1e-3)


@settings(max_examples=50, deadline=None)
@given(
    mean=st.floats(min_value=1.0, max_value=1e6),
    cov=st.floats(min_value=0.05, max_value=2.0),
    q=st.floats(min_value=1e-6, max_value=1.0 - 1e-6),
)
def test_gamma_ppf_cdf_roundtrip_property(mean, cov, q):
    """Property: CDF(PPF(q)) == q for any valid Gamma parameterization."""
    d = Gamma.from_moments(mean, mean * cov)
    assert d.cdf(d.ppf(q)) == pytest.approx(q, abs=1e-6)


@settings(max_examples=50, deadline=None)
@given(
    k=st.floats(min_value=0.01, max_value=1e4),
    a=st.floats(min_value=0.1, max_value=50.0),
    q=st.floats(min_value=0.0, max_value=1.0 - 1e-9),
)
def test_pareto_ppf_cdf_roundtrip_property(k, a, q):
    """Property: CDF(PPF(q)) == q across the Pareto parameter space."""
    d = Pareto(k, a)
    assert d.cdf(d.ppf(q)) == pytest.approx(q, abs=1e-9)
