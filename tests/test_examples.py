"""Smoke tests: every example script runs end-to-end.

Each example is executed as a subprocess (the way a user runs it) at a
reduced problem size where the script accepts one, and its output is
checked for the landmark lines a reader would look for.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def run_example(name, *args, timeout=240):
    """Run one example script; returns its stdout (asserts exit 0)."""
    path = os.path.join(EXAMPLES_DIR, name)
    result = subprocess.run(
        [sys.executable, path, *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Fitted model" in out
        assert "Capacity planning" in out
        assert "peak-to-mean gap" in out

    def test_analyze_trace(self):
        out = run_example("analyze_trace.py", "--frames", "8000")
        assert "Hurst parameter" in out
        assert "Right-tail fit" in out
        assert "long-range dependent" in out

    def test_capacity_planning(self):
        out = run_example("capacity_planning.py", "--frames", "8000")
        assert "Q-C operating points" in out
        assert "Statistical multiplexing gain" in out

    def test_codec_demo(self):
        out = run_example("codec_demo.py", "--frames", "6", "--height", "48", "--width", "64")
        assert "Per-frame coding results" in out
        assert "PSNR" in out

    def test_model_validation(self):
        out = run_example("model_validation.py", "--frames", "6000")
        assert "full model" in out
        assert "Verdict" in out

    def test_layered_transport(self):
        out = run_example("layered_transport.py")
        assert "base-layer loss" in out
        assert "priority" in out

    def test_mpeg_analysis(self):
        out = run_example("mpeg_analysis.py", "--frames", "6000")
        assert "GOP spectral line" in out
        assert "Hurst parameter" in out

    def test_streaming_demo(self):
        out = run_example("streaming_demo.py", "--samples", "300000")
        assert "One-pass marginal statistics" in out
        assert "Streaming variance-time Hurst estimate" in out
        assert "loss rate" in out
        assert "traced allocation peak" in out

    def test_estimator_comparison(self):
        out = run_example("estimator_comparison.py", "--frames", "8000")
        assert "true H = 0.800" in out
        assert "strongly LRD" in out

    def test_observed_run(self, tmp_path):
        run_json = tmp_path / "run.json"
        out = run_example("observed_run.py", "--samples", "200000",
                          "--out", str(run_json))
        assert "drained 200,000 samples" in out
        assert 'repro_stream_samples_total{stage="source"} = 200000' in out
        assert 'repro_stream_samples_total{stage="transform"} = 200000' in out
        assert "schema=repro-run/1" in out
        assert run_json.exists()

    def test_parallel_sweep(self):
        out = run_example("parallel_sweep.py", "--frames", "8000",
                          "--samples", "100000", "--workers", "2")
        assert "bit-identical" in out
        assert "pool tasks merged back into the parent registry" in out
        assert "cached == uncached bit-for-bit" in out

    def test_tandem_queue(self):
        out = run_example("tandem_queue.py", "--frames", "1500")
        assert "bit-for-bit" in out
        assert "3-hop tandem" in out
        assert "priority and wfq shield the video class" in out
        assert "identical results" in out

    def test_fleet_allocation(self):
        out = run_example("fleet_allocation.py", "--users", "16",
                          "--epochs", "8")
        assert "allocator comparison" in out
        assert "conserved exactly" in out
        assert "digest-identical" in out

    def test_resilient_campaign(self):
        out = run_example("resilient_campaign.py")
        assert "killed" in out
        assert "resumed from digest-verified checkpoints" in out
        assert "25/25 experiments completed" in out
        assert "matches the injected fault plan exactly" in out

    def test_distributed_campaign(self):
        out = run_example("distributed_campaign.py", "--tasks", "6")
        assert "node n1 killed mid-campaign" in out
        assert "reassigned to survivors" in out
        assert "degraded to local serial execution" in out
        assert "loaded from digest-verified checkpoints" in out
        assert "All fault scenarios produced bit-identical results." in out
