"""Tests for the analysis figure experiments (Figs. 1-12)."""

import numpy as np
import pytest

from repro.experiments import (
    fig01_timeseries,
    fig02_lowfreq,
    fig03_segments,
    fig04_ccdf,
    fig05_lefttail,
    fig06_density,
    fig07_acf,
    fig08_periodogram,
    fig09_confidence,
    fig10_selfsimilar,
    fig11_variance_time,
    fig12_pox,
)


class TestFig01:
    def test_envelopes_ordered(self, small_trace):
        r = fig01_timeseries.run(small_trace)
        assert np.all(r["low"] <= r["mean"])
        assert np.all(r["mean"] <= r["high"])

    def test_time_axis_spans_duration(self, small_trace):
        r = fig01_timeseries.run(small_trace)
        assert r["time_minutes"][-1] <= r["duration_minutes"]
        assert r["time_minutes"][0] >= 0

    def test_peaks_reported(self, small_trace):
        r = fig01_timeseries.run(small_trace)
        assert 1 <= len(r["peak_minutes"]) <= 5
        assert np.all(r["peak_values"] > np.mean(r["mean"]))


class TestFig02:
    def test_moving_average_smoother_than_raw(self, small_trace):
        r = fig02_lowfreq.run(small_trace)
        assert np.std(r["moving_average"]) < np.std(small_trace.frame_bytes)

    def test_visible_low_frequency_content(self, small_trace):
        """The excursion of the filtered series is substantial -- the
        qualitative content of Fig. 2."""
        r = fig02_lowfreq.run(small_trace)
        assert r["relative_excursion"] > 0.02

    def test_window_respected(self, small_trace):
        r = fig02_lowfreq.run(small_trace, window=1000)
        assert r["window"] == 1000
        assert r["moving_average"].size == small_trace.n_frames - 999


class TestFig03:
    def test_five_segments(self, small_trace):
        r = fig03_segments.run(small_trace)
        assert len(r["segments"]) == 5
        assert r["segment_means"].size == 5

    def test_segment_means_vary_beyond_iid(self, small_trace):
        """The non-stationarity illusion: some segment means deviate by
        many i.i.d. standard errors."""
        r = fig03_segments.run(small_trace)
        assert np.max(r["mean_deviation_sigmas"]) > 3.0


class TestFig04:
    def test_pareto_matches_tail_best(self, small_trace):
        r = fig04_ccdf.run(small_trace)
        dev = r["tail_deviation"]
        assert dev["pareto"] < dev["normal"]
        assert dev["pareto"] < dev["lognormal"]
        assert dev["gamma_pareto"] <= dev["gamma"]

    def test_normal_tail_worst_of_bells(self, small_trace):
        """Normal falls off too quickly (paper's observation)."""
        r = fig04_ccdf.run(small_trace)
        assert r["tail_deviation"]["normal"] > r["tail_deviation"]["gamma"]

    def test_ranking_sorted(self, small_trace):
        r = fig04_ccdf.run(small_trace)
        devs = [r["tail_deviation"][name] for name in r["ranking"]]
        assert devs == sorted(devs)

    def test_hybrid_wins(self, small_trace):
        r = fig04_ccdf.run(small_trace)
        assert r["ranking"][0] in ("gamma_pareto", "pareto")


class TestFig05:
    def test_gamma_adequate_on_left_tail(self, small_trace):
        r = fig05_lefttail.run(small_trace)
        assert r["left_tail_deviation"]["gamma"] < 0.5

    def test_hybrid_equals_gamma_on_left(self, small_trace):
        """Below the splice the hybrid IS the Gamma."""
        r = fig05_lefttail.run(small_trace)
        np.testing.assert_allclose(r["gamma_pareto"], r["gamma"], rtol=1e-6)


class TestFig06:
    def test_density_close(self, small_trace):
        r = fig06_density.run(small_trace)
        assert r["l1_discrepancy"] < 0.08

    def test_model_density_integrates(self, small_trace):
        r = fig06_density.run(small_trace)
        width = r["x"][1] - r["x"][0]
        assert np.sum(r["model_density"]) * width == pytest.approx(1.0, abs=0.05)


class TestFig07:
    def test_acf_shape(self, small_trace):
        r = fig07_acf.run(small_trace, max_lag=5_000)
        assert r["acf"][0] == pytest.approx(1.0)
        assert r["acf"].size == 5_001

    def test_exponential_fails_at_long_lags(self, small_trace):
        """The paper's key Fig. 7 observation."""
        r = fig07_acf.run(small_trace, max_lag=5_000)
        assert r["exp_underestimates_tail"] > 10.0

    def test_exponential_adequate_at_moderate_lags_only(self, small_trace):
        """The fitted exponential stays within a factor of a few of the
        ACF over its own fit window (lags ~20-100), but is off by
        orders of magnitude at lag 3000 -- the paper's contrast."""
        r = fig07_acf.run(small_trace, max_lag=5_000)
        ratio_100 = r["acf"][100] / r["exp_curve"][100]
        assert 0.1 < ratio_100 < 10.0
        assert r["exp_underestimates_tail"] > 10 * ratio_100


class TestFig08:
    def test_power_law_divergence(self, small_trace):
        r = fig08_periodogram.run(small_trace)
        assert r["alpha"] > 0.2  # omega^-alpha divergence at origin

    def test_implied_hurst_in_band(self, small_trace):
        r = fig08_periodogram.run(small_trace)
        assert 0.6 < r["hurst"] < 1.05

    def test_binned_spectrum_decreasing_trend(self, small_trace):
        r = fig08_periodogram.run(small_trace)
        assert r["intensity"][0] > r["intensity"][-1]


class TestFig09:
    def test_iid_coverage_poor(self, small_trace):
        r = fig09_confidence.run(small_trace)
        assert r["iid_coverage"] < r["lrd_coverage"] + 1e-9
        assert r["iid_coverage"] < 0.7

    def test_hurst_default_from_trace(self, small_trace):
        r = fig09_confidence.run(small_trace)
        assert 0.55 <= r["hurst"] <= 0.95


class TestFig10:
    def test_significant_correlations_survive_aggregation(self, small_trace):
        r = fig10_selfsimilar.run(small_trace, block_sizes=(10, 50, 100), acf_lags=10)
        assert r["levels"][10]["significant_lags"] >= 3
        assert r["levels"][50]["significant_lags"] >= 1

    def test_aggregated_series_lengths(self, small_trace):
        r = fig10_selfsimilar.run(small_trace, block_sizes=(10, 100), acf_lags=5)
        assert r["levels"][10]["series"].size == small_trace.n_frames // 10

    def test_iid_control_loses_correlations(self):
        """Contrast: aggregating i.i.d. data kills all correlation."""
        from repro.video.trace import VBRTrace

        iid = VBRTrace(np.random.default_rng(1).gamma(20.0, 1000.0, size=100_000))
        r = fig10_selfsimilar.run(iid, block_sizes=(100,), acf_lags=10)
        # 95% band: expect ~0.5 false positives over 10 lags; allow 2.
        assert r["levels"][100]["significant_lags"] <= 2


class TestFig11And12:
    def test_variance_time_in_band(self, small_trace):
        r = fig11_variance_time.run(small_trace)
        assert 0.70 < r["hurst"] < 0.95
        assert r["beta"] == pytest.approx(2 - 2 * r["hurst"], abs=1e-9)

    def test_pox_in_band(self, small_trace):
        r = fig12_pox.run(small_trace)
        assert 0.70 < r["hurst"] < 0.95
        assert r["srd_reference_slope"] == 0.5

    def test_consistent_with_each_other(self, small_trace):
        h1 = fig11_variance_time.run(small_trace)["hurst"]
        h2 = fig12_pox.run(small_trace)["hurst"]
        assert abs(h1 - h2) < 0.15
