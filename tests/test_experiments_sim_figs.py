"""Tests for the simulation figure experiments (Figs. 14-17)."""

import numpy as np
import pytest

from repro.experiments import fig14_qc, fig15_smg, fig16_model_vs_trace, fig17_loss_process


@pytest.fixture(scope="module")
def qc_result(small_trace):
    return fig14_qc.run(
        small_trace,
        n_sources=(1, 5),
        specs=(("overall", 0.0), ("overall", 1e-3)),
        n_frames=8_000,
        n_points=6,
    )


class TestFig14:
    def test_all_curves_present(self, qc_result):
        assert len(qc_result["curves"]) == 4
        assert (1, "overall", 0.0) in qc_result["curves"]

    def test_knee_exists_on_every_curve(self, qc_result):
        for key, (cap_mbps, tmax) in qc_result["knees"].items():
            assert cap_mbps > 0
            assert tmax >= 0

    def test_zero_loss_needs_more_delay_at_same_capacity(self, qc_result):
        """Vertical ordering: P_l=0 above P_l=1e-3 (same capacities)."""
        strict = qc_result["curves"][(1, "overall", 0.0)]
        loose = qc_result["curves"][(1, "overall", 1e-3)]
        np.testing.assert_allclose(strict.capacity_per_source, loose.capacity_per_source)
        assert np.all(strict.tmax_ms >= loose.tmax_ms - 1e-9)

    def test_insensitive_to_buffer_until_knee(self, qc_result):
        """The paper: 'bandwidth requirement is quite insensitive to
        the buffer size until the buffer delay is decreased to a few
        milliseconds' -- i.e. the delay axis spans orders of magnitude
        over a modest capacity range."""
        curve = qc_result["curves"][(1, "overall", 0.0)]
        positive = curve.tmax_ms[curve.tmax_ms > 0]
        assert positive.max() / max(positive.min(), 1e-6) > 100

    def test_wes_and_overall_same_family(self, small_trace):
        """The two QOS specs produce nested curves of the same shape
        (the paper's equivalence argument)."""
        r = fig14_qc.run(
            small_trace,
            n_sources=(1,),
            specs=(("overall", 1e-3), ("wes", 1e-2)),
            n_frames=6_000,
            n_points=5,
        )
        overall = r["curves"][(1, "overall", 1e-3)]
        wes = r["curves"][(1, "wes", 1e-2)]
        # Both decay monotonically in capacity.
        assert np.all(np.diff(overall.tmax_ms) <= 1e-9)
        assert np.all(np.diff(wes.tmax_ms) <= 1e-9)


class TestFig15:
    @pytest.fixture(scope="class")
    def smg(self, small_trace):
        return fig15_smg.run(
            small_trace, n_values=(1, 2, 5, 20), loss_targets=(0.0, 1e-3), n_frames=8_000
        )

    def test_capacity_monotone_in_n(self, smg):
        for target, result in smg["curves"].items():
            caps = result["capacity_per_source"]
            assert np.all(np.diff(caps) < 1e-9), target

    def test_n1_near_peak_n20_near_mean(self, smg):
        zero = smg["curves"][0.0]
        caps = zero["capacity_per_source"]
        assert caps[0] > 0.75 * zero["peak_rate"]
        assert caps[-1] < zero["mean_rate"] * 1.35

    def test_substantial_gain_at_5(self, smg):
        assert smg["mean_gain_at_5"] > 0.5

    def test_lossy_below_lossless(self, smg):
        strict = smg["curves"][0.0]["capacity_per_source"]
        loose = smg["curves"][1e-3]["capacity_per_source"]
        assert np.all(loose <= strict + 1e-9)


class TestFig16:
    @pytest.fixture(scope="class")
    def comparison(self, small_trace):
        return fig16_model_vs_trace.run(
            small_trace, n_sources=(1, 5), n_frames=8_000, n_buffers=5, seed=3
        )

    def test_all_sources_present(self, comparison):
        for n in (1, 5):
            assert set(comparison["curves"][n]) == {
                "trace",
                "full-model",
                "gaussian-farima",
                "iid-gamma-pareto",
            }

    def test_full_model_closest_to_trace(self, comparison):
        """The paper's central model-validation claim."""
        offsets = comparison["offsets"][1]
        assert offsets["full-model"] <= offsets["gaussian-farima"]
        assert offsets["full-model"] <= offsets["iid-gamma-pareto"] + 0.05

    def test_agreement_improves_with_n(self, comparison):
        """As N grows the models converge toward the trace."""
        assert (
            comparison["offsets"][5]["full-model"]
            <= comparison["offsets"][1]["full-model"] + 0.05
        )

    def test_capacity_curves_decreasing_in_buffer(self, comparison):
        for n, per_n in comparison["curves"].items():
            for name, caps in per_n.items():
                assert np.all(np.diff(caps) <= 1e-9), (n, name)

    def test_fitted_model_reasonable(self, comparison):
        model = comparison["model"]
        assert 0.6 < model.hurst < 0.95
        assert model.mu_gamma == pytest.approx(27_791, rel=0.05)


class TestFig17:
    @pytest.fixture(scope="class")
    def processes(self, small_trace):
        return fig17_loss_process.run(small_trace, n_sources=(1, 20), n_frames=10_000)

    def test_overall_loss_near_target(self, processes):
        for n, p in processes["processes"].items():
            assert p["overall_loss"] <= processes["target_loss"] * 1.5
            assert p["overall_loss"] > 0

    def test_single_source_losses_concentrated(self, processes):
        """The paper's Fig. 17 contrast: same P_l, very different
        error processes."""
        p1 = processes["processes"][1]
        p20 = processes["processes"][20]
        assert p1["concentration"] > p20["concentration"]

    def test_loss_rate_series_shapes(self, processes):
        p = processes["processes"][1]
        assert p["time_minutes"].size == p["loss_rate"].size
        assert np.all(p["loss_rate"] >= 0)

    def test_multiplexed_needs_less_capacity(self, processes):
        p1 = processes["processes"][1]
        p20 = processes["processes"][20]
        assert p20["capacity_per_source"] < p1["capacity_per_source"]
