"""Tests for the Table 1-3 experiment modules."""

import numpy as np
import pytest

from repro.experiments import table1, table2, table3


class TestTable1:
    def test_trace_level_values(self, small_trace):
        result = table1.run(small_trace)
        assert result["avg_bandwidth_mbps"] == pytest.approx(5.34, rel=0.01)
        assert result["avg_compression_ratio"] == pytest.approx(8.70, rel=0.01)
        assert result["frame_rate"] == 24.0
        assert result["slices_per_frame"] == 30

    def test_paper_reference_attached(self, small_trace):
        result = table1.run(small_trace)
        assert result["paper"]["video_frames"] == 171_000

    def test_codec_run(self):
        result = table1.run_codec(n_frames=4, height=48, width=64)
        assert result["n_frames"] == 4
        assert result["avg_compression_ratio"] > 1.0
        assert result["trace"].has_slice_data

    def test_codec_quant_step_controls_rate(self):
        fine = table1.run_codec(n_frames=2, height=48, width=64, quant_step=4.0)
        coarse = table1.run_codec(n_frames=2, height=48, width=64, quant_step=64.0)
        assert coarse["mean_bytes_per_frame"] < fine["mean_bytes_per_frame"]


class TestTable2:
    def test_frame_statistics_close_to_paper(self, small_trace):
        result = table2.run(small_trace)
        frame = result["frame"]
        paper = result["paper"]["frame"]
        assert frame.mean == pytest.approx(paper["mean"], rel=0.01)
        assert frame.std == pytest.approx(paper["std"], rel=0.02)
        assert frame.coefficient_of_variation == pytest.approx(
            paper["coefficient_of_variation"], abs=0.01
        )

    def test_slice_statistics_close_to_paper(self, small_trace):
        result = table2.run(small_trace)
        sl = result["slice"]
        paper = result["paper"]["slice"]
        assert sl.mean == pytest.approx(paper["mean"], rel=0.01)
        assert sl.coefficient_of_variation == pytest.approx(
            paper["coefficient_of_variation"], abs=0.03
        )

    def test_time_units(self, small_trace):
        result = table2.run(small_trace)
        assert result["frame"].time_unit_ms == pytest.approx(41.67, abs=0.01)
        assert result["slice"].time_unit_ms == pytest.approx(1.389, abs=0.001)


class TestTable3:
    def test_all_estimates_in_band(self, small_trace):
        result = table3.run(small_trace)
        assert 0.70 < result["variance_time"] < 0.95
        assert 0.70 < result["rs"] < 0.95
        assert 0.70 < result["rs_aggregated"] < 0.98
        low, high = result["rs_varied"]
        assert low <= high
        assert 0.65 < low and high < 1.0

    def test_whittle_result_has_ci(self, small_trace):
        result = table3.run(small_trace)
        w = result["whittle"]
        assert w.ci_low < w.hurst < w.ci_high

    def test_estimates_mutually_consistent(self, small_trace):
        """Paper: all estimates fall well within Whittle's CI band.
        We allow a slightly wider engineering band at reduced length."""
        result = table3.run(small_trace)
        estimates = [result["variance_time"], result["rs"], result["rs_aggregated"]]
        assert max(estimates) - min(estimates) < 0.2

    def test_paper_reference(self, small_trace):
        result = table3.run(small_trace)
        assert result["paper"]["whittle"] == 0.80
