"""Tests for empirical CDF helpers and the tail-slope estimator."""

import numpy as np
import pytest

from repro.distributions import Pareto
from repro.distributions.fitting import (
    empirical_ccdf,
    empirical_cdf,
    fit_all_candidates,
    fit_pareto_tail_slope,
)


class TestEmpiricalCurves:
    def test_cdf_values(self):
        x, f = empirical_cdf([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(x, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(f, [1 / 3, 2 / 3, 1.0])

    def test_ccdf_values(self):
        x, s = empirical_ccdf([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(x, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(s, [2 / 3, 1 / 3, 0.0])

    def test_cdf_ccdf_complement(self):
        data = np.random.default_rng(0).uniform(size=100)
        x1, f = empirical_cdf(data)
        x2, s = empirical_ccdf(data)
        np.testing.assert_array_equal(x1, x2)
        np.testing.assert_allclose(f + s, 1.0)


class TestTailSlope:
    def test_recovers_pareto_shape(self, rng):
        data = Pareto(1.0, 3.0).sample(100_000, rng=rng)
        a = fit_pareto_tail_slope(data, tail_fraction=0.05)
        assert a == pytest.approx(3.0, rel=0.15)

    def test_exponential_tail_reads_steep(self, rng):
        """An exponential tail is 'infinitely steep' on log-log axes;
        the estimator should return a much larger slope than for a
        comparable Pareto."""
        expo = rng.exponential(1.0, size=100_000) + 1.0
        a_exp = fit_pareto_tail_slope(expo, tail_fraction=0.02)
        pareto = Pareto(1.0, 3.0).sample(100_000, rng=rng)
        a_par = fit_pareto_tail_slope(pareto, tail_fraction=0.02)
        assert a_exp > 2.0 * a_par

    def test_rejects_nonpositive_data(self):
        with pytest.raises(ValueError):
            fit_pareto_tail_slope(np.linspace(-1, 10, 200))

    def test_rejects_bad_fraction(self):
        data = np.random.default_rng(1).pareto(2.0, 1000) + 1
        with pytest.raises(ValueError):
            fit_pareto_tail_slope(data, tail_fraction=1.5)

    def test_rejects_whole_sample_tail(self):
        data = np.random.default_rng(1).pareto(2.0, 100) + 1
        with pytest.raises(ValueError):
            fit_pareto_tail_slope(data, tail_fraction=0.999, min_points=100)


class TestFitAllCandidates:
    def test_returns_all_models(self, small_series):
        models = fit_all_candidates(small_series)
        assert set(models) == {"normal", "gamma", "lognormal", "pareto", "gamma_pareto"}

    def test_pareto_line_passes_through_hybrid_tail(self, small_series):
        """The standalone Pareto must coincide with the hybrid's tail
        (it is the straight reference line of Fig. 4)."""
        models = fit_all_candidates(small_series)
        hybrid = models["gamma_pareto"]
        pareto = models["pareto"]
        x = np.geomspace(hybrid.x_th * 1.05, hybrid.x_th * 3, 10)
        np.testing.assert_allclose(pareto.sf(x), hybrid.sf(x), rtol=1e-9)

    def test_moment_fits_match_sample(self, small_series):
        models = fit_all_candidates(small_series)
        assert models["normal"].mu == pytest.approx(float(np.mean(small_series)))
        assert models["gamma"].mean() == pytest.approx(float(np.mean(small_series)), rel=1e-9)
