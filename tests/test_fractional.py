"""Tests for fractional differencing math (Section 4.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import special

from repro.core.fractional import (
    d_from_hurst,
    farima_acf,
    fgn_acf,
    fractional_binomial_weights,
    hurst_from_d,
)


class TestParameterMaps:
    def test_d_from_hurst(self):
        assert d_from_hurst(0.8) == pytest.approx(0.3)
        assert d_from_hurst(0.5) == pytest.approx(0.0)

    def test_roundtrip(self):
        for h in (0.55, 0.7, 0.9):
            assert hurst_from_d(d_from_hurst(h)) == pytest.approx(h)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            d_from_hurst(1.0)
        with pytest.raises(ValueError):
            hurst_from_d(0.5)


class TestFarimaACF:
    def test_lag_zero_is_one(self):
        assert farima_acf(0.3, 0)[0] == 1.0

    def test_matches_gamma_formula(self):
        """Eq. 6 equals Gamma(1-d)Gamma(k+d) / (Gamma(d)Gamma(k+1-d))."""
        d = 0.3
        acf = farima_acf(d, 50)
        k = np.arange(1, 51, dtype=float)
        expected = np.exp(
            special.gammaln(1 - d)
            + special.gammaln(k + d)
            - special.gammaln(d)
            - special.gammaln(k + 1 - d)
        )
        np.testing.assert_allclose(acf[1:], expected, rtol=1e-10)

    def test_first_lag_value(self):
        """rho_1 = d / (1 - d) from the product formula."""
        d = 0.25
        assert farima_acf(d, 1)[1] == pytest.approx(d / (1 - d))

    def test_hyperbolic_decay_rate(self):
        """rho_k ~ k^(2d-1): the log-log slope converges to 2d - 1."""
        d = 0.3
        acf = farima_acf(d, 10_000)
        k1, k2 = 1_000, 10_000
        slope = np.log(acf[k2] / acf[k1]) / np.log(k2 / k1)
        assert slope == pytest.approx(2 * d - 1, abs=0.01)

    def test_positive_for_positive_d(self):
        assert np.all(farima_acf(0.4, 200) > 0)

    def test_negative_d_gives_negative_correlations(self):
        acf = farima_acf(-0.3, 10)
        assert acf[1] < 0

    def test_zero_d_is_white_noise(self):
        acf = farima_acf(0.0, 4)
        np.testing.assert_allclose(acf, [1, 0, 0, 0, 0], atol=1e-15)

    def test_not_summable_for_lrd(self):
        """LRD definition (i): the ACF sum diverges -- partial sums keep
        growing with the horizon."""
        d = 0.3
        s1 = farima_acf(d, 1_000).sum()
        s2 = farima_acf(d, 10_000).sum()
        assert s2 > 1.5 * s1


class TestFGNACF:
    def test_lag_zero_is_variance(self):
        assert fgn_acf(0.8, 5, variance=2.5)[0] == pytest.approx(2.5)

    def test_h_half_is_white_noise(self):
        acf = fgn_acf(0.5, 10)
        np.testing.assert_allclose(acf[1:], 0.0, atol=1e-12)

    def test_positive_correlations_for_persistent(self):
        assert np.all(fgn_acf(0.8, 100)[1:] > 0)

    def test_negative_correlations_for_antipersistent(self):
        assert fgn_acf(0.3, 10)[1] < 0

    def test_hyperbolic_decay(self):
        """gamma(k) ~ H(2H-1) k^(2H-2) for large k."""
        h = 0.8
        acf = fgn_acf(h, 10_000)
        k = 5_000
        expected = h * (2 * h - 1) * k ** (2 * h - 2)
        assert acf[k] == pytest.approx(expected, rel=1e-3)

    def test_aggregation_invariance(self):
        """FGN is exactly self-similar: the ACF of the aggregated
        process equals the original ACF (the Section 3.2.2 definition).
        Verified through the variance identity
        Var(X^(m)) = sigma^2 m^(2H-2)."""
        h = 0.75
        m = 8
        gamma = fgn_acf(h, m)
        # Var of the block mean from the covariances:
        weights = m - np.abs(np.arange(-m + 1, m))
        var_mean = np.sum(weights * fgn_acf(h, m - 1)[np.abs(np.arange(-m + 1, m))]) / m**2
        assert var_mean == pytest.approx(m ** (2 * h - 2), rel=1e-10)
        assert gamma[0] == pytest.approx(1.0)


class TestFractionalWeights:
    def test_first_weight_is_one(self):
        assert fractional_binomial_weights(0.3, 5)[0] == 1.0

    def test_second_weight_is_minus_d(self):
        """binom(d,1)(-1) = -d."""
        assert fractional_binomial_weights(0.3, 5)[1] == pytest.approx(-0.3)

    def test_matches_recursion(self):
        """w_i = w_{i-1} * (i - 1 - d) / i."""
        d = 0.4
        w = fractional_binomial_weights(d, 20)
        for i in range(2, 20):
            assert w[i] == pytest.approx(w[i - 1] * (i - 1 - d) / i, rel=1e-10)

    def test_zero_d_identity_operator(self):
        w = fractional_binomial_weights(0.0, 6)
        np.testing.assert_allclose(w, [1, 0, 0, 0, 0, 0], atol=1e-15)

    def test_differencing_whitens_farima(self, rng):
        """Applying nabla^d to a fARIMA(0,d,0) path approximately
        recovers white noise -- the defining inverse relation."""
        from repro.core.hosking import hosking_farima

        d = 0.3
        x = hosking_farima(3000, hurst=0.5 + d, rng=rng)
        w = fractional_binomial_weights(d, 300)
        filtered = np.convolve(x, w, mode="valid")
        acf1 = np.corrcoef(filtered[:-1], filtered[1:])[0, 1]
        assert abs(acf1) < 0.08
        # The truncated (300-tap) operator loses a little variance in
        # the slowly decaying weight tail; ~0.9 is the expected level.
        assert 0.8 < np.std(filtered) < 1.1


@settings(max_examples=30, deadline=None)
@given(d=st.floats(min_value=-0.45, max_value=0.45))
def test_farima_acf_bounded_property(d):
    """Property: autocorrelations lie in [-1, 1] and start at 1."""
    acf = farima_acf(d, 100)
    assert acf[0] == 1.0
    assert np.all(np.abs(acf) <= 1.0 + 1e-12)


@settings(max_examples=30, deadline=None)
@given(h=st.floats(min_value=0.05, max_value=0.95))
def test_fgn_acf_psd_property(h):
    """Property: the FGN autocovariance is positive semi-definite (its
    circulant embedding has non-negative eigenvalues) -- exactly the
    condition the Davies-Harte generator relies on."""
    n = 64
    gamma = fgn_acf(h, n)
    row = np.concatenate((gamma, gamma[-2:0:-1]))
    eig = np.fft.fft(row).real
    assert eig.min() > -1e-9
