"""Tests for goodness-of-fit utilities and the CSV exporter."""

import os

import numpy as np
import pytest

from repro.distributions import Gamma, Normal, ks_statistic, qq_points, score_candidates
from repro.distributions.gof import chi_square_statistic
from repro.experiments.export import export_all, write_csv


class TestKS:
    def test_zero_for_own_quantiles(self):
        d = Normal(0.0, 1.0)
        sample = d.ppf((np.arange(1, 1001) - 0.5) / 1000)
        assert ks_statistic(sample, d) < 0.002

    def test_detects_wrong_model(self, rng):
        data = rng.normal(0.0, 1.0, size=5_000)
        good = ks_statistic(data, Normal(0.0, 1.0))
        bad = ks_statistic(data, Normal(1.0, 1.0))
        assert bad > 5 * good

    def test_bounded(self, rng):
        data = rng.uniform(size=100)
        assert 0.0 <= ks_statistic(data, Normal(0.0, 1.0)) <= 1.0


class TestChiSquare:
    def test_near_one_for_correct_model(self, rng):
        d = Gamma.from_moments(100.0, 20.0)
        data = d.sample(50_000, rng=rng)
        assert chi_square_statistic(data, d) < 2.5

    def test_large_for_wrong_model(self, rng):
        data = rng.normal(100.0, 20.0, size=20_000)
        wrong = Gamma.from_moments(150.0, 10.0)
        assert chi_square_statistic(data, wrong) > 10.0


class TestQQ:
    def test_identity_for_correct_model(self, rng):
        d = Normal(5.0, 2.0)
        data = d.sample(100_000, rng=rng)
        model_q, sample_q = qq_points(data, d, n_points=50)
        np.testing.assert_allclose(model_q, sample_q, atol=0.15)

    def test_shapes(self, rng):
        model_q, sample_q = qq_points(rng.uniform(size=100), Normal(0, 1), n_points=33)
        assert model_q.shape == sample_q.shape == (33,)


class TestScoreboard:
    def test_hybrid_wins_on_trace(self, small_series):
        scores = score_candidates(small_series)
        assert set(scores) == {"normal", "gamma", "lognormal", "pareto", "gamma_pareto"}
        # The hybrid dominates on KS and the tail criterion.
        assert scores["gamma_pareto"].ks <= scores["normal"].ks
        assert scores["gamma_pareto"].tail_log_error < scores["normal"].tail_log_error

    def test_pareto_skips_body_scores(self, small_series):
        scores = score_candidates(small_series)
        assert np.isnan(scores["pareto"].ks)
        assert np.isfinite(scores["pareto"].tail_log_error)


class TestCSVExport:
    def test_write_csv_roundtrip(self, tmp_path):
        path = write_csv(tmp_path / "t.csv", {"a": [1.0, 2.0], "b": [3.0, 4.0]})
        lines = open(path).read().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,3"

    def test_write_csv_broadcasts_scalars(self, tmp_path):
        path = write_csv(tmp_path / "t.csv", {"x": [1.0, 2.0, 3.0], "c": 7.0})
        lines = open(path).read().splitlines()
        assert len(lines) == 4
        assert lines[3] == "3,7"

    def test_write_csv_rejects_ragged(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(tmp_path / "t.csv", {"a": [1.0, 2.0], "b": [1.0, 2.0, 3.0]})

    def test_export_all_quick_run(self, tmp_path, small_trace):
        from repro.experiments.runner import run_all

        results = run_all(trace=small_trace, quick=True, sim_frames=6_000)
        written = export_all(results, tmp_path / "csv")
        names = {os.path.basename(p) for p in written}
        # One file per analysis figure, several for the sim families.
        for expected in (
            "fig01_timeseries.csv", "fig04_ccdf.csv", "fig07_acf.csv",
            "fig11_variance_time.csv", "fig12_pox.csv",
        ):
            assert expected in names
        assert any(name.startswith("fig14_qc_") for name in names)
        assert any(name.startswith("fig16_model_vs_trace_") for name in names)
        # Every file is a parseable CSV with a header.
        for path in written:
            lines = open(path).read().splitlines()
            assert len(lines) >= 2
            assert "," in lines[0] or lines[0]

    def test_export_partial_results(self, tmp_path):
        written = export_all({}, tmp_path / "empty")
        assert written == []
