"""Golden-stats digests for every experiment module.

Each ``fig*``/``table*`` experiment runs on the shared 20,000-frame
reference trace (with reduced simulation workloads) and its result is
summarized into ``tests/golden/<name>.json``.  The tests certify that
a refactor leaves every experiment's statistics bit-stable without
re-deriving a single plot; after an *intended* change, regenerate with
``pytest --update-golden`` and review the digest diff like code.
"""

import pkgutil

import pytest

import repro.experiments
from repro.experiments import (
    fig01_timeseries,
    fig02_lowfreq,
    fig03_segments,
    fig04_ccdf,
    fig05_lefttail,
    fig06_density,
    fig07_acf,
    fig08_periodogram,
    fig09_confidence,
    fig10_selfsimilar,
    fig11_variance_time,
    fig12_pox,
    fig13_system,
    fig14_qc,
    fig15_smg,
    fig16_model_vs_trace,
    fig17_loss_process,
    fig_alloc_compare,
    fig_alloc_smg,
    fig_net_hurst_hops,
    fig_net_tandem,
    table1,
    table2,
    table3,
)

# name -> callable(trace).  Simulation figures get reduced workloads
# (8,000 frames, fewer curve points) so the golden gate stays fast;
# analysis figures run at their defaults on the 20,000-frame trace.
EXPERIMENTS = {
    "table1": lambda t: table1.run(t),
    "table2": lambda t: table2.run(t),
    "table3": lambda t: table3.run(t),
    "fig01_timeseries": lambda t: fig01_timeseries.run(t),
    "fig02_lowfreq": lambda t: fig02_lowfreq.run(t),
    "fig03_segments": lambda t: fig03_segments.run(t),
    "fig04_ccdf": lambda t: fig04_ccdf.run(t),
    "fig05_lefttail": lambda t: fig05_lefttail.run(t),
    "fig06_density": lambda t: fig06_density.run(t),
    "fig07_acf": lambda t: fig07_acf.run(t),
    "fig08_periodogram": lambda t: fig08_periodogram.run(t),
    "fig09_confidence": lambda t: fig09_confidence.run(t),
    "fig10_selfsimilar": lambda t: fig10_selfsimilar.run(t),
    "fig11_variance_time": lambda t: fig11_variance_time.run(t),
    "fig12_pox": lambda t: fig12_pox.run(t),
    "fig13_system": lambda t: fig13_system.run(t, n_frames=8_000),
    "fig14_qc": lambda t: fig14_qc.run(
        t,
        n_sources=(1, 5),
        specs=(("overall", 0.0), ("overall", 1e-3)),
        n_frames=8_000,
        n_points=6,
    ),
    "fig15_smg": lambda t: fig15_smg.run(
        t, n_values=(1, 2, 5), loss_targets=(0.0, 1e-3), n_frames=8_000
    ),
    "fig16_model_vs_trace": lambda t: fig16_model_vs_trace.run(
        t, n_sources=(1, 5), n_frames=8_000, n_buffers=6
    ),
    "fig17_loss_process": lambda t: fig17_loss_process.run(t, n_frames=8_000),
    "fig_net_tandem": lambda t: fig_net_tandem.run(t, n_frames=3_000, n_points=4),
    "fig_net_hurst_hops": lambda t: fig_net_hurst_hops.run(t, n_frames=6_000),
    "fig_alloc_compare": lambda t: fig_alloc_compare.run(
        t, n_users=24, epoch_slots=80, n_epochs=16
    ),
    "fig_alloc_smg": lambda t: fig_alloc_smg.run(
        t, n_users=8, epoch_lengths=(30, 60), total_slots=600
    ),
}


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_experiment_matches_golden(name, small_trace, golden):
    golden.check(name, EXPERIMENTS[name](small_trace))


def test_every_experiment_module_has_a_digest():
    """New fig*/table* modules must register a golden digest here."""
    modules = {
        m.name
        for m in pkgutil.iter_modules(repro.experiments.__path__)
        if m.name.startswith(("fig", "table"))
    }
    assert modules == set(EXPERIMENTS), (
        "experiment modules and golden digests disagree; add the new "
        "module to EXPERIMENTS and run pytest --update-golden"
    )


def test_digest_files_exist_and_current():
    """Every digest ships in the repo at the current schema version."""
    from repro.qa.golden import DIGEST_VERSION, GoldenStore
    from pathlib import Path

    store = GoldenStore(Path(__file__).parent / "golden")
    missing = [n for n in EXPERIMENTS if not store.path(n).exists()]
    assert not missing, f"missing golden digests: {missing}; run pytest --update-golden"
    for name in EXPERIMENTS:
        store.load(name)  # raises on schema-version drift
