"""Tests for the GPH estimator and the extension experiments."""

import numpy as np
import pytest

from repro.analysis.hurst import gph
from repro.experiments import ext_layered, ext_shaping, ext_whittle_agg


class TestGPH:
    def test_fgn_08(self, fgn_path):
        est = gph(fgn_path, normalize=None)
        assert est.hurst == pytest.approx(0.8, abs=0.12)

    def test_white_noise(self, rng):
        # Wider bandwidth (m = n^0.6) halves the GPH standard error.
        est = gph(rng.standard_normal(2**14), bandwidth_exponent=0.6, normalize=None)
        assert est.hurst == pytest.approx(0.5, abs=3 * est.std_error)

    def test_robust_to_marginal(self, fgn_path):
        est_raw = gph(fgn_path, normalize=None)
        est_exp = gph(np.exp(fgn_path), normalize="normal-scores")
        assert est_exp.hurst == pytest.approx(est_raw.hurst, abs=0.05)

    def test_robust_to_short_range_contamination(self, rng):
        """GPH only uses the lowest frequencies, so adding AR(1) noise
        must not move the estimate much (its selling point over the
        parametric Whittle)."""
        from repro.core.arma import ARMAProcess
        from repro.core.daviesharte import DaviesHarteGenerator

        lrd = DaviesHarteGenerator(0.8).generate(2**15, rng=rng)
        srd = ARMAProcess(ar=[0.7]).generate(2**15, rng=rng)
        contaminated = lrd + 0.5 * srd
        est = gph(contaminated, normalize=None)
        assert est.hurst == pytest.approx(0.8, abs=0.15)

    def test_bandwidth_controls_variance(self, fgn_path):
        narrow = gph(fgn_path, bandwidth_exponent=0.4, normalize=None)
        wide = gph(fgn_path, bandwidth_exponent=0.7, normalize=None)
        assert narrow.std_error > wide.std_error
        assert narrow.n_frequencies < wide.n_frequencies

    def test_rejects_bad_bandwidth(self, fgn_path):
        with pytest.raises(ValueError):
            gph(fgn_path, bandwidth_exponent=1.0)

    def test_reference_trace_in_band(self, small_series):
        est = gph(small_series)
        assert 0.65 < est.hurst < 1.05


class TestExtWhittleAgg:
    def test_structure(self, small_trace):
        result = ext_whittle_agg.run(small_trace)
        assert result["m"].size == result["hurst"].size
        assert np.all(result["ci_low"] <= result["hurst"])
        assert np.all(result["hurst"] <= result["ci_high"])

    def test_cis_widen_with_m(self, small_trace):
        result = ext_whittle_agg.run(small_trace)
        widths = result["ci_high"] - result["ci_low"]
        assert widths[-1] > widths[0]

    def test_headline_in_band(self, small_trace):
        result = ext_whittle_agg.run(small_trace)
        assert 0.6 < result["headline"]["hurst"] < 1.05


class TestExtShaping:
    def test_clipping_saves_capacity(self, small_trace):
        result = ext_shaping.run_clipping(small_trace, n_frames=15_000)
        for row in result["rows"]:
            assert row["capacity_saving"] >= -1e-9
            assert 0.0 <= row["clipped_fraction"] < 0.2
        # Deeper clipping saves more.
        savings = [row["capacity_saving"] for row in result["rows"]]
        assert savings == sorted(savings)

    def test_extreme_clip_quality_cost_tiny(self, small_trace):
        result = ext_shaping.run_clipping(
            small_trace, quantiles=(0.999,), n_frames=15_000
        )
        row = result["rows"][0]
        assert row["clipped_fraction"] < 0.01

    def test_cbr_comparison(self, small_trace):
        result = ext_shaping.run_cbr_comparison(small_trace, n_frames=15_000)
        delays = [row["delay_seconds"] for row in result["cbr"]]
        # Higher utilization -> more smoothing delay.
        assert delays == sorted(delays)
        # VBR reaches decent utilization with only 10 ms buffering.
        assert result["vbr"]["utilization"] > 0.4
        # CBR at 90% utilization pays orders of magnitude more delay
        # than the VBR network buffer.
        assert delays[-1] > 10 * result["vbr"]["buffer_delay_seconds"]


class TestExtLayered:
    def test_priority_protects_base(self, small_trace):
        result = ext_layered.run(small_trace, n_frames=15_000)
        assert result["fifo_loss_rate"] > 0
        assert result["priority_base_loss_rate"] <= result["fifo_loss_rate"]
        assert result["protection_factor"] > 5.0

    def test_overall_loss_comparable(self, small_trace):
        """Priorities redistribute loss; total stays comparable."""
        result = ext_layered.run(small_trace, n_frames=15_000)
        assert result["priority_overall_loss_rate"] == pytest.approx(
            result["fifo_loss_rate"], rel=0.3
        )


class TestExtModelZoo:
    @pytest.fixture(scope="class")
    def zoo(self, small_trace):
        from repro.experiments import ext_model_zoo

        return ext_model_zoo.run(small_trace, n_frames=15_000, n_buffers=5)

    def test_all_models_present(self, zoo):
        expected = {
            "full-model", "full-model-paxson", "composite", "gaussian-farima",
            "iid-gamma-pareto", "ar1", "dar1", "markov-fluid",
        }
        assert set(zoo["offsets"]) == expected

    def test_ranking_sorted(self, zoo):
        offs = [zoo["offsets"][n] for n in zoo["ranking"]]
        assert offs == sorted(offs)

    def test_both_feature_models_beat_gaussian_srd(self, zoo):
        assert zoo["offsets"]["composite"] < zoo["offsets"]["ar1"]
        assert zoo["offsets"]["full-model"] < zoo["offsets"]["ar1"] * 1.5

    def test_curves_decreasing_in_buffer(self, zoo):
        import numpy as np

        for name, curve in zoo["curves"].items():
            assert np.all(np.diff(curve) <= 1e-9), name
