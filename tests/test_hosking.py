"""Tests for Hosking's exact fARIMA(0, d, 0) generator (eqs. 7-12)."""

import numpy as np
import pytest

from repro.core.fractional import farima_acf
from repro.core.hosking import HoskingGenerator, hosking_farima


def sample_acf(x, max_lag):
    x = x - x.mean()
    denom = float(np.dot(x, x))
    return np.array(
        [1.0] + [float(np.dot(x[:-k], x[k:])) / denom for k in range(1, max_lag + 1)]
    )


class TestConstruction:
    def test_requires_exactly_one_parameter(self):
        with pytest.raises(ValueError):
            HoskingGenerator()
        with pytest.raises(ValueError):
            HoskingGenerator(hurst=0.8, d=0.3)

    def test_hurst_d_consistency(self):
        g = HoskingGenerator(hurst=0.8)
        assert g.d == pytest.approx(0.3)
        g2 = HoskingGenerator(d=0.3)
        assert g2.hurst == pytest.approx(0.8)

    def test_rejects_invalid_d(self):
        with pytest.raises(ValueError):
            HoskingGenerator(d=0.5)
        with pytest.raises(ValueError):
            HoskingGenerator(d=-0.5)

    def test_rejects_invalid_variance(self):
        with pytest.raises(ValueError):
            HoskingGenerator(hurst=0.8, variance=0.0)


class TestStatisticalProperties:
    def test_marginal_mean_and_variance(self, rng):
        x = HoskingGenerator(hurst=0.8).generate(6000, rng=rng)
        assert np.mean(x) == pytest.approx(0.0, abs=0.3)
        assert np.var(x) == pytest.approx(1.0, abs=0.15)

    def test_variance_parameter_respected(self, rng):
        x = HoskingGenerator(hurst=0.7, variance=4.0).generate(4000, rng=rng)
        assert np.var(x) == pytest.approx(4.0, rel=0.2)

    def test_sample_acf_matches_theory(self, rng):
        """The empirical ACF must track eq. 6 at short lags."""
        d = 0.3
        x = HoskingGenerator(d=d).generate(8000, rng=rng)
        theory = farima_acf(d, 10)
        measured = sample_acf(x, 10)
        np.testing.assert_allclose(measured, theory, atol=0.08)

    def test_white_noise_at_h_half(self, rng):
        x = HoskingGenerator(hurst=0.5).generate(5000, rng=rng)
        measured = sample_acf(x, 5)
        np.testing.assert_allclose(measured[1:], 0.0, atol=0.05)

    def test_antipersistent_first_lag(self, rng):
        x = HoskingGenerator(d=-0.3).generate(4000, rng=rng)
        assert sample_acf(x, 1)[1] < -0.2

    def test_hurst_recoverable(self, rng):
        from repro.analysis.hurst import whittle

        x = HoskingGenerator(hurst=0.8).generate(8192, rng=rng)
        est = whittle(x, normalize=None)
        assert est.ci_low - 0.02 <= 0.8 <= est.ci_high + 0.02

    def test_gaussian_marginals(self, rng):
        from scipy import stats

        x = HoskingGenerator(hurst=0.75).generate(4000, rng=rng)
        # Normalized sample should pass a loose normality check.
        z = (x - x.mean()) / x.std()
        _, p = stats.kstest(z, "norm")
        assert p > 0.01


class TestDeterminismAndStreaming:
    def test_reproducible_with_seeded_rng(self):
        a = HoskingGenerator(hurst=0.8).generate(500, rng=np.random.default_rng(5))
        b = HoskingGenerator(hurst=0.8).generate(500, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_streaming_matches_statistics(self, rng):
        g = HoskingGenerator(hurst=0.8)
        g.reset()
        xs = [g.next(rng) for _ in range(600)]
        assert len(g.generated) == 600
        assert np.var(xs) == pytest.approx(1.0, abs=0.35)

    def test_streaming_acf(self):
        rng = np.random.default_rng(17)
        g = HoskingGenerator(d=0.3)
        xs = np.array([g.next(rng) for _ in range(3000)])
        measured = sample_acf(xs, 3)
        theory = farima_acf(0.3, 3)
        np.testing.assert_allclose(measured, theory, atol=0.1)

    def test_generate_resets_state(self, rng):
        g = HoskingGenerator(hurst=0.7)
        g.generate(100, rng=rng)
        g.generate(50, rng=rng)
        assert len(g.generated) == 50

    def test_wrapper_function(self, rng):
        x = hosking_farima(200, hurst=0.8, rng=rng)
        assert x.shape == (200,)

    def test_rejects_bad_length(self, rng):
        with pytest.raises(ValueError):
            HoskingGenerator(hurst=0.8).generate(0, rng=rng)


class TestConditionalRecursion:
    def test_variance_sequence_decreasing(self):
        """v_k = (1 - phi_kk^2) v_{k-1} is non-increasing: conditioning
        on more history can only reduce the prediction variance."""
        rng = np.random.default_rng(3)
        g = HoskingGenerator(d=0.4)
        g.reset()
        variances = []
        for _ in range(50):
            g.next(rng)
            variances.append(g._v)
        assert all(b <= a + 1e-12 for a, b in zip(variances, variances[1:]))

    def test_first_partial_autocorrelation(self):
        """phi_11 = rho_1 = d / (1 - d)."""
        rng = np.random.default_rng(4)
        g = HoskingGenerator(d=0.3)
        g.reset()
        g.next(rng)
        g.next(rng)
        assert g._phi[0] == pytest.approx(0.3 / 0.7, rel=1e-10)


class TestExtend:
    """The resumable extend() API behind the streaming sources."""

    def test_extend_equals_generate(self):
        ref = HoskingGenerator(hurst=0.8).generate(400, rng=np.random.default_rng(17))
        g = HoskingGenerator(hurst=0.8)
        out = g.extend(400, rng=np.random.default_rng(17))
        np.testing.assert_array_equal(out, ref)

    def test_chunked_extend_byte_compatible(self):
        """Any chunking of extend() reproduces the batch draw exactly
        (the Gaussian stream split invariance of numpy generators)."""
        ref = HoskingGenerator(hurst=0.8).generate(500, rng=np.random.default_rng(23))
        for chunks in ([500], [1] * 10 + [490], [123, 77, 300], [499, 1]):
            g = HoskingGenerator(hurst=0.8)
            rng = np.random.default_rng(23)
            parts = [g.extend(k, rng=rng) for k in chunks]
            np.testing.assert_array_equal(np.concatenate(parts), ref)

    def test_extend_returns_only_new_samples(self):
        g = HoskingGenerator(hurst=0.8)
        rng = np.random.default_rng(5)
        a = g.extend(100, rng=rng)
        b = g.extend(50, rng=rng)
        assert a.shape == (100,)
        assert b.shape == (50,)
        assert g.n_generated == 150
        np.testing.assert_array_equal(g.generated[:100], a)
        np.testing.assert_array_equal(g.generated[100:], b)

    def test_extend_after_next(self):
        """next() and extend() share the same recursion state."""
        rng = np.random.default_rng(9)
        g = HoskingGenerator(hurst=0.8)
        g.reset()
        singles = [g.next(rng) for _ in range(30)]
        more = g.extend(20, rng=rng)
        assert g.n_generated == 50
        np.testing.assert_array_equal(g.generated[:30], singles)
        np.testing.assert_array_equal(g.generated[30:], more)

    def test_wrapper_byte_compatible_with_streaming(self):
        """hosking_farima stays the reference the stream sources hit."""
        ref = hosking_farima(300, hurst=0.75, rng=np.random.default_rng(31))
        g = HoskingGenerator(hurst=0.75)
        rng = np.random.default_rng(31)
        out = np.concatenate([g.extend(100, rng=rng) for _ in range(3)])
        np.testing.assert_array_equal(out, ref)

    def test_reset_clears_extend_state(self):
        g = HoskingGenerator(hurst=0.8)
        g.extend(50, rng=np.random.default_rng(1))
        g.reset()
        assert g.n_generated == 0
        again = g.extend(50, rng=np.random.default_rng(1))
        g2 = HoskingGenerator(hurst=0.8)
        np.testing.assert_array_equal(again, g2.extend(50, rng=np.random.default_rng(1)))

    def test_extend_rejects_bad_length(self):
        with pytest.raises(ValueError):
            HoskingGenerator(hurst=0.8).extend(0, rng=np.random.default_rng(0))
