"""Tests for the canonical Huffman coder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video.bitstream import BitReader, BitWriter
from repro.video.huffman import HuffmanCode


class TestCodeConstruction:
    def test_two_symbols_one_bit_each(self):
        code = HuffmanCode.from_frequencies({"a": 10, "b": 1})
        assert code.code_length("a") == 1
        assert code.code_length("b") == 1

    def test_skewed_frequencies_give_short_codes_to_common(self):
        code = HuffmanCode.from_frequencies({"a": 100, "b": 10, "c": 5, "d": 1})
        assert code.code_length("a") < code.code_length("d")

    def test_single_symbol_alphabet(self):
        code = HuffmanCode.from_frequencies({"only": 7})
        assert code.code_length("only") == 1

    def test_kraft_equality_for_optimal_code(self):
        """An optimal prefix code satisfies Kraft with equality."""
        freqs = {s: f for s, f in zip("abcdefg", [50, 30, 10, 5, 3, 1, 1])}
        code = HuffmanCode.from_frequencies(freqs)
        kraft = sum(2.0 ** -code.code_length(s) for s in freqs)
        assert kraft == pytest.approx(1.0)

    def test_prefix_free(self):
        freqs = {s: f for s, f in zip("abcdef", [20, 15, 10, 5, 3, 1])}
        code = HuffmanCode.from_frequencies(freqs)
        words = {}
        for s in freqs:
            c, length = code.codeword(s)
            words[s] = format(c, f"0{length}b")
        for s1, w1 in words.items():
            for s2, w2 in words.items():
                if s1 != s2:
                    assert not w2.startswith(w1)

    def test_mean_length_near_entropy(self, rng):
        """Huffman is within 1 bit of the entropy bound."""
        probs = np.array([0.4, 0.3, 0.15, 0.1, 0.05])
        freqs = {i: int(p * 10_000) for i, p in enumerate(probs)}
        code = HuffmanCode.from_frequencies(freqs)
        entropy = -np.sum(probs * np.log2(probs))
        mean_len = code.mean_code_length(freqs)
        assert entropy <= mean_len + 1e-9 < entropy + 1.0

    def test_deterministic_canonical_assignment(self):
        f = {"x": 3, "y": 3, "z": 1}
        a = HuffmanCode.from_frequencies(f)
        b = HuffmanCode.from_frequencies(f)
        for s in f:
            assert a.codeword(s) == b.codeword(s)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            HuffmanCode.from_frequencies({})

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            HuffmanCode.from_frequencies({"a": 0, "b": 2})

    def test_from_symbols(self):
        code = HuffmanCode.from_symbols(list("aaabbc"))
        assert code.alphabet == {"a", "b", "c"}


class TestEncodeDecode:
    def test_roundtrip(self):
        symbols = list("the quick brown fox jumps over the lazy dog")
        code = HuffmanCode.from_symbols(symbols)
        w = BitWriter()
        code.encode_to(w, symbols)
        out = code.decode_from(BitReader(w.getvalue()), len(symbols))
        assert out == symbols

    def test_encoded_bit_length_matches_stream(self):
        symbols = list("mississippi")
        code = HuffmanCode.from_symbols(symbols)
        w = BitWriter()
        code.encode_to(w, symbols)
        assert w.bit_length == code.encoded_bit_length(symbols)

    def test_tuple_symbols(self):
        """The codec's alphabet is tuples like ('AC', run, size)."""
        symbols = [("AC", 0, 3)] * 5 + [("DC", 4)] * 2 + [("EOB",)]
        code = HuffmanCode.from_symbols(symbols)
        w = BitWriter()
        code.encode_to(w, symbols)
        assert code.decode_from(BitReader(w.getvalue()), len(symbols)) == symbols

    def test_unknown_symbol_raises(self):
        code = HuffmanCode.from_frequencies({"a": 1, "b": 1})
        with pytest.raises(KeyError):
            code.encoded_bit_length(["c"])

    def test_decode_invalid_stream(self):
        code = HuffmanCode.from_frequencies({"a": 3, "b": 2, "c": 1})
        with pytest.raises((ValueError, EOFError)):
            code.decode_from(BitReader(b"\xff\xff"), 20)

    def test_requires_bitwriter(self):
        code = HuffmanCode.from_frequencies({"a": 1, "b": 1})
        with pytest.raises(TypeError):
            code.encode_to([], ["a"])


@settings(max_examples=40, deadline=None)
@given(
    text=st.text(alphabet=st.sampled_from("abcdefgh"), min_size=1, max_size=300),
)
def test_huffman_roundtrip_property(text):
    """Property: decode(encode(s)) == s for arbitrary symbol streams."""
    symbols = list(text)
    code = HuffmanCode.from_symbols(symbols)
    w = BitWriter()
    code.encode_to(w, symbols)
    assert code.decode_from(BitReader(w.getvalue()), len(symbols)) == symbols


@settings(max_examples=30, deadline=None)
@given(
    freqs=st.dictionaries(
        st.integers(0, 30), st.integers(min_value=1, max_value=1000), min_size=2, max_size=20
    )
)
def test_huffman_optimality_property(freqs):
    """Property: Huffman beats (or ties) the fixed-length code and
    satisfies the Kraft inequality."""
    code = HuffmanCode.from_frequencies(freqs)
    kraft = sum(2.0 ** -code.code_length(s) for s in freqs)
    assert kraft <= 1.0 + 1e-9
    fixed = int(np.ceil(np.log2(len(freqs))))
    assert code.mean_code_length(freqs) <= max(fixed, 1) + 1e-9
