"""Tests for the Hurst estimators (variance-time, R/S, Whittle).

Estimator-recovery claims are certified statistically: Whittle-based
checks use the estimator's analytic standard error via
``repro.qa.stats``; variance-time and R/S (no analytic SE) are
certified in the tier-2 Monte-Carlo equivalence class at the bottom,
where the tolerance is an explicit equivalence margin with a
controlled error rate instead of an ad-hoc ``approx`` band.
"""

import numpy as np
import pytest

from repro.analysis.hurst import (
    hurst_summary,
    rs_aggregated,
    rs_pox,
    rs_sensitivity,
    rs_statistic,
    variance_time,
    whittle,
    whittle_aggregated,
)
from repro.core.daviesharte import DaviesHarteGenerator
from repro.qa import stats as qa
from tests.qa_budget import CHECK_ALPHA


@pytest.fixture(scope="module")
def white_noise():
    return np.random.default_rng(21).standard_normal(2**15)


@pytest.fixture(scope="module")
def fgn_low():
    return DaviesHarteGenerator(0.6).generate(2**15, rng=np.random.default_rng(22))


class TestVarianceTime:
    def test_beta_hurst_relation(self, white_noise):
        """H = 1 - beta/2 by construction, whatever the data."""
        est = variance_time(white_noise)
        assert est.hurst == 1.0 - est.beta / 2.0

    def test_result_arrays_consistent(self, fgn_path):
        est = variance_time(fgn_path)
        assert est.m_values.shape == est.normalized_variances.shape
        assert est.fit_mask.shape == est.m_values.shape
        assert est.normalized_variances[0] == pytest.approx(1.0, rel=0.01)

    def test_normalized_variance_decreasing(self, fgn_path):
        est = variance_time(fgn_path)
        v = est.normalized_variances
        # Overall trend decreases (allow tiny local noise).
        assert v[-1] < 0.2 * v[0]

    def test_custom_m_values(self, white_noise):
        est = variance_time(white_noise, m_values=[1, 10, 100, 1000], fit_range=(10, 1000))
        assert est.m_values.tolist() == [1, 10, 100, 1000]

    def test_rejects_constant(self):
        with pytest.raises(ValueError):
            variance_time(np.ones(1000))

    def test_rejects_empty_fit_range(self, white_noise):
        with pytest.raises(ValueError):
            variance_time(white_noise, m_values=[1, 2], fit_range=(100, 200))


class TestRSStatistic:
    def test_known_small_case(self):
        """Manual computation for [1, 2, 3]: W = [-1, -1, 0], R = 1,
        S = std = sqrt(2/3)."""
        value = rs_statistic([1.0, 2.0, 3.0])
        assert value == pytest.approx(1.0 / np.sqrt(2.0 / 3.0))

    def test_scale_invariant(self, rng):
        x = rng.standard_normal(100)
        assert rs_statistic(5.0 * x + 3.0) == pytest.approx(rs_statistic(x), rel=1e-9)

    def test_constant_segment_is_nan(self):
        assert np.isnan(rs_statistic(np.ones(10)))

    def test_positive(self, rng):
        assert rs_statistic(rng.uniform(size=50)) > 0


class TestRSPox:
    def test_pox_points_populated(self, fgn_path):
        est = rs_pox(fgn_path, n_partitions=8, n_lag_points=20)
        assert est.lags.size == est.rs_values.size
        assert est.lags.size > 40

    def test_aggregated_variant(self, fgn_path):
        est = rs_aggregated(fgn_path, m=8)
        assert est.hurst == pytest.approx(0.8, abs=0.1)

    def test_sensitivity_range_tight_for_clean_fgn(self, fgn_path):
        low, high, estimates = rs_sensitivity(
            fgn_path, partition_counts=(5, 10), lag_point_counts=(20, 40)
        )
        assert len(estimates) == 4
        assert high - low < 0.1
        assert 0.7 < low <= high < 0.92

    def test_rejects_short_series(self):
        with pytest.raises(ValueError):
            rs_pox(np.arange(10.0))

    def test_rejects_bad_lags(self, white_noise):
        with pytest.raises(ValueError):
            rs_pox(white_noise, lags=[1])


class TestWhittle:
    def test_farima_exact_model(self):
        """Whittle on its exact model: the analytic CI must cover the
        nominal H (z-test with SE sqrt(6)/(pi sqrt(n)), no magic band)."""
        from repro.core.hosking import HoskingGenerator

        x = HoskingGenerator(hurst=0.8).generate(8192, rng=np.random.default_rng(5))
        qa.require(qa.hurst_ci_check(x, 0.8, alpha=1e-3, name="whittle on exact fARIMA"))

    def test_confidence_interval_width(self):
        """The asymptotic CI halfwidth is 1.96 sqrt(6)/(pi sqrt(n)); at
        n = 244 this reproduces the paper's +-0.088 (they quote 0.088
        at m ~= 700 on 171,000 frames)."""
        x = DaviesHarteGenerator(0.8).generate(244, rng=np.random.default_rng(1))
        est = whittle(x, normalize=None)
        assert 1.96 * est.std_error == pytest.approx(0.098, abs=0.002)

    def test_ci_contains_point_estimate(self, fgn_path):
        est = whittle(fgn_path)
        assert est.ci_low < est.hurst < est.ci_high

    def test_white_noise_gives_half(self, white_noise):
        """White noise is fARIMA(0, 0, 0); H = 1/2 sits in the CI."""
        qa.require(qa.hurst_ci_check(white_noise, 0.5, alpha=1e-3, name="whittle on white noise"))

    def test_normal_scores_robust_to_marginal(self, fgn_path):
        """Rank-Gaussianization: distorting the marginal must not move
        the Whittle estimate (the paper's log-transform rationale)."""
        distorted = np.exp(fgn_path)  # lognormal marginal, same ordering
        est_raw = whittle(fgn_path, normalize=None)
        est_dist = whittle(distorted, normalize="normal-scores")
        assert est_dist.hurst == pytest.approx(est_raw.hurst, abs=0.03)

    def test_log_normalization(self, fgn_path):
        est = whittle(np.exp(fgn_path), normalize="log")
        assert est.hurst == pytest.approx(0.8, abs=0.1)

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            whittle(np.linspace(-1, 1, 100), normalize="log")

    def test_rejects_unknown_normalization(self, fgn_path):
        with pytest.raises(ValueError):
            whittle(fgn_path, normalize="boxcox")

    def test_d_bounded(self, fgn_path):
        est = whittle(fgn_path)
        assert -0.5 < est.d < 0.5


class TestWhittleAggregated:
    def test_returns_multiple_levels(self, fgn_path):
        results = whittle_aggregated(fgn_path, m_values=[1, 4, 16])
        assert [m for m, _ in results] == [1, 4, 16]

    def test_cis_widen_with_aggregation(self, fgn_path):
        results = whittle_aggregated(fgn_path, m_values=[1, 16])
        assert results[1][1].std_error > results[0][1].std_error

    def test_skips_too_aggressive_levels(self, fgn_path):
        results = whittle_aggregated(fgn_path, m_values=[1, 10**6], min_points=128)
        assert len(results) == 1

    def test_estimates_stable_across_levels(self, fgn_path):
        """For exactly self-similar input the estimate must not drift
        with m (Section 3.2.2's definition in action)."""
        results = whittle_aggregated(fgn_path, m_values=[1, 4, 16])
        values = [r.hurst for _, r in results]
        assert max(values) - min(values) < 0.12


class TestHurstSummary:
    def test_all_methods_consistent_on_fgn(self, fgn_path):
        summary = hurst_summary(fgn_path)
        assert summary["variance_time"] == pytest.approx(0.8, abs=0.07)
        assert summary["rs"] == pytest.approx(0.8, abs=0.09)
        low, high = summary["rs_varied"]
        assert low <= summary["rs"] + 0.05
        assert summary["whittle"].hurst == pytest.approx(0.8, abs=0.12)

    def test_reference_trace_in_paper_band(self, small_series):
        """All estimators land in the paper's 0.75-0.90 neighbourhood
        on the calibrated trace."""
        summary = hurst_summary(small_series)
        for key in ("variance_time", "rs", "rs_aggregated"):
            assert 0.7 < summary[key] < 0.95, key


@pytest.mark.tier2
@pytest.mark.statistical_retry
class TestEstimatorRecovery:
    """Monte-Carlo equivalence certification of the heuristic estimators.

    Variance-time and R/S have no analytic standard error, so their
    recovery of H is certified by TOST over independent paths: the
    margin states the accepted estimator bias+noise band explicitly
    (both estimators carry a known finite-sample bias of up to ~0.04
    at n = 2^14) and alpha bounds the rate of false certification.
    Seeded through ``seeded_rng`` -- must pass for any ``--qa-seed``.
    """

    R = 6
    N = 2**14

    def _paths(self, rng, hurst):
        if hurst == 0.5:
            return [rng.standard_normal(self.N) for _ in range(self.R)]
        gen = DaviesHarteGenerator(hurst)
        return [gen.generate(self.N, rng=rng) for _ in range(self.R)]

    @pytest.mark.parametrize(
        "hurst,margin", [(0.5, 0.055), (0.6, 0.065), (0.8, 0.085)]
    )
    def test_variance_time_recovers(self, seeded_rng, hurst, margin):
        values = [variance_time(p).hurst for p in self._paths(seeded_rng, hurst)]
        qa.require(
            qa.equivalence_check(
                values, hurst, margin=margin, alpha=CHECK_ALPHA,
                name=f"variance-time recovers H={hurst}",
            )
        )

    @pytest.mark.parametrize(
        "hurst,margin", [(0.5, 0.095), (0.8, 0.085)]
    )
    def test_rs_pox_recovers(self, seeded_rng, hurst, margin):
        """R/S carries the classical upward small-n bias at H = 1/2
        (~+0.04); the margin covers it explicitly."""
        values = [rs_pox(p).hurst for p in self._paths(seeded_rng, hurst)]
        qa.require(
            qa.equivalence_check(
                values, hurst, margin=margin, alpha=CHECK_ALPHA,
                name=f"R/S pox recovers H={hurst}",
            )
        )
