"""Tests for the hybrid Gamma/Pareto marginal model (Section 4.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import Gamma, GammaParetoHybrid, Pareto


@pytest.fixture(scope="module")
def hybrid():
    return GammaParetoHybrid(27_791.0, 6_254.0, 12.0)


class TestSplicePoint:
    def test_splice_point_above_mean(self, hybrid):
        """The heavy tail lives in the upper tail, beyond the mean."""
        assert hybrid.x_th > hybrid.mu_gamma

    def test_slope_matching_at_splice(self, hybrid):
        """At x_th the Gamma log-log CCDF slope equals -a (the paper's
        construction)."""
        slope = hybrid.gamma.loglog_ccdf_slope(hybrid.x_th)
        assert slope == pytest.approx(-hybrid.tail_shape, rel=1e-6)

    def test_density_continuous_at_splice(self, hybrid):
        """Slope matching makes the density continuous at x_th."""
        eps = 1e-6 * hybrid.x_th
        below = hybrid.pdf(hybrid.x_th - eps)
        above = hybrid.pdf(hybrid.x_th + eps)
        assert above == pytest.approx(below, rel=1e-4)

    def test_cdf_continuous_at_splice(self, hybrid):
        eps = 1e-9 * hybrid.x_th
        assert hybrid.cdf(hybrid.x_th + eps) == pytest.approx(hybrid.cdf(hybrid.x_th - eps), abs=1e-9)

    def test_tail_mass_consistent(self, hybrid):
        assert hybrid.tail_mass == pytest.approx(hybrid.sf(hybrid.x_th), abs=1e-12)
        # For the paper's parameters the tail holds a few percent.
        assert 0.001 < hybrid.tail_mass < 0.10

    def test_heavier_tail_shape_moves_splice_out(self):
        """Steeper (larger a) tails splice farther out on the Gamma."""
        h1 = GammaParetoHybrid(100.0, 20.0, 5.0)
        h2 = GammaParetoHybrid(100.0, 20.0, 15.0)
        assert h2.x_th > h1.x_th


class TestDistributionInterface:
    def test_body_equals_gamma(self, hybrid):
        """Below x_th the hybrid IS the Gamma."""
        x = np.linspace(1_000, hybrid.x_th * 0.999, 50)
        np.testing.assert_allclose(hybrid.cdf(x), hybrid.gamma.cdf(x), rtol=1e-12)
        np.testing.assert_allclose(hybrid.pdf(x), hybrid.gamma.pdf(x), rtol=1e-12)

    def test_tail_is_pure_power_law(self, hybrid):
        """Above x_th the log-log CCDF is a straight line of slope -a."""
        x = np.geomspace(hybrid.x_th * 1.01, hybrid.x_th * 100, 40)
        slopes = np.diff(np.log(hybrid.sf(x))) / np.diff(np.log(x))
        np.testing.assert_allclose(slopes, -hybrid.tail_shape, rtol=1e-9)

    def test_pdf_integrates_to_one(self, hybrid):
        x = np.linspace(1.0, hybrid.x_th, 200_000)
        body = np.trapezoid(hybrid.pdf(x), x)
        tail = hybrid.tail_mass  # exact mass of the Pareto tail
        assert body + tail == pytest.approx(1.0, abs=1e-4)

    def test_ppf_inverts_cdf_through_both_regimes(self, hybrid):
        q = np.concatenate(
            (np.linspace(0.001, 0.95, 20), np.linspace(0.97, 0.99999, 20))
        )
        np.testing.assert_allclose(hybrid.cdf(hybrid.ppf(q)), q, rtol=1e-9)

    def test_ppf_monotone(self, hybrid):
        q = np.linspace(0.001, 0.99999, 300)
        assert np.all(np.diff(hybrid.ppf(q)) > 0)

    def test_ppf_at_one_is_infinite(self, hybrid):
        assert hybrid.ppf(1.0) == np.inf

    def test_mean_between_gamma_and_inflated(self, hybrid):
        """The Pareto tail only adds mass above x_th, so the hybrid
        mean exceeds the truncated-Gamma mean but stays near mu_gamma."""
        assert hybrid.mean() > 0
        assert hybrid.mean() == pytest.approx(hybrid.mu_gamma, rel=0.02)

    def test_mean_matches_numerical_integral(self, hybrid):
        q = np.linspace(1e-7, 1 - 1e-7, 2_000_001)
        numeric = np.trapezoid(hybrid.ppf(q), q)
        assert hybrid.mean() == pytest.approx(numeric, rel=1e-3)

    def test_variance_infinite_for_small_a(self):
        h = GammaParetoHybrid(100.0, 25.0, 1.8)
        assert h.var() == float("inf")
        assert h.mean() < float("inf")

    def test_mean_infinite_for_a_below_one(self):
        h = GammaParetoHybrid(100.0, 25.0, 0.9)
        assert h.mean() == float("inf")

    def test_sampling_moments(self, hybrid, rng):
        x = hybrid.sample(200_000, rng=rng)
        assert np.mean(x) == pytest.approx(hybrid.mean(), rel=0.01)
        assert np.all(x > 0)

    def test_tail_pareto_object(self, hybrid):
        p = hybrid.tail_pareto()
        assert isinstance(p, Pareto)
        assert p.k == hybrid.x_th
        assert p.a == hybrid.tail_shape


class TestFit:
    def test_fit_recovers_tail_shape(self, rng):
        true = GammaParetoHybrid(1000.0, 250.0, 6.0)
        data = true.sample(150_000, rng=rng)
        fitted = GammaParetoHybrid.fit(data, tail_fraction=true.tail_mass)
        assert fitted.tail_shape == pytest.approx(6.0, rel=0.25)
        assert fitted.mu_gamma == pytest.approx(float(np.mean(data)), rel=1e-9)

    def test_fit_rejects_nonpositive_data(self):
        with pytest.raises(ValueError):
            GammaParetoHybrid.fit(np.concatenate((np.full(200, 5.0), [-1.0])))

    def test_parameters_property(self, hybrid):
        assert hybrid.parameters == (27_791.0, 6_254.0, 12.0)


class TestMappingTableAndAggregate:
    def test_mapping_table_matches_exact_ppf(self, hybrid):
        table = hybrid.mapping_table(10_000)
        q = np.linspace(0.01, 0.99, 99)
        np.testing.assert_allclose(table.ppf(q), hybrid.ppf(q), rtol=5e-3)

    def test_table_truncates_extreme_tail(self, hybrid):
        """The paper observed its 10,000-point table 'does not hold the
        Pareto tail' for extreme quantiles -- the table's support is
        finite while the Pareto tail is unbounded."""
        table = hybrid.mapping_table(10_000)
        _, hi = table.support
        assert np.isfinite(hi)
        assert table.ppf(1.0) <= hi < hybrid.ppf(1.0 - 1e-12)

    def test_aggregate_one_is_identity_shape(self, hybrid):
        agg = hybrid.aggregate(1, n_points=4000)
        assert agg.mean() == pytest.approx(hybrid.mean(), rel=5e-3)

    def test_aggregate_mean_scales_linearly(self, hybrid):
        agg = hybrid.aggregate(5, n_points=4000)
        assert agg.mean() == pytest.approx(5 * hybrid.mean(), rel=5e-3)

    def test_aggregate_narrows_cov(self, hybrid):
        """Multiplexing N independent sources divides the CoV by
        sqrt(N) -- the paper's SMG argument in distribution form."""
        agg = hybrid.aggregate(4, n_points=4000)
        cov_agg = np.sqrt(agg.var()) / agg.mean()
        cov_one = hybrid.std() / hybrid.mean()
        assert cov_agg == pytest.approx(cov_one / 2.0, rel=0.05)

    def test_aggregate_rejects_bad_n(self, hybrid):
        with pytest.raises(ValueError):
            hybrid.aggregate(0)
        with pytest.raises(TypeError):
            hybrid.aggregate(2.5)


@settings(max_examples=25, deadline=None)
@given(
    mean=st.floats(min_value=10.0, max_value=1e5),
    cov=st.floats(min_value=0.1, max_value=0.6),
    a=st.floats(min_value=2.5, max_value=30.0),
)
def test_hybrid_construction_invariants(mean, cov, a):
    """Property: for any parameters the splice is slope-matched, the
    CDF is a proper distribution function, and ppf inverts cdf."""
    h = GammaParetoHybrid(mean, mean * cov, a)
    assert h.x_th > 0
    assert 0 < h.tail_mass < 1
    slope = h.gamma.loglog_ccdf_slope(h.x_th)
    assert slope == pytest.approx(-a, rel=1e-4)
    for q in (0.1, 0.5, 0.9, 0.999):
        assert h.cdf(h.ppf(q)) == pytest.approx(q, rel=1e-6)
