"""End-to-end integration tests tying the whole pipeline together.

Each test follows one of the paper's narrative arcs across multiple
subsystems: code a movie -> analyse the trace; synthesize a trace ->
fit the model -> generate -> queue; save -> load -> re-analyse.
"""

import numpy as np
import pytest

from repro.core.model import VBRVideoModel
from repro.simulation.qc import qc_curve
from repro.simulation.queue import simulate_queue
from repro.video.codec import IntraframeCodec
from repro.video.starwars import synthesize_starwars_trace
from repro.video.synthetic import SyntheticMovie
from repro.video.tracefile import load_trace, save_trace


class TestCodecToAnalysisPipeline:
    def test_coded_movie_bandwidth_tracks_scene_complexity(self):
        """The codec's byte output correlates with the scene script's
        complexity levels -- the mechanism behind the whole paper."""
        movie = SyntheticMovie(60, height=48, width=64, seed=11, min_scene_frames=10)
        codec = IntraframeCodec(quant_step=16.0, slices_per_frame=6)
        trace = codec.encode_movie(movie)
        levels = movie.script.frame_levels()
        corr = np.corrcoef(trace.frame_bytes, levels)[0, 1]
        assert corr > 0.4

    def test_coded_trace_analysable(self):
        movie = SyntheticMovie(40, height=48, width=64, seed=12)
        codec = IntraframeCodec(quant_step=16.0, slices_per_frame=6)
        trace = codec.encode_movie(movie)
        summary = trace.summary("frame")
        assert summary.peak_to_mean >= 1.0
        assert summary.mean > 0


class TestModelRoundtrip:
    def test_fit_generate_queue_close_to_source(self):
        """Fit the model to the synthetic trace, generate traffic, and
        compare zero-loss capacity requirements -- a miniature Fig. 16."""
        trace = synthesize_starwars_trace(n_frames=12_000, seed=21, with_slices=False)
        x = trace.frame_bytes
        model = VBRVideoModel.fit(x)
        y = model.generate(x.size, rng=np.random.default_rng(0), generator="davies-harte")
        rng = np.random.default_rng(1)
        curve_x = qc_curve(x, 1 / 24.0, 1, 0.0, n_points=5, rng=rng)
        curve_y = qc_curve(
            y, 1 / 24.0, 1, 0.0, capacities=curve_x.capacity_per_source, rng=rng
        )
        # Same capacity grid: buffer requirements within one order of
        # magnitude everywhere (the paper reports a visible but bounded
        # offset).
        ratio = (curve_y.buffer_bytes + 1e4) / (curve_x.buffer_bytes + 1e4)
        assert np.all(ratio < 30)
        assert np.all(ratio > 1 / 30)

    def test_model_traffic_survives_queueing(self):
        model = VBRVideoModel(27_791.0, 6_254.0, 12.0, 0.8)
        y = model.generate(5_000, rng=np.random.default_rng(5), generator="davies-harte")
        result = simulate_queue(y, float(np.mean(y)) * 1.2, 500_000.0)
        assert result.loss_rate < 0.05


class TestPersistenceRoundtrip:
    def test_save_load_analyse(self, tmp_path):
        trace = synthesize_starwars_trace(n_frames=3_000, seed=31)
        path = tmp_path / "sw.trace"
        save_trace(trace, path, unit="slice")
        loaded = load_trace(path)
        np.testing.assert_allclose(loaded.frame_bytes, trace.frame_bytes)
        s1 = trace.summary("slice")
        s2 = loaded.summary("slice")
        assert s1.mean == pytest.approx(s2.mean)
        assert s1.std == pytest.approx(s2.std)


class TestPaperHeadlines:
    """The paper's abstract, verified end-to-end on the reference data."""

    def test_heavy_tailed_marginal(self, small_series):
        """'the tail behavior ... can be accurately described using
        heavy-tailed distributions (e.g. Pareto)'."""
        from repro.experiments import fig04_ccdf
        from repro.video.trace import VBRTrace

        result = fig04_ccdf.run(VBRTrace(small_series))
        assert result["ranking"][0] in ("pareto", "gamma_pareto")

    def test_long_range_dependence(self, small_series):
        """'the autocorrelation ... decays hyperbolically'."""
        from repro.analysis.hurst import variance_time

        assert variance_time(small_series).hurst > 0.7

    def test_multiplexing_efficiency(self, small_series):
        """'statistical multiplexing results in significant bandwidth
        efficiency even when long-range dependence is present'."""
        from repro.simulation.qc import smg_curve

        smg = smg_curve(
            small_series[:10_000],
            1 / 24.0,
            n_values=(1, 5),
            target_loss=0.0,
            min_separation=500,
            rng=np.random.default_rng(2),
            n_lag_draws=3,
        )
        assert smg["gain_fraction"][1] > 0.5
