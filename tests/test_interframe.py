"""Tests for the interframe (MPEG-style) codec and trace synthesis."""

import numpy as np
import pytest

from repro.video.interframe import (
    DEFAULT_GOP_PATTERN,
    InterframeCodec,
    synthesize_mpeg_trace,
)
from repro.video.synthetic import SyntheticMovie


class TestInterframeCodec:
    @pytest.fixture(scope="class")
    def movie_frames(self):
        movie = SyntheticMovie(14, height=48, width=64, seed=6, min_scene_frames=14)
        return list(movie)

    def test_gop_structure(self, movie_frames):
        codec = InterframeCodec(quant_step=16.0, gop_size=6, slices_per_frame=6)
        _, types = codec.encode_movie(movie_frames)
        assert types[0] == "I"
        assert types[6] == "I"
        assert types[12] == "I"
        assert all(t == "P" for i, t in enumerate(types) if i % 6 != 0)

    def test_p_frames_cheaper_for_static_content(self):
        """Static content codes far cheaper differentially: a complex
        background with one small moving object makes P frames tiny
        compared to the I frame."""
        rng = np.random.default_rng(8)
        background = np.clip(
            128 + 40 * rng.standard_normal((48, 64)), 0, 255
        ).astype(np.uint8)
        frames = []
        for k in range(8):
            frame = background.copy()
            frame[20:28, 8 + 4 * k : 16 + 4 * k] = 255  # moving block
            frames.append(frame)
        codec = InterframeCodec(quant_step=16.0, gop_size=8, slices_per_frame=6)
        trace, types = codec.encode_movie(frames)
        assert types[0] == "I"
        i_bytes = trace.frame_bytes[0]
        p_bytes = np.mean(trace.frame_bytes[1:])
        assert p_bytes < 0.5 * i_bytes

    def test_reconstruction_quality(self, movie_frames):
        """Prediction drift stays bounded: every reconstruction is
        within quantizer error of its source frame."""
        codec = InterframeCodec(quant_step=16.0, gop_size=6, slices_per_frame=6)
        codec.reset()
        for frame in movie_frames[:8]:
            _, _, _, recon = codec.encode_next(frame)
            rmse = np.sqrt(np.mean((recon - frame.astype(float)) ** 2))
            assert rmse < 2.5 * codec.quant_step

    def test_higher_compression_than_intraframe(self, movie_frames):
        """The paper: 'Greater compression ... result[s] from
        interframe coding.'"""
        from repro.video.codec import IntraframeCodec

        inter = InterframeCodec(quant_step=16.0, gop_size=14, slices_per_frame=6)
        intra = IntraframeCodec(quant_step=16.0, slices_per_frame=6)
        trace_inter, _ = inter.encode_movie(movie_frames)
        trace_intra = intra.encode_movie(movie_frames)
        assert trace_inter.frame_bytes.mean() < trace_intra.frame_bytes.mean()

    def test_burstier_than_intraframe(self, movie_frames):
        """... and greater burstiness."""
        from repro.video.codec import IntraframeCodec

        inter = InterframeCodec(quant_step=16.0, gop_size=7, slices_per_frame=6)
        intra = IntraframeCodec(quant_step=16.0, slices_per_frame=6)
        trace_inter, _ = inter.encode_movie(movie_frames)
        trace_intra = intra.encode_movie(movie_frames)
        cov_inter = trace_inter.frame_bytes.std() / trace_inter.frame_bytes.mean()
        cov_intra = trace_intra.frame_bytes.std() / trace_intra.frame_bytes.mean()
        assert cov_inter > cov_intra

    def test_reset(self, movie_frames):
        codec = InterframeCodec(quant_step=16.0, gop_size=4, slices_per_frame=6)
        codec.encode_next(movie_frames[0])
        codec.reset()
        frame_type, _, _, _ = codec.encode_next(movie_frames[1])
        assert frame_type == "I"

    def test_empty_movie_rejected(self):
        codec = InterframeCodec()
        with pytest.raises(ValueError):
            codec.encode_movie([])


class TestMPEGTraceSynthesis:
    @pytest.fixture(scope="class")
    def mpeg(self):
        return synthesize_mpeg_trace(n_frames=24_000, seed=4)

    def test_gop_periodicity_in_spectrum(self, mpeg):
        """The I/P/B pattern puts spectral lines at the GOP frequency
        and its harmonics -- the signature of MPEG VBR traces."""
        from repro.analysis.correlation import periodogram

        omega, intensity = periodogram(mpeg.frame_bytes)
        gop = len(DEFAULT_GOP_PATTERN)
        # Fundamental GOP frequency: omega = 2 pi / gop.
        j_gop = mpeg.n_frames // gop
        peak = intensity[j_gop - 2 : j_gop + 1].max()
        background = np.median(intensity[j_gop // 2 : j_gop * 2])
        assert peak > 30 * background

    def test_burstier_than_intraframe(self, mpeg):
        from repro.experiments.data import reference_trace

        intra = reference_trace(n_frames=24_000, seed=4, with_slices=False)
        cov_mpeg = mpeg.frame_bytes.std() / mpeg.frame_bytes.mean()
        cov_intra = intra.frame_bytes.std() / intra.frame_bytes.mean()
        assert cov_mpeg > 1.5 * cov_intra

    def test_lrd_survives_gop_aggregation(self, mpeg):
        """Aggregating over whole GOPs removes the deterministic
        pattern and exposes the underlying H ~= 0.8."""
        from repro.analysis.correlation import aggregate
        from repro.analysis.hurst import variance_time

        per_gop = aggregate(mpeg.frame_bytes, len(DEFAULT_GOP_PATTERN))
        est = variance_time(per_gop)
        assert 0.7 < est.hurst < 0.95

    def test_mean_calibration(self, mpeg):
        """Default mean: intraframe mean / 3 (interframe compression)."""
        assert np.mean(mpeg.frame_bytes) == pytest.approx(27_791.0 / 3.0, rel=0.02)

    def test_i_frames_largest_on_average(self, mpeg):
        gop = len(DEFAULT_GOP_PATTERN)
        x = mpeg.frame_bytes[: (mpeg.n_frames // gop) * gop].reshape(-1, gop)
        by_position = x.mean(axis=0)
        assert by_position[0] == by_position.max()  # the I frame

    def test_rejects_bad_pattern(self):
        with pytest.raises(ValueError):
            synthesize_mpeg_trace(n_frames=100, gop_pattern="PBB")
        with pytest.raises(ValueError):
            synthesize_mpeg_trace(n_frames=100, gop_pattern="IXB")


class TestResidualRange:
    def test_scene_change_p_frame_reconstructs(self):
        """A full-frame scene change inside a GOP produces residuals
        spanning +-255; the decode path must not clamp them (the bug
        this test pins down: pel-clipping the shifted residual would
        corrupt the reconstruction until the next I frame)."""
        dark = np.zeros((32, 32), dtype=np.uint8)
        bright = np.full((32, 32), 250, dtype=np.uint8)
        codec = InterframeCodec(quant_step=8.0, gop_size=10, slices_per_frame=4)
        codec.reset()
        codec.encode_next(dark)            # I frame
        _, _, _, recon = codec.encode_next(bright)  # P frame, residual ~ +250
        rmse = np.sqrt(np.mean((recon - bright.astype(float)) ** 2))
        assert rmse < 2.5 * codec.quant_step

    def test_negative_scene_change(self):
        bright = np.full((32, 32), 250, dtype=np.uint8)
        dark = np.full((32, 32), 5, dtype=np.uint8)
        codec = InterframeCodec(quant_step=8.0, gop_size=10, slices_per_frame=4)
        codec.reset()
        codec.encode_next(bright)
        _, _, _, recon = codec.encode_next(dark)
        rmse = np.sqrt(np.mean((recon - dark.astype(float)) ** 2))
        assert rmse < 2.5 * codec.quant_step
