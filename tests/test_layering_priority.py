"""Tests for layered coding and the two-priority queue."""

import numpy as np
import pytest

from repro.simulation.priority import simulate_priority_queue
from repro.simulation.queue import simulate_queue
from repro.video.layering import LayeredIntraframeCodec, layer_series
from repro.video.synthetic import SyntheticMovie


class TestLayerSeries:
    def test_totals_preserved(self, small_series):
        base, enh = layer_series(small_series, base_fraction=0.4)
        np.testing.assert_allclose(base + enh, small_series)

    def test_fraction_respected(self, small_series):
        base, _ = layer_series(small_series, base_fraction=0.4)
        assert base.sum() / small_series.sum() == pytest.approx(0.4, abs=0.01)

    def test_nonnegative(self, small_series):
        base, enh = layer_series(small_series, base_fraction=0.7)
        assert np.all(base >= 0)
        assert np.all(enh >= 0)

    def test_rejects_bad_fraction(self, small_series):
        with pytest.raises(ValueError):
            layer_series(small_series, base_fraction=1.0)


class TestLayeredCodec:
    @pytest.fixture(scope="class")
    def frame(self):
        rng = np.random.default_rng(3)
        yy, xx = np.mgrid[0:48, 0:64]
        img = 120 + 40 * np.sin(xx / 9.0) + rng.normal(0, 20, size=(48, 64))
        return np.clip(img, 0, 255).astype(np.uint8)

    def test_layer_split(self, frame):
        codec = LayeredIntraframeCodec(quant_step=16.0, n_base_coeffs=6)
        layered = codec.encode_frame_layered(frame)
        assert layered.base_bytes > 0
        assert layered.enhancement_bytes > 0
        assert layered.n_base_coeffs == 6

    def test_total_close_to_single_layer(self, frame):
        """Layering overhead is small (the paper's remark)."""
        plain = LayeredIntraframeCodec(quant_step=16.0, n_base_coeffs=6)
        layered = plain.encode_frame_layered(frame)
        single = plain.encode_frame(frame)
        overhead = layered.total_bytes / single.total_bytes
        assert 0.8 < overhead < 1.35

    def test_more_base_coeffs_bigger_base(self, frame):
        small = LayeredIntraframeCodec(quant_step=16.0, n_base_coeffs=3)
        large = LayeredIntraframeCodec(quant_step=16.0, n_base_coeffs=20)
        assert (
            large.encode_frame_layered(frame).base_fraction
            > small.encode_frame_layered(frame).base_fraction
        )

    def test_movie_layering(self):
        codec = LayeredIntraframeCodec(quant_step=16.0, n_base_coeffs=6)
        movie = SyntheticMovie(4, height=48, width=64, seed=2)
        base, enh = codec.encode_movie_layered(movie)
        assert base.shape == enh.shape == (4,)
        assert np.all(base > 0)

    def test_rejects_bad_split(self):
        with pytest.raises(ValueError):
            LayeredIntraframeCodec(n_base_coeffs=64)


class TestPriorityQueue:
    def test_no_loss_with_ample_capacity(self, rng):
        h = rng.uniform(0, 3, size=500)
        low = rng.uniform(0, 3, size=500)
        result = simulate_priority_queue(h, low, capacity_per_slot=10.0, buffer_bytes=10.0)
        assert result.high_lost == 0.0
        assert result.low_lost == 0.0

    def test_low_priority_dropped_first(self, rng):
        h = rng.uniform(0, 5, size=2000)
        low = rng.uniform(0, 5, size=2000)
        result = simulate_priority_queue(h, low, capacity_per_slot=5.2, buffer_bytes=5.0)
        assert result.low_loss_rate > 0
        assert result.high_loss_rate < result.low_loss_rate

    def test_base_protected_when_base_fits(self, rng):
        """If the base layer alone fits the capacity, it loses nothing
        regardless of enhancement pressure."""
        h = rng.uniform(0, 2, size=2000)  # mean 1
        low = rng.uniform(0, 20, size=2000)  # massive overload
        result = simulate_priority_queue(h, low, capacity_per_slot=3.0, buffer_bytes=5.0)
        assert result.high_lost == 0.0
        assert result.low_loss_rate > 0.5

    def test_conservation(self, rng):
        h = rng.uniform(0, 5, size=1000)
        low = rng.uniform(0, 5, size=1000)
        result = simulate_priority_queue(h, low, 4.0, 15.0, return_series=True)
        assert result.high_loss_series.sum() == pytest.approx(result.high_lost)
        assert result.low_loss_series.sum() == pytest.approx(result.low_lost)
        assert result.high_lost <= result.high_offered
        assert result.low_lost <= result.low_offered

    def test_total_loss_close_to_fifo(self, rng):
        """Priorities redistribute loss between classes; the total is
        close to (never better than) the work-conserving FIFO's."""
        h = rng.uniform(0, 5, size=5000)
        low = rng.uniform(0, 5, size=5000)
        prio = simulate_priority_queue(h, low, 7.0, 30.0)
        fifo = simulate_queue(h + low, 7.0, 30.0)
        total_prio = prio.high_lost + prio.low_lost
        assert total_prio == pytest.approx(fifo.lost_bytes, rel=0.05)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            simulate_priority_queue([1.0], [1.0, 2.0], 1.0, 1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            simulate_priority_queue([-1.0], [1.0], 1.0, 1.0)


class TestLayeredTransportEndToEnd:
    def test_priority_protects_base_layer(self, small_series):
        """The Section 5.3 scenario: under pressure, priorities keep
        the base layer nearly loss-free while FIFO punishes both."""
        x = small_series[:10_000]
        base, enh = layer_series(x, base_fraction=0.4)
        capacity = float(np.mean(x)) * 1.02
        buffer_bytes = 50_000.0
        fifo = simulate_queue(x, capacity, buffer_bytes)
        prio = simulate_priority_queue(base, enh, capacity, buffer_bytes)
        assert fifo.loss_rate > 0
        assert prio.high_loss_rate < 0.1 * fifo.loss_rate
        assert prio.low_loss_rate > fifo.loss_rate


class TestPriorityQueueProperties:
    """Backfilled property wall: exact byte ledger and pushout order."""

    def test_byte_ledger_closes_exactly_for_integer_arrivals(self, rng):
        """offered == served + lost + final backlog, per layer, exactly:
        integer arrivals with integer capacity keep every intermediate
        value integral, so float arithmetic is exact."""
        for capacity, buffer_bytes in ((7.0, 20.0), (3.0, 0.0), (12.0, 5.0)):
            h = rng.integers(0, 8, size=1_500).astype(float)
            low = rng.integers(0, 8, size=1_500).astype(float)
            r = simulate_priority_queue(h, low, capacity, buffer_bytes)
            assert r.high_offered == r.high_served + r.high_lost + r.high_final_backlog
            assert r.low_offered == r.low_served + r.low_lost + r.low_final_backlog

    def test_byte_ledger_closes_for_float_arrivals(self, rng):
        h = rng.uniform(0, 5, size=2_000)
        low = rng.uniform(0, 5, size=2_000)
        r = simulate_priority_queue(h, low, 4.5, 12.0)
        assert r.high_offered == pytest.approx(
            r.high_served + r.high_lost + r.high_final_backlog, rel=1e-12)
        assert r.low_offered == pytest.approx(
            r.low_served + r.low_lost + r.low_final_backlog, rel=1e-12)

    def test_high_drops_only_after_low_is_empty(self, rng):
        """Replay the recursion slot by slot: whenever the simulator
        dropped a high-priority byte, the low-priority backlog must have
        been pushed out completely first."""
        h = rng.uniform(0, 9, size=3_000)
        low = rng.uniform(0, 3, size=3_000)
        capacity, q = 5.0, 8.0
        r = simulate_priority_queue(h, low, capacity, q, return_series=True)
        assert r.high_lost > 0.0  # the scenario actually exercises pushout
        backlog_hi = backlog_lo = 0.0
        for t in range(h.size):
            backlog_hi += h[t]
            backlog_lo += low[t]
            served_hi = min(backlog_hi, capacity)
            backlog_hi -= served_hi
            backlog_lo -= min(backlog_lo, capacity - served_hi)
            overflow = backlog_hi + backlog_lo - q
            if overflow > 0.0:
                drop_lo = min(backlog_lo, overflow)
                backlog_lo -= drop_lo
                drop_hi = overflow - drop_lo
                backlog_hi -= drop_hi
                assert r.high_loss_series[t] == pytest.approx(drop_hi, abs=1e-9)
                if drop_hi > 0.0:
                    assert backlog_lo == 0.0
            else:
                assert r.high_loss_series[t] == 0.0
