"""Tests for the marginal analysis helpers (Figs. 3-6 machinery)."""

import numpy as np
import pytest

from repro.analysis.marginals import (
    ccdf_model_comparison,
    histogram_density,
    left_tail_comparison,
    segment_histograms,
)


class TestHistogramDensity:
    def test_integrates_to_one(self, rng):
        x = rng.normal(10.0, 2.0, size=20_000)
        centers, density = histogram_density(x, n_bins=50)
        width = centers[1] - centers[0]
        assert np.sum(density) * width == pytest.approx(1.0, rel=1e-6)

    def test_respects_range(self, rng):
        x = rng.uniform(size=1000)
        centers, _ = histogram_density(x, n_bins=10, data_range=(0.0, 2.0))
        assert centers[-1] < 2.0
        assert centers[0] > 0.0

    def test_matches_known_density(self, rng):
        x = rng.normal(0.0, 1.0, size=200_000)
        centers, density = histogram_density(x, n_bins=80)
        peak = density[np.argmin(np.abs(centers))]
        assert peak == pytest.approx(1.0 / np.sqrt(2 * np.pi), rel=0.05)


class TestSegmentHistograms:
    def test_structure(self, small_series):
        out = segment_histograms(small_series, n_segments=5, segment_length=2000)
        assert len(out["segments"]) == 5
        centers, density = out["full"]
        assert centers.size == density.size

    def test_segments_evenly_spaced(self, small_series):
        out = segment_histograms(small_series, n_segments=3, segment_length=1000)
        starts = [s[0] for s in out["segments"]]
        assert starts[0] == 0
        assert starts[-1] == small_series.size - 1000

    def test_shared_bin_range(self, small_series):
        out = segment_histograms(small_series, n_segments=2, segment_length=1000)
        c0 = out["segments"][0][1]
        c1 = out["segments"][1][1]
        np.testing.assert_array_equal(c0, c1)

    def test_rejects_oversized_segment(self, small_series):
        with pytest.raises(ValueError):
            segment_histograms(small_series, segment_length=small_series.size + 1)


class TestCCDFComparison:
    def test_contains_all_models(self, small_series):
        out = ccdf_model_comparison(small_series)
        for key in ("normal", "gamma", "lognormal", "pareto", "gamma_pareto", "empirical", "x"):
            assert key in out

    def test_curves_are_survival_functions(self, small_series):
        out = ccdf_model_comparison(small_series)
        for key in ("normal", "gamma", "lognormal", "gamma_pareto"):
            curve = out[key]
            assert np.all(curve >= -1e-12)
            assert np.all(curve <= 1.0 + 1e-12)
            assert np.all(np.diff(curve) <= 1e-9)

    def test_empirical_matches_direct_count(self, small_series):
        out = ccdf_model_comparison(small_series)
        x0 = out["x"][50]
        expected = np.mean(small_series > x0)
        assert out["empirical"][50] == pytest.approx(expected, abs=1e-9)

    def test_normal_tail_decays_fastest(self, small_series):
        """The paper's Fig. 4 ordering at the extreme tail."""
        out = ccdf_model_comparison(small_series)
        x_far = -10  # last grid point, deepest tail
        assert out["normal"][x_far] < out["gamma"][x_far]
        assert out["gamma"][x_far] < out["gamma_pareto"][x_far] * 10


class TestLeftTailComparison:
    def test_curves_are_cdfs(self, small_series):
        out = left_tail_comparison(small_series)
        for key in ("normal", "gamma", "lognormal", "gamma_pareto"):
            curve = out[key]
            assert np.all((curve >= -1e-12) & (curve <= 1.0 + 1e-12))
            assert np.all(np.diff(curve) >= -1e-9)

    def test_grid_spans_min_to_median(self, small_series):
        out = left_tail_comparison(small_series)
        assert out["x"][0] == pytest.approx(np.min(small_series))
        assert out["x"][-1] == pytest.approx(np.median(small_series), rel=0.01)

    def test_gamma_fits_left_tail(self, small_series):
        """Paper: 'the Gamma distribution provides an adequate fit for
        the lower end'."""
        from repro.experiments.fig05_lefttail import left_tail_log_deviation

        out = left_tail_comparison(small_series)
        assert left_tail_log_deviation(out, "gamma") < 0.5

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            left_tail_comparison(np.linspace(-1, 100, 500))
