"""Tests for the classical Markov-modulated fluid model."""

import numpy as np
import pytest

from repro.core.markov_fluid import MarkovFluidModel


@pytest.fixture(scope="module")
def model():
    return MarkovFluidModel(n_minisources=20, on_probability=0.4, rate_per_source=1000.0, time_constant=10.0)


class TestMoments:
    def test_mean_formula(self, model):
        assert model.mean() == pytest.approx(20 * 0.4 * 1000.0)

    def test_var_formula(self, model):
        assert model.var() == pytest.approx(20 * 0.4 * 0.6 * 1000.0**2)

    def test_acf_exponential(self, model):
        acf = model.acf(3)
        np.testing.assert_allclose(acf, np.exp(-np.arange(4) / 10.0))


class TestGeneration:
    def test_sample_mean(self, model, rng):
        x = model.generate(50_000, rng=rng)
        assert np.mean(x) == pytest.approx(model.mean(), rel=0.05)

    def test_sample_variance(self, model, rng):
        x = model.generate(50_000, rng=rng)
        assert np.var(x) == pytest.approx(model.var(), rel=0.15)

    def test_sample_acf(self, model, rng):
        x = model.generate(100_000, rng=rng)
        r1 = np.corrcoef(x[:-1], x[1:])[0, 1]
        assert r1 == pytest.approx(np.exp(-1 / 10.0), abs=0.03)

    def test_rate_quantized_to_sources(self, model, rng):
        """Output is always (number on) * A."""
        x = model.generate(2_000, rng=rng)
        counts = x / model.rate_per_source
        np.testing.assert_allclose(counts, np.round(counts))
        assert counts.max() <= model.n_minisources

    def test_is_srd(self, model, rng):
        from repro.analysis.hurst import variance_time

        x = model.generate(2**15, rng=rng)
        est = variance_time(x, fit_range=(100, 2000))
        assert est.hurst < 0.62

    def test_reproducible(self, model):
        a = model.generate(500, rng=np.random.default_rng(1))
        b = model.generate(500, rng=np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)


class TestFit:
    def test_moment_match(self, small_series):
        fitted = MarkovFluidModel.fit(small_series, n_minisources=20)
        assert fitted.mean() == pytest.approx(float(np.mean(small_series)), rel=1e-9)
        assert fitted.var() == pytest.approx(float(np.var(small_series)), rel=1e-9)

    def test_time_constant_positive(self, small_series):
        fitted = MarkovFluidModel.fit(small_series)
        assert fitted.time_constant > 1.0

    def test_underestimates_real_buffers(self, small_series):
        """The paper's warning, on the historical model itself.

        Classical Markov-fluid fits were calibrated on seconds-long
        test sequences, i.e. against the *short-lag* ACF (here lags
        <= 10).  Such a model matches mean, variance and short-range
        correlations of the trace yet needs a several-fold smaller
        zero-loss buffer -- the "overly optimistic" failure mode.
        (Fitting tau against hundreds of lags narrows the gap at this
        trace length but can never close it: the LRD excursions grow
        with the horizon while the exponential model's saturate.)"""
        from repro.simulation.queue import max_backlog

        x = small_series
        fitted = MarkovFluidModel.fit(x, acf_fit_lags=10)
        y = fitted.generate(x.size, rng=np.random.default_rng(5))
        c = float(np.mean(x)) * 1.10
        assert max_backlog(x, c) > 1.8 * max_backlog(y, c)

    def test_rejects_degenerate_data(self):
        with pytest.raises(ValueError):
            MarkovFluidModel.fit(np.ones(1000))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MarkovFluidModel(0, 0.5, 1.0, 10.0)
        with pytest.raises(ValueError):
            MarkovFluidModel(10, 1.0, 1.0, 10.0)
        with pytest.raises(ValueError):
            MarkovFluidModel(10, 0.5, 0.0, 10.0)
