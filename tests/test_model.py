"""Tests for the four-parameter Garrett-Willinger VBR video model."""

import numpy as np
import pytest

from repro.core.model import VBRVideoModel
from repro.distributions import GammaParetoHybrid


@pytest.fixture(scope="module")
def model():
    return VBRVideoModel(27_791.0, 6_254.0, 12.0, 0.8)


class TestConstruction:
    def test_parameters_property(self, model):
        assert model.parameters == (27_791.0, 6_254.0, 12.0, 0.8)

    def test_marginal_is_hybrid(self, model):
        assert isinstance(model.marginal, GammaParetoHybrid)

    def test_rejects_invalid_hurst(self):
        with pytest.raises(ValueError):
            VBRVideoModel(100.0, 20.0, 5.0, 1.0)

    def test_rejects_invalid_moments(self):
        with pytest.raises(ValueError):
            VBRVideoModel(-1.0, 20.0, 5.0, 0.8)
        with pytest.raises(ValueError):
            VBRVideoModel(100.0, 0.0, 5.0, 0.8)


class TestGeneration:
    def test_marginal_statistics(self, model, rng):
        y = model.generate(20_000, rng=rng, generator="davies-harte")
        assert np.all(y > 0)
        assert np.mean(y) == pytest.approx(model.marginal.mean(), rel=0.05)
        assert np.std(y) == pytest.approx(model.marginal.std(), rel=0.25)

    def test_marginal_quantiles(self, model, rng):
        y = model.generate(40_000, rng=rng, generator="davies-harte")
        for q in (0.25, 0.5, 0.75, 0.95):
            assert np.quantile(y, q) == pytest.approx(model.marginal.ppf(q), rel=0.05)

    def test_hurst_preserved_through_transform(self, model):
        """The paper verifies realizations agree with the model's H."""
        from repro.analysis.hurst import variance_time

        y = model.generate(2**14, rng=np.random.default_rng(6), generator="davies-harte")
        assert variance_time(y).hurst == pytest.approx(0.8, abs=0.08)

    def test_hosking_and_davies_harte_statistically_equivalent(self, model):
        y1 = model.generate(4_000, rng=np.random.default_rng(1), generator="hosking")
        y2 = model.generate(4_000, rng=np.random.default_rng(1), generator="davies-harte")
        assert np.mean(y1) == pytest.approx(np.mean(y2), rel=0.05)

    def test_table_method(self, model, rng):
        y = model.generate(2_000, rng=rng, generator="davies-harte", method="table")
        assert np.all(np.isfinite(y))
        assert np.all(y > 0)

    def test_rejects_unknown_generator(self, model, rng):
        with pytest.raises(ValueError):
            model.generate(100, rng=rng, generator="magic")

    def test_gaussian_intermediate(self, model, rng):
        x = model.generate_gaussian(5_000, rng=rng, generator="davies-harte")
        # LRD sample means converge as n^(H-1): sigma ~ 5000^-0.2 =
        # 0.18, so a 3-sigma band is the honest tolerance here.
        assert np.mean(x) == pytest.approx(0.0, abs=0.6)
        assert np.var(x) == pytest.approx(1.0, abs=0.3)

    def test_generate_trace(self, model, rng):
        trace = model.generate_trace(1_000, rng=rng, generator="davies-harte")
        assert trace.n_frames == 1_000
        assert trace.frame_rate == 24.0
        assert trace.slices_per_frame == 30

    def test_reproducible(self, model):
        a = model.generate(500, rng=np.random.default_rng(3), generator="davies-harte")
        b = model.generate(500, rng=np.random.default_rng(3), generator="davies-harte")
        np.testing.assert_array_equal(a, b)


class TestFit:
    def test_fit_roundtrip(self, model):
        """Fitting the model to its own output recovers the parameters
        (the paper's own validation of the generation procedure)."""
        y = model.generate(2**15, rng=np.random.default_rng(11), generator="davies-harte")
        fitted = VBRVideoModel.fit(y, tail_fraction=model.marginal.tail_mass)
        assert fitted.mu_gamma == pytest.approx(model.marginal.mean(), rel=0.02)
        assert fitted.sigma_gamma == pytest.approx(model.marginal.std(), rel=0.15)
        assert fitted.tail_shape == pytest.approx(12.0, rel=0.35)
        assert fitted.hurst == pytest.approx(0.8, abs=0.1)

    def test_fit_from_trace(self, small_series):
        fitted = VBRVideoModel.fit(small_series)
        assert 0.6 < fitted.hurst < 0.95
        assert fitted.mu_gamma == pytest.approx(float(np.mean(small_series)), rel=1e-9)

    def test_fit_estimator_choices(self, small_series):
        h_vt = VBRVideoModel.fit(small_series, hurst_estimator="variance-time").hurst
        h_rs = VBRVideoModel.fit(small_series, hurst_estimator="rs").hurst
        assert h_vt == pytest.approx(h_rs, abs=0.15)

    def test_fit_rejects_unknown_estimator(self, small_series):
        with pytest.raises(ValueError):
            VBRVideoModel.fit(small_series, hurst_estimator="psychic")
