"""Tests for multiplexing and loss metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.metrics import windowed_loss_rate, worst_errored_second_loss
from repro.simulation.multiplex import multiplex_series, multiplex_trace, random_lags


class TestRandomLags:
    def test_single_source(self, rng):
        np.testing.assert_array_equal(random_lags(1, 1000, rng=rng), [0])

    def test_first_lag_zero(self, rng):
        lags = random_lags(5, 100_000, rng=rng)
        assert lags[0] == 0

    def test_separation_respected(self, rng):
        for _ in range(20):
            lags = random_lags(10, 30_000, min_separation=1000, rng=rng)
            ordered = np.sort(lags)
            gaps = np.diff(np.concatenate((ordered, [ordered[0] + 30_000])))
            assert gaps.min() >= 1000

    def test_tight_packing_succeeds(self, rng):
        """20 sources, 1000 apart, in a 21,000-frame circle: nearly
        fully packed; the constructive sampler must still succeed."""
        lags = random_lags(20, 21_000, min_separation=1000, rng=rng)
        ordered = np.sort(lags)
        gaps = np.diff(np.concatenate((ordered, [ordered[0] + 21_000])))
        assert gaps.min() >= 1000

    def test_infeasible_raises(self, rng):
        with pytest.raises(ValueError):
            random_lags(10, 5_000, min_separation=1000, rng=rng)

    def test_lags_within_range(self, rng):
        lags = random_lags(7, 50_000, rng=rng)
        assert np.all((lags >= 0) & (lags < 50_000))

    def test_randomness(self):
        a = random_lags(5, 100_000, rng=np.random.default_rng(1))
        b = random_lags(5, 100_000, rng=np.random.default_rng(2))
        assert not np.array_equal(a, b)


class TestMultiplexSeries:
    def test_sum_preserved(self, rng):
        x = rng.uniform(size=1000)
        agg = multiplex_series(x, [0, 100, 555])
        assert agg.sum() == pytest.approx(3 * x.sum())

    def test_zero_lags_triple(self, rng):
        x = rng.uniform(size=100)
        np.testing.assert_allclose(multiplex_series(x, [0, 0, 0]), 3 * x)

    def test_shifted_copies(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        agg = multiplex_series(x, [0, 1])
        np.testing.assert_allclose(agg, x + np.roll(x, -1))

    def test_mean_scales_with_n(self, small_series, rng):
        lags = random_lags(5, small_series.size, rng=rng)
        agg = multiplex_series(small_series, lags)
        assert agg.mean() == pytest.approx(5 * small_series.mean())

    def test_smoothing_effect(self, small_series, rng):
        """Multiplexing reduces the aggregate CoV (the SMG mechanism)."""
        lags = random_lags(10, small_series.size, rng=rng)
        agg = multiplex_series(small_series, lags)
        cov_agg = agg.std() / agg.mean()
        cov_one = small_series.std() / small_series.mean()
        assert cov_agg < 0.6 * cov_one

    def test_rejects_empty_lags(self, rng):
        with pytest.raises(ValueError):
            multiplex_series(rng.uniform(size=10), [])


class TestMultiplexTrace:
    def test_frame_unit(self, small_trace):
        agg = multiplex_trace(small_trace, [0, 5_000], unit="frame")
        assert agg.size == small_trace.n_frames

    def test_slice_unit_frame_aligned(self, small_trace):
        agg = multiplex_trace(small_trace, [0, 5_000], unit="slice")
        assert agg.size == small_trace.n_frames * small_trace.slices_per_frame
        # Summing slices per frame equals the frame-level aggregate.
        frame_agg = multiplex_trace(small_trace, [0, 5_000], unit="frame")
        np.testing.assert_allclose(
            agg.reshape(-1, small_trace.slices_per_frame).sum(axis=1), frame_agg
        )

    def test_rejects_bad_unit(self, small_trace):
        with pytest.raises(ValueError):
            multiplex_trace(small_trace, [0], unit="minute")


class TestWorstErroredSecond:
    def test_basic(self):
        loss = np.array([0.0, 0.0, 5.0, 0.0])
        arr = np.array([10.0, 10.0, 10.0, 10.0])
        # 2 slots per "second": seconds have loss 0 and 5, offered 20.
        assert worst_errored_second_loss(loss, arr, 2) == pytest.approx(0.25)

    def test_zero_when_no_loss(self, rng):
        arr = rng.uniform(1, 2, size=100)
        assert worst_errored_second_loss(np.zeros(100), arr, 10) == 0.0

    def test_skips_empty_seconds(self):
        loss = np.array([0.0, 0.0, 1.0, 1.0])
        arr = np.array([0.0, 0.0, 4.0, 4.0])
        assert worst_errored_second_loss(loss, arr, 2) == pytest.approx(0.25)

    def test_partial_second_dropped(self):
        loss = np.array([0.0, 0.0, 99.0])
        arr = np.array([1.0, 1.0, 99.0])
        assert worst_errored_second_loss(loss, arr, 2) == 0.0

    def test_wes_at_least_overall(self, rng):
        """The worst second is never better than the average."""
        loss = rng.uniform(0, 1, size=1000) * (rng.uniform(size=1000) < 0.1)
        arr = rng.uniform(5, 10, size=1000)
        wes = worst_errored_second_loss(loss, arr, 24)
        overall = loss.sum() / arr.sum()
        assert wes >= overall

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            worst_errored_second_loss([1.0], [1.0, 2.0], 1)

    def test_too_short_series(self):
        with pytest.raises(ValueError):
            worst_errored_second_loss([1.0], [1.0], 2)


class TestWindowedLoss:
    def test_matches_direct_windows(self, rng):
        loss = rng.uniform(0, 1, size=50)
        arr = rng.uniform(1, 2, size=50)
        centers, rates = windowed_loss_rate(loss, arr, 10)
        assert rates.size == 41
        assert rates[0] == pytest.approx(loss[:10].sum() / arr[:10].sum())
        assert rates[-1] == pytest.approx(loss[-10:].sum() / arr[-10:].sum())

    def test_zero_offered_windows(self):
        loss = np.zeros(5)
        arr = np.zeros(5)
        _, rates = windowed_loss_rate(loss, arr, 2)
        np.testing.assert_array_equal(rates, 0.0)

    def test_rejects_oversized_window(self):
        with pytest.raises(ValueError):
            windowed_loss_rate([0.0], [1.0], 2)


@settings(max_examples=25, deadline=None)
@given(
    n_sources=st.integers(2, 15),
    seed=st.integers(0, 1000),
)
def test_multiplex_conservation_property(n_sources, seed):
    """Property: aggregate traffic conserves total bytes exactly."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(size=2_000)
    lags = random_lags(n_sources, x.size, min_separation=10, rng=rng)
    agg = multiplex_series(x, lags)
    assert agg.sum() == pytest.approx(n_sources * x.sum(), rel=1e-12)


class TestMultiplexHeterogeneous:
    def test_sum_preserved(self, rng):
        from repro.simulation.multiplex import multiplex_heterogeneous

        a = rng.uniform(size=500)
        b = rng.uniform(size=500)
        agg = multiplex_heterogeneous([a, b], lags=[0, 100])
        assert agg.sum() == pytest.approx(a.sum() + b.sum())

    def test_explicit_lags(self):
        from repro.simulation.multiplex import multiplex_heterogeneous

        a = np.array([1.0, 0.0, 0.0])
        b = np.array([0.0, 2.0, 0.0])
        agg = multiplex_heterogeneous([a, b], lags=[0, 1])
        np.testing.assert_allclose(agg, [1.0 + 2.0, 0.0, 0.0])

    def test_random_lags_drawn(self, rng):
        from repro.simulation.multiplex import multiplex_heterogeneous

        a = rng.uniform(size=100)
        agg = multiplex_heterogeneous([a, a, a], rng=rng)
        assert agg.shape == (100,)

    def test_mixed_trace_and_model_sources(self, small_series, rng):
        """The intended use: real trace copies plus model sources."""
        from repro.core.model import VBRVideoModel
        from repro.simulation.multiplex import multiplex_heterogeneous

        model = VBRVideoModel(27_791.0, 6_254.0, 12.0, 0.8)
        synthetic = model.generate(small_series.size, rng=rng, generator="davies-harte")
        agg = multiplex_heterogeneous([small_series, synthetic], rng=rng)
        assert agg.mean() == pytest.approx(
            small_series.mean() + synthetic.mean(), rel=1e-9
        )

    def test_rejects_length_mismatch(self, rng):
        from repro.simulation.multiplex import multiplex_heterogeneous

        with pytest.raises(ValueError):
            multiplex_heterogeneous([np.ones(10), np.ones(11)])

    def test_rejects_empty(self):
        from repro.simulation.multiplex import multiplex_heterogeneous

        with pytest.raises(ValueError):
            multiplex_heterogeneous([])

    def test_rejects_wrong_lag_count(self, rng):
        from repro.simulation.multiplex import multiplex_heterogeneous

        with pytest.raises(ValueError):
            multiplex_heterogeneous([np.ones(5), np.ones(5)], lags=[0])
