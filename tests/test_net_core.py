"""repro.net core: event scheduler, disciplines, slot-fluid helper."""

import numpy as np
import pytest

from repro.net import (
    EventScheduler,
    FIFODiscipline,
    PHASE_ARRIVAL,
    PriorityDiscipline,
    WFQDiscipline,
    make_discipline,
)
from repro.simulation.slotfluid import clamp_backlog, fold_slots, slot_step


class TestEventScheduler:
    def test_dispatches_in_time_order(self):
        sched = EventScheduler()
        seen = []
        for t in (3.0, 1.0, 2.0):
            sched.schedule(t, seen.append, t)
        sched.run()
        assert seen == [1.0, 2.0, 3.0]

    def test_fifo_tie_break_at_equal_time(self):
        sched = EventScheduler()
        seen = []
        for i in range(50):
            sched.schedule(1.0, seen.append, i)
        sched.run()
        assert seen == list(range(50))

    def test_arrival_phase_precedes_service_phase(self):
        sched = EventScheduler()
        seen = []
        sched.schedule(1.0, seen.append, "service")
        sched.schedule(1.0, seen.append, "arrival", phase=PHASE_ARRIVAL)
        sched.run()
        assert seen == ["arrival", "service"]

    def test_events_scheduled_during_run_are_honoured(self):
        sched = EventScheduler()
        seen = []

        def chain(k):
            seen.append(k)
            if k < 4:
                sched.schedule(sched.now + 1.0, chain, k + 1)

        sched.schedule(0.0, chain, 0)
        sched.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_until_horizon_is_exclusive(self):
        sched = EventScheduler()
        seen = []
        for t in (0.0, 1.0, 2.0):
            sched.schedule(t, seen.append, t)
        sched.run(until=2.0)
        assert seen == [0.0, 1.0]

    def test_scheduling_into_the_past_raises(self):
        sched = EventScheduler()
        sched.schedule(2.0, lambda: None)
        sched.run()
        with pytest.raises(ValueError, match="past"):
            sched.schedule(1.0, lambda: None)

    def test_trace_records_dispatch_order(self):
        sched = EventScheduler(record_trace=True)
        sched.schedule(1.0, lambda: None, label="b")
        sched.schedule(0.0, lambda: None, label="a")
        sched.run()
        assert [e[3] for e in sched.trace] == ["a", "b"]
        assert sched.events_dispatched == 2


class TestSlotFluidHelpers:
    def test_fold_slots_matches_repeated_slot_step(self, rng):
        arrivals = rng.gamma(2.0, 400.0, size=300)
        c, q = 900.0, 2_500.0
        backlog = lost = peak = total = 0.0
        losses = []
        for a in arrivals:
            total += a
            backlog, _, drop = slot_step(backlog, a, c, q)
            lost += drop
            losses.append(drop)
            peak = max(peak, backlog)
        series = np.zeros(arrivals.size)
        state = fold_slots(arrivals.tolist(), c, q, loss_series=series)
        assert state == (backlog, lost, peak, total)
        assert series.tolist() == losses

    def test_clamp_backlog_overflow_and_floor(self):
        assert clamp_backlog(5.0, 3.0) == (3.0, 2.0)
        assert clamp_backlog(-1.0, 3.0) == (0.0, 0.0)
        assert clamp_backlog(2.0, 3.0) == (2.0, 0.0)


class TestDisciplines:
    def test_fifo_single_flow_is_the_slot_recursion(self, rng):
        arrivals = rng.gamma(2.0, 500.0, size=200)
        c, q = 1_100.0, 3_000.0
        disc = FIFODiscipline(c, q)
        disc.register("f")
        backlog = 0.0
        for a in arrivals:
            expect_backlog, expect_served, expect_lost = slot_step(backlog, a, c, q)
            result = disc.step({"f": float(a)})
            assert result.backlog == expect_backlog
            assert result.served_total == expect_served
            assert result.lost_total == expect_lost
            backlog = expect_backlog

    def test_fifo_multi_flow_conserves_and_apportions(self):
        disc = FIFODiscipline(10.0, 5.0)
        disc.register("a")
        disc.register("b")
        result = disc.step({"a": 12.0, "b": 6.0})
        # Aggregate follows the recursion: serve 10, keep 5, drop 3.
        assert result.served_total == 10.0
        assert result.backlog == 5.0
        assert result.lost_total == pytest.approx(3.0)
        # Proportional split: a has 2/3 of the fluid.
        assert result.served["a"] == pytest.approx(result.served["b"] * 2.0)
        offered = 18.0
        accounted = (
            result.served_total + result.lost_total + disc.backlog
        )
        assert accounted == pytest.approx(offered)

    def test_priority_protects_high_class(self):
        disc = PriorityDiscipline(10.0, 4.0)
        disc.register("hi", priority=0)
        disc.register("lo", priority=1)
        result = disc.step({"hi": 8.0, "lo": 12.0})
        assert result.served["hi"] == 8.0
        assert result.served["lo"] == 2.0
        # 10 bytes of low left vs a 4-byte buffer: the 6-byte overflow
        # is pushed out of the low class only.
        assert result.lost == {"lo": pytest.approx(6.0)}
        assert disc.backlog == pytest.approx(4.0)

    def test_wfq_divides_by_weight_and_is_work_conserving(self):
        disc = WFQDiscipline(12.0, 100.0)
        disc.register("a", weight=2.0)
        disc.register("b", weight=1.0)
        result = disc.step({"a": 20.0, "b": 20.0})
        assert result.served["a"] == pytest.approx(8.0)
        assert result.served["b"] == pytest.approx(4.0)
        # Work conservation: a's unused share flows to b.
        disc2 = WFQDiscipline(12.0, 100.0)
        disc2.register("a", weight=2.0)
        disc2.register("b", weight=1.0)
        result = disc2.step({"a": 2.0, "b": 20.0})
        assert result.served["a"] == pytest.approx(2.0)
        assert result.served["b"] == pytest.approx(10.0)

    def test_unregistered_flow_is_rejected(self):
        disc = make_discipline("fifo", 10.0, 5.0)
        with pytest.raises(KeyError, match="never registered"):
            disc.step({"ghost": 1.0})

    def test_duplicate_registration_is_rejected(self):
        disc = make_discipline("wfq", 10.0, 5.0)
        disc.register("f")
        with pytest.raises(ValueError, match="already registered"):
            disc.register("f")

    def test_unknown_discipline_name(self):
        with pytest.raises(ValueError, match="discipline"):
            make_discipline("lifo", 10.0, 5.0)

    @pytest.mark.parametrize("name", ["fifo", "priority", "wfq"])
    def test_non_finite_parameters_are_rejected(self, name):
        for bad in (float("nan"), float("inf")):
            with pytest.raises(ValueError):
                make_discipline(name, bad, 5.0)
            with pytest.raises(ValueError):
                make_discipline(name, 10.0, bad)
