"""repro.net topology: the anchor invariant, conservation, specs, sweeps."""

import numpy as np
import pytest

from repro.net import Link, Node, build_network, run_topology, sweep_topologies
from repro.simulation.queue import simulate_queue


def single_hop_spec(values, capacity, buffer_bytes, **extra):
    spec = {
        "slots": len(values),
        "nodes": [
            {"name": "a", "buffer_bytes": buffer_bytes},
            {"name": "b", "buffer_bytes": 0.0},
        ],
        "links": [{"src": "a", "dst": "b", "capacity_per_slot": capacity}],
        "flows": [
            {"name": "f", "path": ["a", "b"],
             "source": {"kind": "array", "values": list(values)}}
        ],
    }
    spec.update(extra)
    return spec


class TestSingleQueueAnchor:
    """A one-flow one-hop FIFO topology IS the paper's single queue."""

    def test_matches_simulate_queue_bit_for_bit(self, rng):
        arrivals = rng.gamma(2.0, 500.0, size=1_000)
        capacity, buffer_bytes = 1_100.0, 3_000.0
        ref = simulate_queue(arrivals, capacity, buffer_bytes, return_series=True)
        result = run_topology(
            single_hop_spec(arrivals.tolist(), capacity, buffer_bytes,
                            record_series=True)
        )
        port = result["ports"]["a->b"]
        assert port["lost_bytes"] == ref.lost_bytes
        assert port["final_backlog"] == ref.final_backlog
        assert port["peak_backlog"] == ref.peak_backlog
        assert port["offered_bytes"] == ref.total_bytes
        series = result["series"]["a->b"]
        assert np.array_equal(series["loss"], ref.loss_series)
        # Backlog trajectory: replay the recursion and compare exactly.
        b = 0.0
        expect = []
        for a in arrivals:
            b += float(a) - capacity
            if b > buffer_bytes:
                b = buffer_bytes
            elif b < 0.0:
                b = 0.0
            expect.append(b)
        assert series["backlog"].tolist() == expect

    @pytest.mark.parametrize("buffer_bytes", [0.0, 500.0, 1e9])
    def test_anchor_holds_across_buffer_regimes(self, rng, buffer_bytes):
        arrivals = rng.gamma(2.0, 500.0, size=400)
        capacity = 950.0
        ref = simulate_queue(arrivals, capacity, buffer_bytes)
        result = run_topology(single_hop_spec(arrivals.tolist(), capacity, buffer_bytes))
        port = result["ports"]["a->b"]
        assert port["lost_bytes"] == ref.lost_bytes
        assert port["final_backlog"] == ref.final_backlog
        assert port["peak_backlog"] == ref.peak_backlog


class TestConservation:
    def test_offered_equals_delivered_plus_lost_plus_in_network(self, rng):
        arrivals = rng.gamma(2.0, 800.0, size=500)
        spec = {
            "slots": 500,
            "nodes": [{"name": n, "buffer_bytes": 4_000.0} for n in "abcd"],
            "links": [
                {"src": "a", "dst": "b", "capacity_per_slot": 1_500.0},
                {"src": "b", "dst": "c", "capacity_per_slot": 1_450.0,
                 "delay_slots": 2},
                {"src": "c", "dst": "d", "capacity_per_slot": 1_400.0},
            ],
            "flows": [{"name": "f", "path": ["a", "b", "c", "d"],
                       "source": {"kind": "array", "values": arrivals.tolist()}}],
        }
        result = run_topology(spec)
        flow = result["flows"]["f"]
        in_buffers = sum(p["final_backlog"] for p in result["ports"].values())
        # In-flight fluid: served upstream but not yet arrived downstream
        # when the horizon cut the run.
        in_flight = sum(
            p["served_bytes"] for p in result["ports"].values()
        ) - sum(
            p["offered_bytes"] for p in list(result["ports"].values())[1:]
        ) - flow["delivered_bytes"]
        total = flow["delivered_bytes"] + flow["lost_bytes"] + in_buffers + in_flight
        assert total == pytest.approx(flow["offered_bytes"], rel=1e-12)

    def test_propagation_delay_shifts_delivery(self):
        values = [5.0] + [0.0] * 9
        base = run_topology(single_hop_spec(values, 10.0, 100.0))
        spec = single_hop_spec(values, 10.0, 100.0)
        spec["links"][0]["delay_slots"] = 3
        delayed = run_topology(spec)
        assert base["flows"]["f"]["first_delivery_slot"] == 1.0
        assert delayed["flows"]["f"]["first_delivery_slot"] == 4.0
        assert delayed["flows"]["f"]["delivered_bytes"] == 5.0


class TestSpecs:
    def test_unknown_node_in_link_is_rejected(self):
        spec = single_hop_spec([1.0], 10.0, 5.0)
        spec["links"][0]["dst"] = "ghost"
        with pytest.raises((ValueError, KeyError)):
            run_topology(spec)

    def test_unknown_node_in_path_is_rejected(self):
        spec = single_hop_spec([1.0], 10.0, 5.0)
        spec["flows"][0]["path"] = ["a", "ghost"]
        with pytest.raises(ValueError, match="unknown node"):
            run_topology(spec)

    def test_missing_link_on_path_is_rejected(self):
        spec = single_hop_spec([1.0], 10.0, 5.0)
        spec["nodes"].append({"name": "c", "buffer_bytes": 0.0})
        spec["flows"][0]["path"] = ["a", "c"]
        with pytest.raises(KeyError, match="no link"):
            run_topology(spec)

    def test_duplicate_names_are_rejected(self):
        spec = single_hop_spec([1.0], 10.0, 5.0)
        spec["nodes"].append({"name": "a", "buffer_bytes": 0.0})
        with pytest.raises(ValueError, match="duplicate node"):
            run_topology(spec)

    def test_empty_sections_are_rejected(self):
        spec = single_hop_spec([1.0], 10.0, 5.0)
        spec["flows"] = []
        with pytest.raises(ValueError, match="flows"):
            run_topology(spec)

    def test_bad_source_kind_is_rejected(self):
        spec = single_hop_spec([1.0], 10.0, 5.0)
        spec["flows"][0]["source"] = {"kind": "quantum"}
        with pytest.raises(ValueError, match="kind"):
            run_topology(spec)

    def test_network_runs_exactly_once(self):
        net = build_network(single_hop_spec([1.0, 2.0], 10.0, 5.0))
        net.run(2)
        with pytest.raises(RuntimeError, match="exactly once"):
            net.run(2)

    def test_link_validation(self):
        with pytest.raises(ValueError, match="loop"):
            Link("a", "a", 10.0)
        with pytest.raises(ValueError):
            Link("a", "b", 0.0)
        with pytest.raises(ValueError):
            Link("a", "b", float("nan"))
        with pytest.raises(ValueError):
            Link("a", "b", 10.0, delay_slots=-1)
        assert Link("a", "b", 10.0, delay_slots=2).latency_slots == 3

    def test_node_validation(self):
        with pytest.raises(ValueError):
            Node("n", float("inf"))
        node = Node("n", 10.0)
        with pytest.raises(ValueError, match="originate"):
            node.attach(Link("other", "n", 5.0))

    def test_fgn_source_is_seed_reproducible(self):
        spec = single_hop_spec([0.0], 30_000.0, 50_000.0)
        spec["slots"] = 300
        spec["flows"][0]["source"] = {
            "kind": "fgn", "hurst": 0.8, "seed": 5, "marginal": "paper",
            "block_size": 2_048, "overlap": 128,
        }
        a = run_topology(dict(spec))
        b = run_topology(dict(spec))
        assert a["flows"] == b["flows"]
        assert a["ports"] == b["ports"]
        assert a["flows"]["f"]["offered_bytes"] > 0


class TestSweep:
    def test_sweep_preserves_spec_order_and_results(self, rng):
        specs = []
        for i in range(3):
            arrivals = rng.gamma(2.0, 500.0, size=200)
            specs.append(single_hop_spec(arrivals.tolist(), 1_000.0 + 50.0 * i, 2_000.0))
        serial = sweep_topologies(specs, workers=1)
        assert [r["ports"]["a->b"]["capacity_per_slot"] for r in serial] == [
            1_000.0, 1_050.0, 1_100.0
        ]
        expected = [
            simulate_queue(np.asarray(s["flows"][0]["source"]["values"]),
                           s["links"][0]["capacity_per_slot"], 2_000.0).lost_bytes
            for s in specs
        ]
        assert [r["ports"]["a->b"]["lost_bytes"] for r in serial] == expected

    def test_sweep_empty_is_empty(self):
        assert sweep_topologies([]) == []
