"""Tests for repro.obs: spans, metrics, exporters, logging, manifests.

The observability layer underpins every instrumented subsystem, so
these tests pin down its contracts: span trees survive exceptions and
abandoned children, histogram bucket edges follow Prometheus ``le``
(inclusive) semantics, the two Prometheus renderings (live registry
vs. a run.json dump) parse identically, and the whole stack stays
correct when ParallelSources drives it from worker threads.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

import repro.obs as obs
from repro.distributions.hybrid import GammaParetoHybrid
from repro.obs import bench, log as obs_log, metrics, trace
from repro.obs.report import RUN_SCHEMA, RunReport, profile
from repro.stream import BlockFGNSource, OnlineMoments, ParallelSources, Stream

TARGET = GammaParetoHybrid(27_791.0, 6_254.0, 12.0)


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts disabled with empty collectors and leaves the
    process the same way (module-level metric objects keep existing --
    only their values are cleared)."""
    obs.disable()
    trace.reset()
    metrics.registry().reset()
    yield
    obs.disable()
    trace.reset()
    metrics.registry().reset()


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_disabled_span_records_nothing(self):
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        assert trace.snapshot() == []

    def test_disabled_span_is_shared_null_object(self):
        assert trace.span("a") is trace.span("b")

    def test_nesting_builds_a_tree(self):
        obs.enable()
        with trace.span("outer", n=2):
            with trace.span("inner"):
                pass
            with trace.span("inner"):
                pass
        (root,) = trace.snapshot()
        assert root["name"] == "outer"
        assert root["attrs"] == {"n": 2}
        assert [c["name"] for c in root["children"]] == ["inner", "inner"]
        assert root["wall_s"] >= 0.0 and root["cpu_s"] >= 0.0

    def test_exception_is_recorded_and_propagates(self):
        obs.enable()
        with pytest.raises(ValueError, match="boom"):
            with trace.span("outer"):
                with trace.span("inner"):
                    raise ValueError("boom")
        (root,) = trace.snapshot()
        # The raise passes through both __exit__s, so both record it.
        assert root["error"] == "ValueError"
        assert root["children"][0]["error"] == "ValueError"
        assert trace.aggregate()["inner"]["errors"] == 1

    def test_abandoned_child_is_unwound(self):
        """A child whose __exit__ never ran (abandoned generator) must
        not corrupt the stack: the parent's exit unwinds past it."""
        obs.enable()
        outer = trace.span("outer")
        outer.__enter__()
        trace.span("abandoned").__enter__()  # never exited
        outer.__exit__(None, None, None)
        (root,) = trace.snapshot()
        assert root["name"] == "outer"
        with trace.span("next"):  # stack is usable again
            pass
        assert len(trace.snapshot()) == 2

    def test_set_updates_attrs_mid_span(self):
        obs.enable()
        with trace.span("s", a=1) as sp:
            sp.set(b=2)
        (root,) = trace.snapshot()
        assert root["attrs"] == {"a": 1, "b": 2}

    def test_aggregate_rolls_up_by_name(self):
        obs.enable()
        for _ in range(3):
            with trace.span("outer"):
                with trace.span("inner"):
                    pass
        totals = trace.aggregate()
        assert totals["outer"]["count"] == 3
        assert totals["inner"]["count"] == 3
        assert totals["outer"]["wall_s"] >= totals["inner"]["wall_s"]


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestHistogram:
    def test_bucket_edges_are_le_inclusive(self):
        obs.enable()
        h = metrics.Histogram("repro_test_edges_seconds", buckets=(1.0, 2.0, 5.0))
        for v in (0.5, 1.0, 1.5, 2.0, 5.0, 5.1):
            h.observe(v)
        # Cumulative le-counts: 1.0 holds {0.5, 1.0}; 2.0 adds
        # {1.5, 2.0}; 5.0 adds {5.0}; +Inf adds {5.1}.
        assert h.bucket_counts() == [2, 4, 5, 6]
        assert h.count == 6
        assert h.sum == pytest.approx(15.1)

    def test_buckets_must_be_increasing(self):
        with pytest.raises(ValueError):
            metrics.Histogram("repro_test_bad_seconds", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            metrics.Histogram("repro_test_dup_seconds", buckets=(1.0, 1.0))

    def test_disabled_observe_is_dropped(self):
        h = metrics.Histogram("repro_test_off_seconds", buckets=(1.0,))
        h.observe(0.5)
        assert h.count == 0


class TestCountersAndGauges:
    def test_counter_is_monotone(self):
        obs.enable()
        c = metrics.Counter("repro_test_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_counter_ignores_updates_while_disabled(self):
        c = metrics.Counter("repro_test_off_total")
        c.inc(10)
        assert c.value == 0.0

    def test_gauge_tracks_min_and_max(self):
        obs.enable()
        g = metrics.Gauge("repro_test_backlog")
        g.set(5.0)
        g.set(2.0)
        g.inc(10.0)
        doc = g.to_dict()
        assert doc["value"] == 12.0
        assert doc["min"] == 2.0 and doc["max"] == 12.0


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = metrics.registry()
        a = reg.counter("repro_test_shared_total", labels={"stage": "x"})
        b = reg.counter("repro_test_shared_total", labels={"stage": "x"})
        assert a is b

    def test_labels_separate_metrics_in_one_family(self):
        obs.enable()
        reg = metrics.registry()
        a = reg.counter("repro_test_family_total", labels={"stage": "a"})
        b = reg.counter("repro_test_family_total", labels={"stage": "b"})
        assert a is not b
        a.inc(1)
        b.inc(2)
        dump = reg.to_dict()
        assert dump['repro_test_family_total{stage="a"}']["value"] == 1.0
        assert dump['repro_test_family_total{stage="b"}']["value"] == 2.0

    def test_type_conflict_is_an_error(self):
        reg = metrics.registry()
        reg.counter("repro_test_conflict_total")
        with pytest.raises(TypeError):
            reg.gauge("repro_test_conflict_total")

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            metrics.Counter("0bad-name")


class TestExporters:
    def _populated_registry(self):
        obs.enable()
        reg = metrics.registry()
        reg.counter("repro_test_exp_total", help="a counter",
                    unit="samples", labels={"stage": "x"}).inc(7)
        reg.gauge("repro_test_exp_backlog", help="a gauge").set(3.5)
        h = reg.histogram("repro_test_exp_seconds", help="a histogram",
                          buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(2.0)
        return reg

    def test_prometheus_round_trip_live_vs_dump(self):
        """Rendering the live registry and re-rendering its JSON dump
        (the run.json path) must parse to the same samples."""
        reg = self._populated_registry()
        live = metrics.parse_prometheus_text(reg.to_prometheus())
        dumped = metrics.parse_prometheus_text(
            metrics.prometheus_from_dump(reg.to_dict())
        )
        assert live == dumped
        assert live['repro_test_exp_total{stage="x"}'] == 7.0
        assert live['repro_test_exp_seconds_bucket{le="+Inf"}'] == 3.0
        assert live['repro_test_exp_seconds_bucket{le="0.1"}'] == 1.0

    def test_json_dump_is_json_serializable(self):
        reg = self._populated_registry()
        doc = json.loads(json.dumps(reg.to_dict()))
        assert doc["repro_test_exp_backlog"]["value"] == 3.5


# ----------------------------------------------------------------------
# Logging
# ----------------------------------------------------------------------
class TestLogging:
    def test_human_format_appends_extra_fields(self, capsys):
        obs_log.configure(level="INFO", json_format=False)
        obs_log.get_logger("unit").info("hello", extra={"samples": 42})
        err = capsys.readouterr().err
        assert "INFO unit: hello" in err  # "repro." prefix stripped
        assert "samples=42" in err

    def test_json_format_emits_parseable_lines(self, capsys):
        obs_log.configure(level="INFO", json_format=True)
        obs_log.get_logger("unit").warning("warn", extra={"attempt": 2})
        line = capsys.readouterr().err.strip().splitlines()[-1]
        doc = json.loads(line)
        assert doc["level"] == "WARNING"
        assert doc["logger"] == "repro.unit"
        assert doc["msg"] == "warn"
        assert doc["attempt"] == 2

    def test_quiet_suppresses_info_but_not_warnings(self, capsys):
        obs_log.configure(level="INFO", quiet=True)
        logger = obs_log.get_logger("unit")
        logger.info("invisible")
        logger.warning("visible")
        err = capsys.readouterr().err
        assert "invisible" not in err
        assert "visible" in err

    def test_nothing_on_stdout(self, capsys):
        obs_log.configure(level="DEBUG")
        obs_log.get_logger("unit").info("to stderr only")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "to stderr only" in captured.err


# ----------------------------------------------------------------------
# Run manifests
# ----------------------------------------------------------------------
class TestRunReport:
    def test_profile_writes_manifest(self, tmp_path):
        path = tmp_path / "run.json"
        with profile("unit-test", config={"n": 10}, seed=3, path=path):
            with trace.span("work", n=10):
                metrics.registry().counter("repro_test_run_total").inc(10)
        doc = RunReport.load(path)
        assert doc["schema"] == RUN_SCHEMA
        assert doc["command"] == "unit-test"
        assert doc["config"] == {"n": 10} and doc["seed"] == 3
        assert doc["span_totals"]["work"]["count"] == 1
        assert doc["spans"][0]["name"] == "work"
        assert doc["metrics"]["repro_test_run_total"]["value"] == 10.0
        assert not obs.is_enabled()  # restored on exit

    def test_profile_records_failure_and_reraises(self, tmp_path):
        path = tmp_path / "run.json"
        with pytest.raises(RuntimeError):
            with profile("unit-test", path=path):
                raise RuntimeError("mid-run crash")
        doc = RunReport.load(path)
        assert doc["error"] == "RuntimeError: mid-run crash"
        assert "FAILED" in "\n".join(RunReport.format_lines(doc))

    def test_load_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "something-else"}))
        with pytest.raises(ValueError, match="schema"):
            RunReport.load(path)


# ----------------------------------------------------------------------
# Thread safety under the worker pool
# ----------------------------------------------------------------------
class TestThreadSafety:
    def test_parallel_sources_counts_exactly(self):
        """Four pool workers drive spans and shared counters at once;
        totals must come out exact, not approximately."""
        n, chunk = 131_072, 16_384
        gen_counter = metrics.registry().counter(
            "repro_generator_samples_total", labels={"generator": "paxson"}
        )
        stage_counter = metrics.registry().counter(
            "repro_stream_samples_total", labels={"stage": "source"}
        )
        before_gen, before_stage = gen_counter.value, stage_counter.value
        sources = [
            BlockFGNSource(0.8, block_size=chunk, overlap=1024, backend="paxson")
            for _ in range(4)
        ]
        with obs.enabled():
            stream = ParallelSources(sources).stream(
                n, chunk, rng=np.random.default_rng(5)
            ).metered("source")
            moments = OnlineMoments()
            stream.drain(moments)
        assert moments.count == n
        assert stage_counter.value - before_stage == n
        # Each of the 4 sources generated >= n samples (block overlap
        # means the generators produce more than they emit).
        assert gen_counter.value - before_gen >= 4 * n

    def test_concurrent_spans_stay_per_thread(self):
        obs.enable()
        errors = []

        def worker(tag):
            try:
                for _ in range(200):
                    with trace.span(f"outer.{tag}"):
                        with trace.span("inner"):
                            pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        roots = trace.snapshot()
        assert len(roots) == 4 * 200
        assert all(len(r["children"]) == 1 for r in roots)


# ----------------------------------------------------------------------
# Enabled-overhead budget (tier-2: timing-sensitive)
# ----------------------------------------------------------------------
@pytest.mark.tier2
@pytest.mark.statistical_retry
class TestOverheadBudget:
    def test_enabled_overhead_under_3_percent(self):
        """ISSUE acceptance: full tracing + metrics on the 1M-sample
        streamed paxson run costs < 3% (best-of-8, interleaved; single
        runs vary several percent, the minimum tracks the floor)."""
        n, chunk = 1_000_000, 65_536

        def run():
            src = BlockFGNSource(0.8, block_size=chunk, overlap=1024,
                                 backend="paxson")
            stream = (
                Stream.from_source(src, n, chunk, rng=np.random.default_rng(0))
                .metered("source")
                .transform(TARGET, method="table")
                .metered("transform")
            )
            import time
            moments = OnlineMoments()
            start = time.perf_counter()
            stream.drain(moments)
            assert moments.count == n
            return time.perf_counter() - start

        off = on = float("inf")
        for _ in range(8):
            obs.disable()
            off = min(off, run())
            with obs.enabled():
                on = min(on, run())
        assert on / off - 1.0 < 0.03, f"enabled obs cost {on / off - 1.0:.2%}"


# ----------------------------------------------------------------------
# Bench schema helpers
# ----------------------------------------------------------------------
class TestBenchHelpers:
    GOOD = {"name": "rate", "value": 100.0, "unit": "samples/s",
            "higher_is_better": True}

    def test_make_and_validate(self):
        doc = bench.make_bench([self.GOOD], generated_at="2026-01-01T00:00:00Z")
        bench.validate_bench(doc)
        assert doc["schema"] == bench.BENCH_SCHEMA

    def test_budget_violation_fails_validation(self):
        entry = dict(self.GOOD, budget=200.0)  # floor for higher-is-better
        with pytest.raises(ValueError, match="budget"):
            bench.validate_bench(bench.make_bench([entry]))

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError):
            bench.validate_bench(bench.make_bench([dict(self.GOOD, name="Bad Name")]))

    def test_diff_classifies_changes(self):
        baseline = bench.make_bench([
            dict(self.GOOD, name="fast"),
            dict(self.GOOD, name="slow"),
            dict(self.GOOD, name="gone"),
        ])
        current = bench.make_bench([
            dict(self.GOOD, name="fast", value=130.0),   # improved
            dict(self.GOOD, name="slow", value=70.0),    # regressed > 20%
            dict(self.GOOD, name="new"),
        ])
        diff = bench.diff_bench(baseline, current, tolerance=0.2)
        assert [r["name"] for r in diff["regressions"]] == ["slow"]
        assert diff["regressions"][0]["relative_change"] == pytest.approx(-0.3)
        assert [r["name"] for r in diff["improved"]] == ["fast"]
        assert diff["added"] == ["new"]
        assert diff["removed"] == ["gone"]

    def test_write_bench_merges_existing_entries(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        bench.write_bench(path, [dict(self.GOOD, name="a")])
        bench.write_bench(path, [dict(self.GOOD, name="b", value=5.0)])
        doc = bench.load_bench(path)
        assert [e["name"] for e in doc["benchmarks"]] == ["a", "b"]
        bench.write_bench(path, [dict(self.GOOD, name="a", value=1.0)])
        doc = bench.load_bench(path)
        assert doc["benchmarks"][0]["value"] == 1.0  # replaced, not duplicated
