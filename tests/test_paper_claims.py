"""The paper's Conclusions, stated as executable claims.

Each test quotes one claim from Section 6 (Conclusions) of Garrett &
Willinger and verifies it end-to-end on the library's reproduction.
This is the repository's contract with the paper: if any of these
break, the reproduction no longer supports the paper's argument.
"""

import numpy as np
import pytest


@pytest.fixture(scope="module")
def trace():
    from repro.experiments.data import reference_trace

    return reference_trace(n_frames=30_000, seed=9, with_slices=False)


class TestConclusionClaims:
    def test_interesting_characteristics_not_captured_by_common_models(self, trace):
        """'The interesting characteristics, which are not well captured
        by common analytic source models include a long-range dependent
        time correlation structure, and a heavy-tailed marginal
        distribution.'"""
        from repro.analysis.hurst import variance_time
        from repro.core.markov_fluid import MarkovFluidModel
        from repro.distributions.fitting import fit_pareto_tail_slope

        x = trace.frame_bytes
        # LRD present in the trace ...
        assert variance_time(x).hurst > 0.7
        # ... and a finite-slope power-law tail fits it ...
        a = fit_pareto_tail_slope(x, tail_fraction=0.02)
        assert 5.0 < a < 25.0
        # ... while the common (Markov-fluid) model is SRD by construction.
        mmf = MarkovFluidModel.fit(x)
        y = mmf.generate(2**15, rng=np.random.default_rng(1))
        assert variance_time(y, fit_range=(200, 3000)).hurst < 0.65

    def test_srd_models_overly_optimistic(self, trace):
        """'The use of SRD models when inappropriate, will result in
        overly optimistic estimates of performance, insufficient
        allocation of resources.'"""
        from repro.core.baselines import AR1Model
        from repro.simulation.queue import max_backlog

        x = trace.frame_bytes
        r1 = float(np.corrcoef(x[:-1], x[1:])[0, 1])
        srd = AR1Model(float(np.mean(x)), float(np.std(x)), r1).generate(
            x.size, rng=np.random.default_rng(2)
        )
        c = float(np.mean(x)) * 1.1
        assert max_backlog(x, c) > 2 * max_backlog(srd, c)

    def test_statistics_do_converge_albeit_slowly(self, trace):
        """'The statistics do converge, albeit slower than for i.i.d.
        data.'"""
        x = trace.frame_bytes
        quarter = float(np.mean(x[: x.size // 4]))
        full = float(np.mean(x))
        # Convergence: the quarter-trace mean is within a few percent...
        assert quarter == pytest.approx(full, rel=0.10)
        # ...but the error exceeds the i.i.d. prediction comfortably.
        iid_se = float(np.std(x)) / np.sqrt(x.size // 4)
        assert abs(quarter - full) > iid_se

    def test_multiplexed_sources_better_behaved(self, trace):
        """'Multiplexed sources are statistically better behaved than
        single sources': the aggregate CoV falls like 1/sqrt(N).'"""
        from repro.simulation.multiplex import multiplex_series, random_lags

        x = trace.frame_bytes
        rng = np.random.default_rng(3)
        lags = random_lags(9, x.size, min_separation=1000, rng=rng)
        agg = multiplex_series(x, lags)
        cov_1 = float(np.std(x) / np.mean(x))
        cov_9 = float(np.std(agg) / np.mean(agg))
        assert cov_9 == pytest.approx(cov_1 / 3.0, rel=0.35)

    def test_h_not_reduced_by_aggregation(self, trace):
        """'The value of H is not reduced with traffic aggregation (due
        to the self-similar nature of the traffic).'"""
        from repro.analysis.hurst import variance_time
        from repro.simulation.multiplex import multiplex_series, random_lags

        x = trace.frame_bytes
        rng = np.random.default_rng(4)
        lags = random_lags(5, x.size, min_separation=1000, rng=rng)
        agg = multiplex_series(x, lags)
        h_single = variance_time(x).hurst
        h_agg = variance_time(agg).hurst
        assert h_agg > h_single - 0.08

    def test_h_necessary_but_not_sufficient(self):
        """'Thus, H is necessary for characterizing burstiness, but not
        sufficient': two processes with the same H but different
        marginals have very different resource needs.'"""
        from repro.core.baselines import GaussianFarimaModel
        from repro.core.model import VBRVideoModel
        from repro.simulation.queue import max_backlog

        rng1, rng2 = np.random.default_rng(5), np.random.default_rng(5)
        narrow = GaussianFarimaModel(27_791.0, 2_000.0, 0.8, generator="davies-harte")
        wide = VBRVideoModel(27_791.0, 6_254.0, 6.0, 0.8)
        y_narrow = narrow.generate(2**14, rng=rng1)
        y_wide = wide.generate(2**14, rng=rng2, generator="davies-harte")
        c_factor = 1.1
        q_narrow = max_backlog(y_narrow, float(np.mean(y_narrow)) * c_factor)
        q_wide = max_backlog(y_wide, float(np.mean(y_wide)) * c_factor)
        assert q_wide > 2 * q_narrow

    def test_clipping_recommendation(self, trace):
        """'We recommend that a realistic VBR coder should clip such
        peaks': negligible information loss, real resource savings."""
        from repro.simulation.queue import zero_loss_capacity
        from repro.video.shaping import clip_peaks
        from repro.video.trace import VBRTrace

        t = VBRTrace(trace.frame_bytes)
        clipped = clip_peaks(t, quantile=0.9995)
        assert clipped.clipped_fraction < 0.005
        q = 100_000.0
        saved = 1.0 - zero_loss_capacity(clipped.trace.frame_bytes, q) / zero_loss_capacity(
            t.frame_bytes, q
        )
        assert saved > 0.01

    def test_smoothness_when_quantile_near_mean(self):
        """'In the range where sigma/sqrt(N) << mu ... the traffic is,
        for all purposes, quite smooth regardless of H': high-N
        aggregates need barely more than the mean rate."""
        from repro.distributions.hybrid import GammaParetoHybrid

        h = GammaParetoHybrid(27_791.0, 6_254.0, 12.0)
        agg = h.aggregate(64, n_points=4000)
        q999 = agg.ppf(0.999)
        mean = agg.mean()
        assert q999 < 1.12 * mean  # within 12% of the mean at N=64

    def test_marginal_tail_converges_to_normal_slowly(self):
        """'the heavy tail of the marginals will converge to Normality
        only very slowly': at small N the aggregate is measurably more
        skewed than a Normal.'"""
        from repro.distributions.hybrid import GammaParetoHybrid
        from repro.distributions.normal import Normal

        h = GammaParetoHybrid(27_791.0, 6_254.0, 6.0)
        for n, min_excess in ((2, 1.05), (8, 1.01)):
            agg = h.aggregate(n, n_points=4000)
            normal = Normal(agg.mean(), np.sqrt(agg.var()))
            # The aggregate's extreme quantile still exceeds the
            # matched Normal's.
            assert agg.ppf(0.9999) > min_excess * normal.ppf(0.9999)

    def test_dataset_available_via_same_format(self, trace, tmp_path):
        """'This VBR dataset is available via anonymous ftp': the trace
        I/O speaks the distributed format, so the real dataset slots in."""
        from repro.video.tracefile import load_trace, save_trace
        from repro.video.trace import VBRTrace

        path = tmp_path / "starwars.frame.dat"
        save_trace(VBRTrace(trace.frame_bytes), path)
        loaded = load_trace(path)
        assert loaded.n_frames == trace.n_frames
