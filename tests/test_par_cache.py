"""Tests for the content-addressed cache: keys, round-trips, poisoning.

The key contract (:func:`canonical_params` / :func:`cache_key`) is the
safety boundary — a collision would silently serve one parameterization
another's eigenvalues.  The tier-1 tests pin its edge cases; the seeded
fuzz class (tier 2) hammers it with randomized parameter dicts and H
values near the self-similar boundaries.  The concurrency class
hammers the atomic tmp+rename write contract with racing *processes* —
the cache is now also the shared artifact store for distributed
campaigns (:mod:`repro.dist`), where cross-process races are the
normal case, not the exception.
"""

import json
import multiprocessing
import os

import numpy as np
import pytest

from repro.core.daviesharte import DaviesHarteGenerator
from repro.par import cache as par_cache
from repro.par.cache import (
    ContentCache,
    cache_key,
    canonical_params,
    memoized,
    using,
)


class TestCanonicalParams:
    def test_key_order_is_irrelevant(self):
        a = cache_key("alg", {"hurst": 0.8, "n": 4096, "variance": 1.0})
        b = cache_key("alg", {"variance": 1.0, "n": 4096, "hurst": 0.8})
        assert a == b

    def test_int_and_float_forms_canonicalize_identically(self):
        assert cache_key("alg", {"n": 2}) == cache_key("alg", {"n": 2.0})
        assert cache_key("alg", {"n": np.int64(2)}) == cache_key(
            "alg", {"n": np.float64(2)}
        )

    def test_negative_zero_folds(self):
        assert cache_key("alg", {"x": -0.0}) == cache_key("alg", {"x": 0.0})

    def test_bool_is_not_an_int(self):
        assert cache_key("alg", {"x": True}) != cache_key("alg", {"x": 1})

    def test_distinct_floats_stay_distinct(self):
        assert cache_key("alg", {"hurst": 0.5}) != cache_key(
            "alg", {"hurst": 0.5 + 1e-12}
        )

    def test_big_seed_integers_are_exact(self):
        # 64-bit sha-derived seeds exceed float64's exact range; two
        # seeds that would round to the same float must not collide.
        seed = (1 << 63) + 1
        assert canonical_params({"seed": seed})["seed"] == f"int:{seed}"
        assert cache_key("alg", {"seed": seed}) != cache_key(
            "alg", {"seed": seed + 1}
        )

    def test_non_finite_rejected(self):
        for bad in (float("nan"), float("inf"), -float("inf")):
            with pytest.raises(ValueError, match="non-finite"):
                canonical_params({"x": bad})

    def test_uncacheable_type_rejected(self):
        with pytest.raises(TypeError, match="uncacheable"):
            canonical_params({"x": object()})

    def test_nested_sequences(self):
        a = canonical_params({"specs": [(1, 2.0), (3, 4)]})
        b = canonical_params({"specs": ((1.0, 2), (3.0, 4.0))})
        assert a == b

    def test_algorithm_separates_namespaces(self):
        params = {"hurst": 0.8, "n": 1024}
        assert cache_key("daviesharte.sqrt_eig", params) != cache_key(
            "paxson.spectral_density", params
        )

    def test_key_regression(self):
        # Pinned digest: any change here breaks every on-disk cache, so
        # it must be deliberate (and bump CACHE_VERSION).
        assert cache_key("alg", {"hurst": 0.8, "n": 4096}) == (
            "c4188a8166e35fb642aa0f2002e04f77"
            "367fc1d64faca83a20b94e69d7302aee"
        )


@pytest.mark.tier2
class TestKeyFuzz:
    """Seeded fuzz over the key function (nightly, rotated by --qa-seed)."""

    def test_param_order_invariance(self, seeded_rng):
        for _ in range(50):
            n_params = int(seeded_rng.integers(1, 8))
            params = {
                f"p{i}": float(seeded_rng.normal()) for i in range(n_params)
            }
            params["n"] = int(seeded_rng.integers(1, 1 << 20))
            keys = list(params)
            reference = cache_key("fuzz", params)
            for _ in range(4):
                seeded_rng.shuffle(keys)
                assert cache_key("fuzz", {k: params[k] for k in keys}) == reference

    def test_float_canonicalization_respects_equality(self, seeded_rng):
        for _ in range(100):
            value = float(seeded_rng.normal()) * 10.0 ** int(
                seeded_rng.integers(-12, 12)
            )
            assert cache_key("fuzz", {"x": value}) == cache_key(
                "fuzz", {"x": np.float64(value)}
            )
            nudged = np.nextafter(value, np.inf)
            assert cache_key("fuzz", {"x": value}) != cache_key(
                "fuzz", {"x": nudged}
            )

    def test_distinct_hurst_n_never_collide(self, seeded_rng):
        # The regression the cache must never have: two (H, n) points
        # addressing one eigenvalue vector.  Includes H values pressed
        # against the self-similar boundaries.
        hursts = [0.5 + 1e-12, 0.5 + 1e-9, 0.99999999, 1.0 - 1e-12]
        hursts += [float(h) for h in seeded_rng.uniform(0.5, 1.0, size=40)]
        sizes = [int(n) for n in seeded_rng.integers(2, 1 << 22, size=10)]
        keys = {}
        for h in hursts:
            for n in sizes:
                key = cache_key("daviesharte.sqrt_eig", {"hurst": h, "n": n})
                assert key not in keys, f"collision: {(h, n)} vs {keys[key]}"
                keys[key] = (h, n)


class TestContentCache:
    def test_array_round_trip(self, tmp_path):
        cache = ContentCache(tmp_path)
        params = {"hurst": 0.8, "n": 64}
        arr = np.random.default_rng(3).normal(size=64)
        assert cache.get("alg", params) is None
        cache.put("alg", params, arr)
        hit = cache.get("alg", params)
        np.testing.assert_array_equal(hit, arr)

    def test_dict_round_trip(self, tmp_path):
        cache = ContentCache(tmp_path)
        payload = {"frame_bytes": np.arange(10.0), "slice_bytes": np.arange(30.0)}
        cache.put("trace", {"seed": 0}, payload)
        hit = cache.get("trace", {"seed": 0})
        assert set(hit) == {"frame_bytes", "slice_bytes"}
        np.testing.assert_array_equal(hit["frame_bytes"], payload["frame_bytes"])

    def test_poisoned_payload_evicted_never_served(self, tmp_path):
        cache = ContentCache(tmp_path)
        params = {"hurst": 0.8, "n": 64}
        cache.put("alg", params, np.arange(64.0))
        payload_path, meta_path = cache.entry_paths("alg", params)
        blob = bytearray(payload_path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        payload_path.write_bytes(bytes(blob))
        assert cache.get("alg", params) is None  # mismatch -> miss, not data
        assert not payload_path.exists() and not meta_path.exists()

    def test_stale_version_evicted(self, tmp_path):
        cache = ContentCache(tmp_path)
        cache.put("alg", {"n": 4}, np.arange(4.0))
        payload_path, meta_path = cache.entry_paths("alg", {"n": 4})
        meta = json.loads(meta_path.read_text())
        meta["version"] = 999
        meta_path.write_text(json.dumps(meta))
        assert cache.get("alg", {"n": 4}) is None
        assert not payload_path.exists()

    def test_unreadable_meta_evicted(self, tmp_path):
        cache = ContentCache(tmp_path)
        cache.put("alg", {"n": 4}, np.arange(4.0))
        _, meta_path = cache.entry_paths("alg", {"n": 4})
        meta_path.write_text("{not json")
        assert cache.get("alg", {"n": 4}) is None

    def test_memoize_computes_once(self, tmp_path):
        cache = ContentCache(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return np.arange(8.0)

        first = cache.memoize("alg", {"n": 8}, compute)
        second = cache.memoize("alg", {"n": 8}, compute)
        np.testing.assert_array_equal(first, second)
        assert len(calls) == 1

    def test_entries_lists_metadata(self, tmp_path):
        cache = ContentCache(tmp_path)
        cache.put("alg", {"n": 1}, np.arange(1.0))
        cache.put("other", {"n": 2}, np.arange(2.0))
        algorithms = sorted(algorithm for algorithm, _ in cache.entries())
        assert algorithms == ["alg", "other"]


def _race_payload(variant):
    """Deterministic payload for writer ``variant`` (whole-array marker)."""
    return np.full(256, float(variant))


def _hammer_same_key(root, variant, iterations):
    """Writer+reader loop: put our variant, check every hit is intact.

    Exit code 0 = every observed hit was byte-exact one of the known
    variants; nonzero = a torn/blended payload was served.
    """
    cache = ContentCache(root)
    params = {"n": 256, "role": "race"}
    expected = {0: _race_payload(0).tobytes(), 1: _race_payload(1).tobytes()}
    for _ in range(iterations):
        cache.put("race", params, _race_payload(variant))
        hit = cache.get("race", params)
        if hit is None:
            continue  # a concurrent evict/replace window: miss is legal
        if hit.tobytes() not in expected.values():
            os._exit(17)  # torn payload served
    os._exit(0)


def _corrupt_loop(root, iterations):
    """Poison the entry's payload file in place, as fast as possible."""
    cache = ContentCache(root)
    payload_path, _ = cache.entry_paths("race", {"n": 256, "role": "race"})
    for _ in range(iterations):
        try:
            with open(payload_path, "r+b") as handle:
                handle.seek(64)
                handle.write(b"\xff" * 32)
        except OSError:
            pass  # not there right now (evicted or mid-replace)
    os._exit(0)


class TestConcurrentWriters:
    """Cross-process races on one key: the shared-artifact-store case."""

    def _run(self, targets):
        ctx = multiprocessing.get_context("fork")
        procs = [ctx.Process(target=fn, args=args) for fn, args in targets]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(60)
        assert all(proc.exitcode is not None for proc in procs), "worker hung"
        return [proc.exitcode for proc in procs]

    def test_racing_writers_never_serve_torn_payload(self, tmp_path):
        """Two processes hammering the same key with different (valid)
        payloads: every hit must be byte-exact one writer's array,
        never a blend of both — the atomic tmp+``os.replace`` contract.
        A miss during the replace window is legal; torn data is not."""
        codes = self._run([
            (_hammer_same_key, (tmp_path, 0, 80)),
            (_hammer_same_key, (tmp_path, 1, 80)),
        ])
        assert codes == [0, 0], f"torn payload observed (exit codes {codes})"
        # Whatever won the race, the surviving entry round-trips intact.
        cache = ContentCache(tmp_path)
        final = cache.get("race", {"n": 256, "role": "race"})
        if final is not None:
            assert final.tobytes() in (
                _race_payload(0).tobytes(), _race_payload(1).tobytes()
            )

    def test_eviction_under_contention(self, tmp_path):
        """A corruptor poisoning the payload file while a writer keeps
        rewriting it: poisoned reads must surface as misses (digest
        re-verify -> evict), never as data, and the eviction/unlink
        races must not crash either side."""
        cache = ContentCache(tmp_path)
        params = {"n": 256, "role": "race"}
        cache.put("race", params, _race_payload(0))
        codes = self._run([
            (_hammer_same_key, (tmp_path, 0, 60)),
            (_corrupt_loop, (tmp_path, 200)),
        ])
        assert codes == [0, 0], f"contention crash or torn read (exit codes {codes})"
        # The store self-heals: after the dust settles a fresh put serves.
        cache.put("race", params, _race_payload(1))
        np.testing.assert_array_equal(cache.get("race", params), _race_payload(1))


class TestActiveCache:
    def test_memoized_without_cache_computes_every_time(self):
        assert par_cache.active_cache() is None
        calls = []

        def compute():
            calls.append(1)
            return np.arange(4.0)

        memoized("alg", {"n": 4}, compute)
        memoized("alg", {"n": 4}, compute)
        assert len(calls) == 2

    def test_using_scopes_the_cache(self, tmp_path):
        calls = []

        def compute():
            calls.append(1)
            return np.arange(4.0)

        with using(tmp_path) as cache:
            assert par_cache.active_cache() is cache
            memoized("alg", {"n": 4}, compute)
            memoized("alg", {"n": 4}, compute)
        assert len(calls) == 1
        assert par_cache.active_cache() is None

    def test_generator_tables_cold_equals_warm(self, tmp_path):
        rng_seed = 71
        uncached = DaviesHarteGenerator(0.8).generate(
            2048, rng=np.random.default_rng(rng_seed)
        )
        with using(tmp_path):
            cold = DaviesHarteGenerator(0.8).generate(
                2048, rng=np.random.default_rng(rng_seed)
            )
            warm = DaviesHarteGenerator(0.8).generate(
                2048, rng=np.random.default_rng(rng_seed)
            )
        np.testing.assert_array_equal(cold, uncached)
        np.testing.assert_array_equal(warm, uncached)
