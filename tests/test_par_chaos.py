"""Chaos tests for the parallel engine (tier 2, nightly).

Three failure families from the issue's acceptance list: worker death
mid-map (the pool must fall back and still produce bit-identical
results), poisoned cache entries (digest mismatch must evict and
recompute, never serve), and a SIGKILLed parallel campaign resuming to
digest-identical results.  Scenario shaping (which tasks die, which
byte is flipped, where the kill lands) rotates with the nightly
``--qa-seed``.
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core.daviesharte import DaviesHarteGenerator
from repro.experiments.runner import run_all
from repro.par.cache import ContentCache, using
from repro.par.pool import pool_map
from repro.par.shard import shard_fgn
from repro.qa.golden import diff_digests, summarize
from repro.qa.plugin import derive_seed

pytestmark = pytest.mark.tier2


@pytest.fixture
def chaos_rng(request):
    """Scenario-shaping rng rotated by the nightly ``--qa-seed``."""
    return np.random.default_rng(
        derive_seed(request.config.getoption("--qa-seed"), request.node.nodeid)
    )


def _maybe_die(item):
    value, die = item
    if die and multiprocessing.parent_process() is not None:
        os._exit(17)
    return value**2


class TestWorkerDeath:
    def test_random_worker_deaths_keep_results_identical(self, chaos_rng):
        values = list(range(24))
        victims = set(chaos_rng.choice(len(values), size=4, replace=False).tolist())
        serial = pool_map(_maybe_die, [(v, False) for v in values], workers=1)
        chaotic = pool_map(
            _maybe_die,
            [(v, i in victims) for i, v in enumerate(values)],
            workers=3,
        )
        assert chaotic == serial

    def test_death_during_sharded_synthesis(self, chaos_rng):
        # shard_fgn itself never kills workers; this drives it through
        # a pool whose workers are killed externally mid-run.
        n, shard_size, overlap = 40_001, 5_000, 250
        seed = int(chaos_rng.integers(0, 2**31))
        reference = shard_fgn(
            n, 0.8, seed=seed, shard_size=shard_size, overlap=overlap, workers=1
        )

        killer_done = False

        def kill_one_worker():
            nonlocal killer_done
            if killer_done:
                return
            children = multiprocessing.active_children()
            if children:
                try:
                    os.kill(children[0].pid, signal.SIGKILL)
                    killer_done = True
                except (ProcessLookupError, PermissionError):
                    pass

        import threading

        stop = threading.Event()

        def killer():
            deadline = time.monotonic() + 20.0
            while not stop.is_set() and time.monotonic() < deadline:
                kill_one_worker()
                time.sleep(0.01)

        thread = threading.Thread(target=killer, daemon=True)
        thread.start()
        try:
            chaotic = shard_fgn(
                n, 0.8, seed=seed, shard_size=shard_size, overlap=overlap, workers=3
            )
        finally:
            stop.set()
            thread.join(timeout=5.0)
        np.testing.assert_array_equal(chaotic, reference)


class TestPoisonedCache:
    def test_random_corruption_is_evicted_and_recomputed(self, tmp_path, chaos_rng):
        hurst = float(chaos_rng.uniform(0.55, 0.95))
        rng_seed = int(chaos_rng.integers(0, 2**31))
        uncached = DaviesHarteGenerator(hurst).generate(
            4096, rng=np.random.default_rng(rng_seed)
        )
        with using(tmp_path):
            DaviesHarteGenerator(hurst).generate(
                4096, rng=np.random.default_rng(rng_seed)
            )
            payloads = sorted(tmp_path.rglob("*.npz"))
            assert payloads, "warm-up generation wrote no cache entry"
            victim = payloads[int(chaos_rng.integers(0, len(payloads)))]
            blob = bytearray(victim.read_bytes())
            blob[int(chaos_rng.integers(0, len(blob)))] ^= 0xFF
            victim.write_bytes(bytes(blob))
            regenerated = DaviesHarteGenerator(hurst).generate(
                4096, rng=np.random.default_rng(rng_seed)
            )
        # The poisoned entry was never served: output is bit-identical
        # to the uncached computation.
        np.testing.assert_array_equal(regenerated, uncached)

    def test_every_entry_poisoned_still_recovers(self, tmp_path, chaos_rng):
        cache = ContentCache(tmp_path)
        params = {"n": 64, "tag": "chaos"}
        cache.put("alg", params, np.arange(64.0))
        for payload in tmp_path.rglob("*.npz"):
            blob = bytearray(payload.read_bytes())
            blob[int(chaos_rng.integers(0, len(blob)))] ^= 0xFF
            payload.write_bytes(bytes(blob))
        assert cache.get("alg", params) is None
        cache.put("alg", params, np.arange(64.0))
        np.testing.assert_array_equal(cache.get("alg", params), np.arange(64.0))


def campaign_digest(results):
    return json.loads(json.dumps(summarize(results)))


@pytest.fixture(scope="module")
def uninterrupted():
    """One uninterrupted serial quick campaign shared by the scenarios."""
    return run_all(quick=True)


class TestParallelCampaign:
    def test_parallel_quick_campaign_matches_serial(self, uninterrupted):
        parallel = run_all(quick=True, workers=2)
        assert diff_digests(
            campaign_digest(uninterrupted), campaign_digest(parallel)
        ) == []

    def test_sigkill_parallel_campaign_resumes_identically(
        self, tmp_path, uninterrupted, chaos_rng
    ):
        ckpt = tmp_path / "ckpt"
        kill_after = int(chaos_rng.integers(2, 8))
        proc = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "from repro.experiments.runner import run_all\n"
                f"run_all(quick=True, checkpoint_dir={str(ckpt)!r}, workers=2)\n",
            ],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 180.0
            while time.monotonic() < deadline:
                done = [p for p in ckpt.glob("*.json") if p.stem != "campaign"]
                if len(done) >= kill_after or proc.poll() is not None:
                    break
                time.sleep(0.05)
            proc.send_signal(signal.SIGKILL)
        finally:
            proc.wait()
        completed = [p.stem for p in ckpt.glob("*.json") if p.stem != "campaign"]
        assert completed, "campaign was killed before any checkpoint was written"
        assert len(completed) < 23, "campaign finished before it could be killed"

        report = run_all(
            quick=True, checkpoint_dir=str(ckpt), resume=True,
            report=True, workers=2,
        )
        assert report.ok
        assert len(report.results) == 25
        assert set(report.resumed) == set(completed)
        assert diff_digests(
            campaign_digest(uninterrupted), campaign_digest(report.results)
        ) == []
