"""The tier-1 determinism wall: parallel == serial, bit for bit.

Every parallel entry point — sharded fGn synthesis, multiplex fan-out,
Q-C grid sweeps, SMG capacity search, campaign supervision — must
return byte-identical results at every worker count, including odd
shard boundaries (a short final shard, a final shard shorter than the
blend overlap).  These are exact ``assert_array_equal`` comparisons,
not tolerances: seeds are index-derived, so scheduling can never leak
into the output.
"""

import json

import numpy as np
import pytest

from repro.core.hosking import hosking_farima
from repro.par.shard import blend_weights, shard_fgn, shard_plan
from repro.resilience.runner import ExperimentSpec, run_campaign
from repro.simulation.multiplex import multiplex_many, multiplex_series, random_lags
from repro.simulation.qc import qc_curve, smg_curve

WORKER_COUNTS = (1, 2, 5)


class TestShardPlan:
    def test_covers_exactly(self):
        plan = shard_plan(10_001, 3000)
        assert plan == [(0, 3000), (3000, 3000), (6000, 3000), (9000, 1001)]
        assert sum(length for _, length in plan) == 10_001

    def test_blend_weights_preserve_variance(self):
        w_old, w_new = blend_weights(64)
        np.testing.assert_allclose(w_old**2 + w_new**2, 1.0, rtol=1e-12)


class TestShardedFGN:
    @pytest.mark.parametrize("backend", ["paxson", "davies-harte"])
    @pytest.mark.parametrize(
        "n,shard_size,overlap",
        [
            (10_001, 3000, 100),  # short final shard
            (9_050, 3000, 100),   # final shard shorter than the overlap
            (6_000, 2000, 0),     # no blending at all
            (1_500, 4096, 256),   # single shard, n < shard_size
        ],
    )
    def test_worker_invariance_at_odd_boundaries(self, backend, n, shard_size, overlap):
        reference = shard_fgn(
            n, 0.8, backend=backend, seed=5,
            shard_size=shard_size, overlap=overlap, workers=1,
        )
        assert reference.shape == (n,)
        for workers in WORKER_COUNTS[1:]:
            np.testing.assert_array_equal(
                shard_fgn(
                    n, 0.8, backend=backend, seed=5,
                    shard_size=shard_size, overlap=overlap, workers=workers,
                ),
                reference,
            )

    def test_hosking_matches_reference_generator(self):
        # The exact backend stays serial and must equal the plain
        # generator sample for sample, at any requested worker count.
        reference = hosking_farima(2_000, hurst=0.8, rng=np.random.default_rng(9))
        for workers in WORKER_COUNTS:
            np.testing.assert_array_equal(
                shard_fgn(2_000, 0.8, backend="hosking", seed=9, workers=workers),
                reference,
            )

    def test_seed_changes_output(self):
        a = shard_fgn(4_000, 0.8, seed=0, shard_size=1500, overlap=50)
        b = shard_fgn(4_000, 0.8, seed=1, shard_size=1500, overlap=50)
        assert not np.array_equal(a, b)

    def test_overlap_validation(self):
        with pytest.raises(ValueError, match="overlap"):
            shard_fgn(1000, 0.8, shard_size=100, overlap=100)


class TestMultiplexMany:
    def test_worker_invariance(self, rng):
        series = rng.gamma(2.0, 10_000.0, size=150_000)  # > SHM threshold
        lag_sets = [random_lags(5, series.size, rng=rng) for _ in range(6)]
        reference = [multiplex_series(series, lags) for lags in lag_sets]
        for workers in WORKER_COUNTS:
            got = multiplex_many(series, lag_sets, workers=workers)
            assert len(got) == len(reference)
            for a, b in zip(got, reference):
                np.testing.assert_array_equal(a, b)


@pytest.fixture(scope="module")
def qc_series(small_series):
    return np.asarray(small_series[:8_000], dtype=float)


class TestGridSweeps:
    FGN_SOURCES = {"hurst": 0.8, "seed": 41, "mean": 25_000.0, "std": 6_000.0}

    def test_qc_curve_worker_invariance(self, qc_series):
        def sweep(workers):
            return qc_curve(
                qc_series, 1.0 / 24.0, n_sources=5, target_loss=1e-3,
                n_points=4, n_lag_draws=2,
                rng=np.random.default_rng(17), workers=workers,
            )

        reference = sweep(1)
        for workers in WORKER_COUNTS[1:]:
            curve = sweep(workers)
            np.testing.assert_array_equal(
                curve.capacity_per_source, reference.capacity_per_source
            )
            np.testing.assert_array_equal(curve.buffer_bytes, reference.buffer_bytes)
            np.testing.assert_array_equal(curve.tmax_ms, reference.tmax_ms)

    def test_qc_curve_fgn_sources_batch_and_worker_invariance(self, qc_series):
        def sweep(workers, batch):
            return qc_curve(
                qc_series, 1.0 / 24.0, n_sources=5, target_loss=1e-3,
                n_points=4, fgn_sources=dict(self.FGN_SOURCES), batch=batch,
                rng=np.random.default_rng(workers), workers=workers,
            )

        reference = sweep(1, 1)
        for workers in WORKER_COUNTS[1:]:
            for batch in (2, 7):
                curve = sweep(workers, batch)
                np.testing.assert_array_equal(
                    curve.buffer_bytes, reference.buffer_bytes
                )
                np.testing.assert_array_equal(curve.tmax_ms, reference.tmax_ms)

    def test_smg_curve_fgn_sources_batch_and_worker_invariance(self, qc_series):
        def sweep(workers, batch):
            return smg_curve(
                qc_series, 1.0 / 24.0, n_values=(1, 2, 5), target_loss=1e-3,
                n_lag_draws=2, fgn_sources=dict(self.FGN_SOURCES), batch=batch,
                rel_tol=1e-3, workers=workers,
            )

        reference = sweep(1, 1)
        for workers in WORKER_COUNTS[1:]:
            for batch in (2, 7):
                result = sweep(workers, batch)
                np.testing.assert_array_equal(
                    result["capacity_per_source"],
                    reference["capacity_per_source"],
                )

    def test_smg_curve_worker_invariance(self, qc_series):
        def sweep(workers):
            return smg_curve(
                qc_series, 1.0 / 24.0, n_values=(1, 2, 5), target_loss=1e-3,
                n_lag_draws=2, rng=np.random.default_rng(23),
                rel_tol=1e-3, workers=workers,
            )

        reference = sweep(1)
        for workers in WORKER_COUNTS[1:]:
            result = sweep(workers)
            assert set(result) == set(reference)
            np.testing.assert_array_equal(
                result["capacity_per_source"], reference["capacity_per_source"]
            )
            np.testing.assert_array_equal(
                result["gain_fraction"], reference["gain_fraction"]
            )


def _campaign_specs():
    def experiment(scale):
        def run(seed):
            rng = np.random.default_rng(seed)
            sample = rng.normal(size=256) * scale
            return {"mean": float(sample.mean()), "std": float(sample.std())}

        return run

    return [ExperimentSpec(f"exp{i:02d}", experiment(float(i + 1))) for i in range(7)]


class TestCampaignInvariance:
    def test_results_and_records_identical(self):
        reference = run_campaign(_campaign_specs(), base_seed=3)
        for workers in WORKER_COUNTS[1:]:
            report = run_campaign(_campaign_specs(), base_seed=3, workers=workers)
            assert report.results == reference.results
            assert [r.experiment_id for r in report.records] == [
                r.experiment_id for r in reference.records
            ]
            assert [r.status for r in report.records] == [
                r.status for r in reference.records
            ]

    def test_checkpoint_digests_identical(self, tmp_path):
        digests = {}
        for workers in WORKER_COUNTS:
            ckpt = tmp_path / f"w{workers}"
            run_campaign(
                _campaign_specs(), base_seed=3,
                checkpoint_dir=str(ckpt), workers=workers,
            )
            digests[workers] = {
                path.stem: json.loads(path.read_text()).get("digest")
                for path in sorted(ckpt.glob("*.json"))
                if path.stem != "campaign"
            }
            assert len(digests[workers]) == 7
        assert digests[2] == digests[1]
        assert digests[5] == digests[1]


class TestNetSweepInvariance:
    """Topology sweeps: same specs => byte-identical runs at any width."""

    @staticmethod
    def _specs():
        import numpy as np

        specs = []
        for i in range(4):
            rng = np.random.default_rng(100 + i)
            arrivals = rng.gamma(2.0, 600.0, size=300).tolist()
            specs.append({
                "slots": 300,
                "nodes": [{"name": n, "buffer_bytes": 3_000.0} for n in "abc"],
                "links": [
                    {"src": "a", "dst": "b", "capacity_per_slot": 1_200.0 + 40.0 * i},
                    {"src": "b", "dst": "c", "capacity_per_slot": 1_150.0,
                     "delay_slots": 1},
                ],
                "flows": [{"name": "f", "path": ["a", "b", "c"],
                           "source": {"kind": "array", "values": arrivals}}],
                "record_events": True,
            })
        return specs

    def test_event_traces_and_metrics_identical_across_workers(self):
        from repro.net import sweep_topologies

        def dump(results):
            # Everything a run reports, serialized byte-for-byte.
            return json.dumps(
                [
                    {
                        "trace": r["event_trace_sha256"],
                        "ports": r["ports"],
                        "flows": r["flows"],
                        "events": r["events"],
                    }
                    for r in results
                ],
                sort_keys=True,
            ).encode()

        reference = dump(sweep_topologies(self._specs(), workers=1))
        for workers in WORKER_COUNTS[1:]:
            assert dump(sweep_topologies(self._specs(), workers=workers)) == reference
