"""Tests for the seeded process-pool map and child->parent metric merge.

The pool's contract is that results are a pure function of
``(fn, items, base_seed)`` — independent of worker count, scheduling,
worker death and recycling — and that metrics incremented inside
workers survive the pool boundary exactly (the obs registry is
process-local, so without the merge they would silently vanish).
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro import obs
from repro.obs import metrics
from repro.par.pool import SHM_THRESHOLD, derive_task_seed, pool_map, resolve_workers
from repro.resilience.faults import FaultPlan


# ----------------------------------------------------------------------
# Module-level task functions (pool tasks must be picklable).
# ----------------------------------------------------------------------
def _double(item):
    return item * 2


def _item_and_seed(item, seed):
    return (item, seed)


def _lookup(item, common):
    arr = common["arr"]
    return (float(arr[item]), bool(arr.flags.writeable))


def _pid(item):
    return os.getpid()


def _die_in_child(item):
    # Only the forked worker dies; the serial fallback (parent process)
    # completes the task normally.
    if item % 2 == 1 and multiprocessing.parent_process() is not None:
        os._exit(13)
    return item * 10


def _counted(item):
    metrics.registry().counter(
        "repro_par_pool_test_total", unit="tasks"
    ).inc()
    return item


def _raise_on_three(item):
    if item == 3:
        raise RuntimeError("task defect")
    return item


class TestSeeds:
    def test_derivation_matches_sha256(self):
        import hashlib

        digest = hashlib.sha256(b"42:shard:7").digest()
        assert derive_task_seed(42, 7, label="shard") == int.from_bytes(
            digest[:8], "big"
        )

    def test_distinct_across_index_label_base(self):
        seeds = {
            derive_task_seed(0, 0),
            derive_task_seed(0, 1),
            derive_task_seed(1, 0),
            derive_task_seed(0, 0, label="other"),
        }
        assert len(seeds) == 4

    def test_resolve_workers(self):
        assert resolve_workers(None) == 1
        assert resolve_workers("3") == 3
        with pytest.raises(ValueError, match="workers"):
            resolve_workers(0)


class TestPoolMap:
    def test_empty(self):
        assert pool_map(_double, [], workers=4) == []

    def test_serial_matches_parallel(self):
        items = list(range(9))
        serial = pool_map(_double, items, workers=1)
        assert serial == [i * 2 for i in items]
        assert pool_map(_double, items, workers=3) == serial

    def test_seeds_are_index_derived(self):
        items = list(range(5))
        expected = [
            (i, derive_task_seed(11, i, label="pool")) for i in items
        ]
        assert pool_map(_item_and_seed, items, base_seed=11, workers=1) == expected
        assert pool_map(_item_and_seed, items, base_seed=11, workers=2) == expected

    def test_common_small_array_pickled(self):
        arr = np.arange(8.0)
        out = pool_map(_lookup, [1, 5], workers=2, common={"arr": arr})
        assert [value for value, _ in out] == [1.0, 5.0]

    def test_common_large_array_rides_shared_memory(self):
        n = SHM_THRESHOLD // 8  # exactly the threshold in float64
        arr = np.arange(float(n))
        out = pool_map(_lookup, [0, n - 1, 7], workers=2, common={"arr": arr})
        assert [value for value, _ in out] == [0.0, float(n - 1), 7.0]
        # Worker-side shared views are read-only — proof the array
        # actually went through shared memory rather than a pickle copy.
        assert all(writeable is False for _, writeable in out)

    def test_recycling_replaces_worker_processes(self):
        pids = pool_map(_pid, range(6), workers=2, recycle_after=1)
        # Three batches of two tasks each, on a fresh executor per
        # batch: at least three distinct worker pids must appear.
        assert len(set(pids)) >= 3
        assert os.getpid() not in pids

    def test_worker_death_falls_back_to_serial(self):
        items = list(range(6))
        out = pool_map(_die_in_child, items, workers=2)
        assert out == [i * 10 for i in items]

    def test_task_exception_propagates(self):
        with pytest.raises(RuntimeError, match="task defect"):
            pool_map(_raise_on_three, range(5), workers=2)
        with pytest.raises(RuntimeError, match="task defect"):
            pool_map(_raise_on_three, range(5), workers=1)

    def test_fault_plan_forces_serial(self):
        # The serial path announces each task at the par.pool:task fault
        # site; a fault landing there proves the map ran in-process even
        # though workers > 1 was requested.
        plan = FaultPlan().fail_at("par.pool:task", call=2, exc=ValueError)
        with plan.active():
            with pytest.raises(ValueError):
                pool_map(_double, range(4), workers=3)


class TestMetricMerge:
    """Worker-side metric increments survive the pool exactly."""

    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_exact_task_counts_survive_pool(self, workers):
        with obs.enabled():
            counter = metrics.registry().counter(
                "repro_par_pool_test_total", unit="tasks"
            )
            before = counter.value
            assert pool_map(_counted, range(7), workers=workers) == list(range(7))
            assert counter.value - before == 7

    def test_counts_survive_worker_recycling(self):
        with obs.enabled():
            counter = metrics.registry().counter(
                "repro_par_pool_test_total", unit="tasks"
            )
            before = counter.value
            pool_map(_counted, range(6), workers=2, recycle_after=1)
            assert counter.value - before == 6


class TestMergeDump:
    """Unit contract of :func:`repro.obs.metrics.merge_dump` itself."""

    def test_counter_adds(self):
        scratch = metrics.MetricsRegistry()
        with obs.enabled():
            scratch.counter("m_total").inc(3)
            target = metrics.MetricsRegistry()
            target.counter("m_total").inc(2)
        metrics.merge_dump(scratch.to_dict(), into=target)
        assert target.counter("m_total").value == 5

    def test_gauge_merges_min_max(self):
        scratch = metrics.MetricsRegistry()
        target = metrics.MetricsRegistry()
        with obs.enabled():
            child = scratch.gauge("depth")
            child.set(9)
            child.set(4)
            target.gauge("depth").set(1)
        metrics.merge_dump(scratch.to_dict(), into=target)
        doc = target.to_dict()["depth"]
        assert doc["value"] == 4  # child's last write wins
        assert doc["min"] == 1 and doc["max"] == 9

    def test_histogram_adds_per_bucket(self):
        scratch = metrics.MetricsRegistry()
        target = metrics.MetricsRegistry()
        bounds = (1.0, 10.0)
        with obs.enabled():
            for value in (0.5, 5.0, 50.0):
                scratch.histogram("lat", buckets=bounds).observe(value)
            target.histogram("lat", buckets=bounds).observe(0.25)
        metrics.merge_dump(scratch.to_dict(), into=target)
        doc = target.to_dict()["lat"]
        assert doc["count"] == 4
        assert doc["sum"] == pytest.approx(55.75)
        assert doc["buckets"]["1.0"] == 2
        assert doc["buckets"]["10.0"] == 3

    def test_histogram_bucket_mismatch_is_hard_error(self):
        scratch = metrics.MetricsRegistry()
        target = metrics.MetricsRegistry()
        with obs.enabled():
            scratch.histogram("lat", buckets=(1.0, 2.0)).observe(0.5)
            target.histogram("lat", buckets=(1.0, 4.0)).observe(0.5)
        with pytest.raises(ValueError, match="mis-bin"):
            metrics.merge_dump(scratch.to_dict(), into=target)
