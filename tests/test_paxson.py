"""Tests for Paxson's FFT-based approximate fGn synthesizer.

The exact Davies-Harte generator is the yardstick throughout: the
Paxson path is *approximate*, so the tests assert that its sample
statistics (variance, autocorrelation, Hurst estimates) agree with the
exact generator's, rather than pinning absolute constants that the
known small bias of parametric estimators on fGn would break.
"""

import numpy as np
import pytest

from repro.analysis.correlation import autocorrelation
from repro.analysis.hurst import variance_time, whittle
from repro.core.daviesharte import DaviesHarteGenerator
from repro.core.fractional import fgn_acf
from repro.core.paxson import PaxsonGenerator, fgn_spectral_density, paxson_fgn
from repro.qa import stats as qa


class TestSpectralDensity:
    def test_positive_on_domain(self):
        lam = np.linspace(1e-4, np.pi, 500)
        for hurst in (0.55, 0.7, 0.8, 0.9):
            assert np.all(fgn_spectral_density(lam, hurst) > 0)

    def test_low_frequency_power_law(self):
        """f(l; H) ~ c * l^{1-2H} as l -> 0 (long-range dependence)."""
        hurst = 0.8
        lam = np.array([1e-4, 1e-3])
        f = fgn_spectral_density(lam, hurst)
        slope = np.log(f[1] / f[0]) / np.log(lam[1] / lam[0])
        assert slope == pytest.approx(1.0 - 2.0 * hurst, abs=0.01)

    def test_white_noise_is_flat(self):
        """H = 1/2 is ordinary white noise: constant spectral density."""
        lam = np.linspace(0.1, np.pi, 200)
        f = fgn_spectral_density(lam, 0.5)
        assert np.ptp(f) / np.mean(f) < 0.01

    def test_rejects_out_of_range_frequencies(self):
        with pytest.raises(ValueError):
            fgn_spectral_density(np.array([0.0, 1.0]), 0.8)
        with pytest.raises(ValueError):
            fgn_spectral_density(np.array([3.5]), 0.8)

    def test_rejects_bad_hurst(self):
        with pytest.raises(ValueError):
            fgn_spectral_density(np.array([1.0]), 1.0)


class TestPaxsonGenerator:
    def test_moments(self):
        """The sample mean of fGn has exact SE sigma * n^(H-1); a
        z-test with that SE replaces the old magic +-0.2 band."""
        n = 2**16
        x = PaxsonGenerator(0.8, variance=4.0).generate(n, rng=np.random.default_rng(0))
        qa.require(
            qa.z_test(
                float(np.mean(x)), 0.0, qa.fgn_mean_std_error(n, 0.8, variance=4.0),
                alpha=1e-3, name="paxson sample mean",
            )
        )

    def test_variance_normalization_is_exact_in_expectation(self):
        """Averaged over many paths the sample variance hits the
        target: a Monte-Carlo z-test, not a hand-picked rel band."""
        gen = PaxsonGenerator(0.8)
        rng = np.random.default_rng(1)
        vars_ = [np.var(gen.generate(4096, rng=rng)) for _ in range(50)]
        qa.require(qa.mc_mean_check(vars_, 1.0, alpha=1e-3, name="paxson variance normalization"))

    def test_acf_matches_theory(self):
        """Per-lag TOST against the theoretical fGn ACF.  The margin
        (0.06) covers the known finite-sample downward bias of the
        sample ACF under LRD (~0.03 at n = 2^13) plus Monte-Carlo
        noise; alpha bounds the false-certification rate."""
        gen = PaxsonGenerator(0.8)
        rng = np.random.default_rng(2)
        acfs = np.array(
            [autocorrelation(gen.generate(2**13, rng=rng), 5)[1:] for _ in range(12)]
        )
        want = fgn_acf(0.8, 5)[1:]
        qa.require(
            *(
                qa.equivalence_check(
                    acfs[:, k], want[k], margin=0.06, alpha=1e-3,
                    name=f"paxson ACF lag {k + 1}",
                )
                for k in range(want.size)
            )
        )

    def test_hurst_estimates_match_exact_generator(self):
        """The parametric Whittle estimator has a known model-mismatch
        bias on true fGn; Paxson must land where the exact generator
        lands, not at the nominal H.  Welch z-tests over independent
        paths replace the old +-0.03/+-0.06 magic tolerances."""
        n = 2**13
        rng = np.random.default_rng(3)
        exact_paths = [DaviesHarteGenerator(0.8).generate(n, rng=rng) for _ in range(6)]
        approx_paths = [PaxsonGenerator(0.8).generate(n, rng=rng) for _ in range(6)]
        qa.require(
            qa.mc_agreement_check(
                [whittle(p).hurst for p in exact_paths],
                [whittle(p).hurst for p in approx_paths],
                alpha=1e-3, name="whittle H: davies-harte vs paxson",
            ),
            qa.mc_agreement_check(
                [variance_time(p).hurst for p in exact_paths],
                [variance_time(p).hurst for p in approx_paths],
                alpha=1e-3, name="variance-time H: davies-harte vs paxson",
            ),
        )

    def test_odd_length(self):
        x = PaxsonGenerator(0.8).generate(1001, rng=np.random.default_rng(4))
        assert x.shape == (1001,)

    def test_length_one(self):
        x = PaxsonGenerator(0.8).generate(1, rng=np.random.default_rng(5))
        assert x.shape == (1,)

    @pytest.mark.parametrize("n", [26, 52, 94, 104])
    def test_nyquist_rounding_lengths(self, n):
        # For these n the top grid frequency (2 pi (n/2)) / n rounds one
        # ulp above pi; the clamp in _sqrt_power must keep them legal
        # (found by the tier-2 batch fuzz, tests/test_qa_batch_fuzz.py).
        x = PaxsonGenerator(0.8).generate(n, rng=np.random.default_rng(5))
        assert x.shape == (n,)
        assert np.all(np.isfinite(x))

    def test_deterministic_under_seed(self):
        gen = PaxsonGenerator(0.8)
        a = gen.generate(1024, rng=np.random.default_rng(6))
        b = gen.generate(1024, rng=np.random.default_rng(6))
        np.testing.assert_array_equal(a, b)

    def test_power_profile_cached(self):
        gen = PaxsonGenerator(0.8)
        gen.generate(1024, rng=np.random.default_rng(7))
        cached = gen._cached_sqrt_power
        gen.generate(1024, rng=np.random.default_rng(8))
        assert gen._cached_sqrt_power is cached

    def test_repr(self):
        assert "PaxsonGenerator" in repr(PaxsonGenerator(0.8))

    def test_wrapper(self):
        x = paxson_fgn(512, hurst=0.7, variance=2.0, rng=np.random.default_rng(9))
        assert x.shape == (512,)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PaxsonGenerator(1.2)
        with pytest.raises(ValueError):
            PaxsonGenerator(0.8, variance=0.0)
        with pytest.raises(ValueError):
            PaxsonGenerator(0.8).generate(0)


class TestModelIntegration:
    def test_generate_gaussian_backend(self):
        from repro.core.model import VBRVideoModel

        model = VBRVideoModel(27_791.0, 6_254.0, 12.0, 0.8)
        g = model.generate_gaussian(4096, rng=np.random.default_rng(10), generator="paxson")
        assert np.var(g) == pytest.approx(1.0, rel=0.2)

    def test_full_model_marginal(self):
        from repro.core.model import VBRVideoModel

        model = VBRVideoModel(27_791.0, 6_254.0, 12.0, 0.8)
        x = model.generate(2**14, rng=np.random.default_rng(11), generator="paxson")
        assert np.mean(x) == pytest.approx(27_791.0, rel=0.05)
        assert np.all(x > 0)
