"""Tier-2 cross-backend equivalence of the three fGn/fARIMA backends.

The model zoo offers three Gaussian LRD generators -- Hosking
(exact fARIMA(0, d, 0)), Davies-Harte (exact fGn) and Paxson
(approximate FFT fGn).  Synthetic traffic is only trustworthy if they
agree on the statistics the paper quotes, so for H in {0.6, 0.8, 0.9}:

- Davies-Harte and Paxson share an fGn autocorrelation function
  (per-lag Monte-Carlo Welch tests, Sidak-corrected);
- all three share the low-frequency periodogram slope (the GPH ``d``);
- after aggregation -- which filters the short-range structure where
  fARIMA and fGn legitimately differ -- Hosking agrees with
  Davies-Harte in ACF too (the paper's Section 3.2.3 argument).

Every check draws from the suite-wide alpha budget and the tests are
seeded through ``seeded_rng``, so they must pass for any ``--qa-seed``.
"""

import numpy as np
import pytest

from repro.analysis.correlation import aggregate
from repro.core.daviesharte import DaviesHarteGenerator
from repro.core.hosking import HoskingGenerator
from repro.core.paxson import PaxsonGenerator
from repro.qa import stats as qa
from tests.qa_budget import CHECK_ALPHA

HURSTS = (0.6, 0.8, 0.9)
N_SAMPLES = 4096
N_PATHS = 6

pytestmark = [pytest.mark.tier2, pytest.mark.statistical_retry]


def _paths(generator, rng, n_paths=N_PATHS, n=N_SAMPLES):
    return [generator.generate(n, rng=rng) for _ in range(n_paths)]


class TestFGNBackendsShareACF:
    @pytest.mark.parametrize("hurst", HURSTS)
    def test_davies_harte_vs_paxson(self, seeded_rng, hurst):
        exact = _paths(DaviesHarteGenerator(hurst), seeded_rng)
        approx = _paths(PaxsonGenerator(hurst), seeded_rng)
        qa.require(
            qa.acf_agreement_check(
                exact,
                approx,
                max_lag=10,
                alpha=CHECK_ALPHA,
                name=f"fGn ACF davies-harte vs paxson (H={hurst})",
            )
        )


class TestAllBackendsShareSpectralSlope:
    @pytest.mark.parametrize("hurst", HURSTS)
    def test_pairwise_gph_agreement(self, seeded_rng, hurst):
        backends = {
            "hosking": _paths(HoskingGenerator(hurst=hurst), seeded_rng),
            "davies-harte": _paths(DaviesHarteGenerator(hurst), seeded_rng),
            "paxson": _paths(PaxsonGenerator(hurst), seeded_rng),
        }
        names = sorted(backends)
        pairs = [(a, b) for i, a in enumerate(names) for b in names[i + 1 :]]
        per_pair_alpha = qa.bonferroni(CHECK_ALPHA, len(pairs))
        qa.require(
            *(
                qa.gph_agreement_check(
                    backends[a],
                    backends[b],
                    alpha=per_pair_alpha,
                    name=f"periodogram slope {a} vs {b} (H={hurst})",
                )
                for a, b in pairs
            )
        )


class TestAggregationReconcilesFarimaWithFGN:
    @pytest.mark.parametrize("hurst", HURSTS)
    def test_hosking_vs_davies_harte_aggregated(self, seeded_rng, hurst):
        """fARIMA and fGn differ at short lags by design; their m=16
        aggregates are both near-fGn of the same H and must share an
        ACF."""
        m = 16
        farima = [
            aggregate(p, m)
            for p in _paths(HoskingGenerator(hurst=hurst), seeded_rng, n=N_SAMPLES * 4)
        ]
        fgn = [
            aggregate(p, m)
            for p in _paths(DaviesHarteGenerator(hurst), seeded_rng, n=N_SAMPLES * 4)
        ]
        qa.require(
            qa.acf_agreement_check(
                farima,
                fgn,
                max_lag=5,
                alpha=CHECK_ALPHA,
                name=f"aggregated ACF hosking vs davies-harte (H={hurst})",
            )
        )


class TestBackendsHitNominalHurst:
    @pytest.mark.parametrize("hurst", HURSTS)
    def test_whittle_on_exact_farima(self, seeded_rng, hurst):
        """Whittle's model matches Hosking exactly, so its analytic CI
        must cover the nominal H -- no Monte-Carlo needed."""
        x = HoskingGenerator(hurst=hurst).generate(2**14, rng=seeded_rng)
        qa.require(
            qa.hurst_ci_check(
                x, hurst, alpha=CHECK_ALPHA, name=f"whittle CI covers H={hurst}"
            )
        )
