"""Tier-2 seeded fuzz for the batched-synthesis and vectorized-queue paths.

Two fast paths ship behind the bit-exact defaults: the stacked 2-D FFT
synthesis (:func:`repro.core.batch.batch_fgn`) and the
reflection-identity queue kernel
(:func:`repro.simulation.slotfluid.slot_run_vectorized`).  Tier-1 pins
them bit-for-bit where exactness is guaranteed; this module attacks
the *rest* of the input space with randomized configurations drawn
from the rotating ``--qa-seed``:

- random ``(H, n, batch, capacity, buffer)`` queue workloads where the
  vectorized kernel must match the reference loop within tight
  float-reassociation budgets (the aggregate counters are sums of ~n
  clamped terms, so the admissible drift is a few hundred ulps, not a
  statistical tolerance);
- cross-backend equivalence of *batched* output, mirroring
  ``tests/test_qa_backends.py``: ACF, periodogram slope, and
  variance-time Hurst agreement between stacked Paxson and stacked
  Davies-Harte rows, drawing from the suite-wide alpha budget.

Every draw flows from ``seeded_rng``, so these must pass for any seed.
"""

import numpy as np
import pytest

from repro.analysis.hurst import variance_time
from repro.core.batch import batch_fgn
from repro.qa import stats as qa
from repro.simulation.slotfluid import fold_slots, slot_run_vectorized
from tests.qa_budget import CHECK_ALPHA

HURSTS = (0.6, 0.8, 0.9)
N_SAMPLES = 4096
N_PATHS = 6

pytestmark = [pytest.mark.tier2, pytest.mark.statistical_retry]


def _random_workload(rng):
    """One random queue configuration: LRD arrivals plus (c, Q)."""
    hurst = float(rng.uniform(0.55, 0.95))
    n = int(rng.integers(5_000, 60_000))
    batch = int(rng.integers(1, 9))
    # Positive arrivals with the drawn H: exponentiate the Gaussian so
    # heavy slots stress the overflow barrier, then scale to bytes.
    row = batch_fgn(n, hurst, batch, seed=int(rng.integers(2**31)))[batch - 1]
    arrivals = 10_000.0 * np.exp(0.5 * row)
    mean = float(arrivals.mean())
    capacity = mean * float(rng.uniform(0.9, 1.6))
    buffer_bytes = mean * float(rng.uniform(0.0, 30.0))
    return arrivals, capacity, buffer_bytes


class TestVectorizedKernelFuzz:
    N_WORKLOADS = 8

    def test_random_workloads_agree_with_reference(self, seeded_rng):
        for _ in range(self.N_WORKLOADS):
            a, c, q = _random_workload(seeded_rng)
            ref_losses = np.zeros(a.size)
            ref = fold_slots(a.tolist(), c, q, loss_series=ref_losses)
            vec_losses = np.zeros(a.size)
            vec = slot_run_vectorized(a, c, q, loss_series=vec_losses)
            scale = max(ref[3], 1.0)  # offered total sets the ulp scale
            for got, want in zip(vec, ref):
                np.testing.assert_allclose(
                    got, want, rtol=1e-9, atol=1e-6 * scale,
                    err_msg=f"(c={c:.1f}, q={q:.1f}, n={a.size})",
                )
            # Same overflow slots, same per-slot magnitudes.
            np.testing.assert_allclose(
                vec_losses, ref_losses, rtol=1e-9, atol=1e-6 * scale / a.size,
            )

    def test_random_chunk_boundaries_resume_exactly(self, seeded_rng):
        a, c, q = _random_workload(seeded_rng)
        whole = slot_run_vectorized(a, c, q)
        cuts = np.sort(seeded_rng.integers(1, a.size, size=4))
        state = (0.0, 0.0, 0.0, 0.0)
        for start, end in zip(np.r_[0, cuts], np.r_[cuts, a.size]):
            state = slot_run_vectorized(a[start:end], c, q, state=state)
        np.testing.assert_allclose(state, whole, rtol=1e-9)


def _batched_paths(backend, hurst, rng, n=N_SAMPLES, n_paths=N_PATHS):
    """N_PATHS independent rows synthesized through the stacked kernel."""
    rows = batch_fgn(n, hurst, n_paths, backend=backend, rng=rng)
    return list(rows)


class TestBatchedBackendEquivalence:
    """Mirrors tests/test_qa_backends.py with the batched entry point."""

    @pytest.mark.parametrize("hurst", HURSTS)
    def test_acf_agreement(self, seeded_rng, hurst):
        exact = _batched_paths("davies-harte", hurst, seeded_rng)
        approx = _batched_paths("paxson", hurst, seeded_rng)
        qa.require(
            qa.acf_agreement_check(
                exact,
                approx,
                max_lag=10,
                alpha=CHECK_ALPHA,
                name=f"batched ACF davies-harte vs paxson (H={hurst})",
            )
        )

    @pytest.mark.parametrize("hurst", HURSTS)
    def test_gph_agreement(self, seeded_rng, hurst):
        exact = _batched_paths("davies-harte", hurst, seeded_rng)
        approx = _batched_paths("paxson", hurst, seeded_rng)
        qa.require(
            qa.gph_agreement_check(
                exact,
                approx,
                alpha=CHECK_ALPHA,
                name=f"batched periodogram slope davies-harte vs paxson (H={hurst})",
            )
        )

    @pytest.mark.parametrize("hurst", HURSTS)
    def test_variance_time_agreement(self, seeded_rng, hurst):
        exact = [
            variance_time(p).hurst
            for p in _batched_paths("davies-harte", hurst, seeded_rng)
        ]
        approx = [
            variance_time(p).hurst
            for p in _batched_paths("paxson", hurst, seeded_rng)
        ]
        qa.require(
            qa.mc_agreement_check(
                exact,
                approx,
                alpha=CHECK_ALPHA,
                name=f"batched variance-time Hurst davies-harte vs paxson (H={hurst})",
            )
        )
