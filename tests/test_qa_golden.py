"""Unit tests for the golden-digest machinery (repro.qa.golden)."""

import dataclasses
import json

import numpy as np
import pytest

from repro.qa.golden import (
    DIGEST_VERSION,
    GoldenMismatch,
    GoldenStore,
    diff_digests,
    summarize,
)


@dataclasses.dataclass(frozen=True)
class _Point:
    x: float
    label: str


class TestSummarize:
    def test_scalars_pass_through(self):
        assert summarize(3) == 3
        assert summarize(2.5) == 2.5
        assert summarize("name") == "name"
        assert summarize(True) is True
        assert summarize(None) is None

    def test_numpy_scalars_become_python(self):
        assert summarize(np.float64(1.5)) == 1.5
        assert isinstance(summarize(np.int32(4)), int)

    def test_nonfinite_floats_stringified(self):
        assert summarize(float("inf")) == "inf"
        assert summarize(float("nan")) == "nan"

    def test_array_summary(self):
        digest = summarize(np.arange(100.0))
        assert digest["__array__"] is True
        assert digest["shape"] == [100]
        assert digest["mean"] == pytest.approx(49.5)
        assert digest["quantiles"]["0.5"] == pytest.approx(49.5)
        assert digest["n_nonfinite"] == 0

    def test_array_with_nans_counted(self):
        x = np.array([1.0, np.nan, 3.0, np.inf])
        digest = summarize(x)
        assert digest["n_nonfinite"] == 2
        assert digest["mean"] == pytest.approx(2.0)

    def test_dataclass_fields(self):
        digest = summarize(_Point(1.5, "a"))
        assert digest["__dataclass__"] == "_Point"
        assert digest["x"] == 1.5
        assert digest["label"] == "a"

    def test_tuple_keys_stringified(self):
        digest = summarize({(1, "overall", 0.0): 2.0})
        assert digest == {"(1, 'overall', 0.0)": 2.0}

    def test_long_numeric_list_summarized(self):
        digest = summarize(list(range(100)))
        assert digest["__array__"] is True

    def test_short_list_kept(self):
        assert summarize([1, 2, 3]) == [1, 2, 3]

    def test_unknown_object_records_type_only(self):
        class Opaque:
            pass

        assert summarize(Opaque()) == {"__type__": "Opaque"}

    def test_digest_is_json_serializable(self):
        nested = {
            "result": _Point(2.0, "b"),
            "series": np.linspace(0, 1, 50),
            "flags": (True, None),
        }
        json.dumps(summarize(nested))


class TestDiffDigests:
    def test_equal_digests_no_lines(self):
        digest = summarize({"a": np.arange(10.0), "b": 2})
        assert diff_digests(digest, digest) == []

    def test_tolerance_absorbs_tiny_drift(self):
        assert diff_digests({"x": 1.0}, {"x": 1.0 + 1e-9}) == []

    def test_reports_real_drift_with_path(self):
        lines = diff_digests({"x": {"y": 1.0}}, {"x": {"y": 2.0}})
        assert len(lines) == 1
        assert "$.x.y" in lines[0]

    def test_rtol_honoured(self):
        assert diff_digests({"x": 100.0}, {"x": 100.4}, rtol=0.01) == []
        assert diff_digests({"x": 100.0}, {"x": 102.0}, rtol=0.01) != []

    def test_missing_and_extra_keys(self):
        lines = diff_digests({"a": 1, "b": 2}, {"b": 2, "c": 3})
        assert any("$.a" in line and "missing" in line for line in lines)
        assert any("$.c" in line and "not in golden" in line for line in lines)

    def test_bool_not_confused_with_int(self):
        assert diff_digests({"x": True}, {"x": 1}) != []

    def test_length_mismatch(self):
        assert diff_digests([1, 2], [1, 2, 3]) != []

    def test_type_mismatch(self):
        assert diff_digests({"x": [1]}, {"x": "1"}) != []

    def test_nan_equals_nan(self):
        assert diff_digests({"x": float("nan")}, {"x": float("nan")}) == []


class TestGoldenStore:
    def test_missing_digest_mentions_update_flag(self, tmp_path):
        store = GoldenStore(tmp_path)
        with pytest.raises(GoldenMismatch, match="--update-golden"):
            store.check("absent", {"v": 1})

    def test_update_then_check_roundtrip(self, tmp_path):
        result = {"v": 1.5, "arr": np.arange(20.0)}
        GoldenStore(tmp_path, update=True).check("exp", result)
        GoldenStore(tmp_path).check("exp", result)  # no raise

    def test_drift_raises_with_field_diff(self, tmp_path):
        GoldenStore(tmp_path, update=True).check("exp", {"v": 1.0})
        with pytest.raises(GoldenMismatch, match=r"\$\.v"):
            GoldenStore(tmp_path).check("exp", {"v": 2.0})

    def test_written_file_is_stable(self, tmp_path):
        result = {"b": 2.0, "a": np.linspace(0, 1, 30)}
        store = GoldenStore(tmp_path, update=True)
        store.check("exp", result)
        first = store.path("exp").read_bytes()
        store.check("exp", result)
        assert store.path("exp").read_bytes() == first

    def test_schema_version_checked(self, tmp_path):
        store = GoldenStore(tmp_path, update=True)
        store.check("exp", {"v": 1})
        doc = json.loads(store.path("exp").read_text())
        doc["version"] = DIGEST_VERSION + 1
        store.path("exp").write_text(json.dumps(doc))
        with pytest.raises(GoldenMismatch, match="schema version"):
            GoldenStore(tmp_path).check("exp", {"v": 1})

    def test_per_check_tolerance_override(self, tmp_path):
        GoldenStore(tmp_path, update=True).check("exp", {"v": 100.0})
        GoldenStore(tmp_path).check("exp", {"v": 100.5}, rtol=0.01)
        with pytest.raises(GoldenMismatch):
            GoldenStore(tmp_path).check("exp", {"v": 100.5}, rtol=1e-6)

    def test_updated_names_recorded(self, tmp_path):
        store = GoldenStore(tmp_path, update=True)
        store.check("one", {"v": 1})
        store.check("two", {"v": 2})
        assert store.updated == ["one", "two"]
