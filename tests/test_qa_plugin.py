"""Tests for the repro.qa pytest plugin (tiers, seeding, retry)."""

import numpy as np
import pytest

from repro.qa.plugin import TIER_MARKERS, derive_seed


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(0, "tests/test_x.py::test_a") == derive_seed(
            0, "tests/test_x.py::test_a"
        )

    def test_distinct_across_base_seeds(self):
        seeds = {derive_seed(k, "tests/test_x.py::test_a") for k in range(5)}
        assert len(seeds) == 5

    def test_distinct_across_tests(self):
        assert derive_seed(0, "test_a") != derive_seed(0, "test_b")

    def test_distinct_across_attempts(self):
        """The statistical_retry re-run must see fresh randomness."""
        assert derive_seed(0, "test_a", attempt=0) != derive_seed(0, "test_a", attempt=1)

    def test_fits_in_64_bits(self):
        assert 0 <= derive_seed(123456, "x" * 300) < 2**64


class TestFixtures:
    def test_seeded_rng_is_generator(self, seeded_rng):
        assert isinstance(seeded_rng, np.random.Generator)
        seeded_rng.standard_normal(3)  # usable

    def test_seeded_rng_independent_per_test(self, seeded_rng):
        """A different nodeid gives a different stream; this test and
        the one above must not share their first draw (collision
        probability ~ 2^-64)."""
        first = float(
            np.random.default_rng(
                derive_seed(0, "tests/test_qa_plugin.py::TestFixtures::test_seeded_rng_is_generator")
            ).standard_normal()
        )
        other = float(
            np.random.default_rng(
                derive_seed(0, "tests/test_qa_plugin.py::TestFixtures::test_other")
            ).standard_normal()
        )
        assert first != other

    def test_golden_fixture_rooted_at_tests(self, golden):
        assert golden.root.name == "golden"
        assert golden.root.parent.name == "tests"


class TestTierDefaulting:
    def test_unmarked_test_becomes_tier1(self, request):
        """This test carries no explicit tier marker, so the plugin
        must have stamped it tier1 at collection."""
        assert request.node.get_closest_marker("tier1") is not None

    @pytest.mark.tier2
    def test_explicit_marker_wins(self, request):
        assert request.node.get_closest_marker("tier2") is not None
        assert request.node.get_closest_marker("tier1") is None

    def test_tier_names(self):
        assert TIER_MARKERS == ("tier1", "tier2", "tier3")


_retry_attempts = []


@pytest.mark.statistical_retry
def test_statistical_retry_reruns_once():
    """End-to-end retry check: fail deliberately on the first attempt;
    the plugin must re-run and the second attempt passes.  If the
    retry machinery breaks, this test fails outright."""
    _retry_attempts.append(1)
    assert len(_retry_attempts) >= 2, "first attempt fails by design; plugin retries"
