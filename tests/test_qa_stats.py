"""Unit tests for the statistical-assertion library (repro.qa.stats).

Mostly tier-1: fixed seeds, checking the machinery itself -- p-value
calibration, alpha arithmetic, failure messages -- rather than any
generator.  The checks' behaviour under the null is validated by
Monte-Carlo with deterministic seeds.
"""

import numpy as np
import pytest

from repro.distributions.gamma import Gamma
from repro.distributions.normal import Normal
from repro.qa import stats as qa
from repro.qa.stats import StatisticalCheckError


class TestAlphaHelpers:
    def test_bonferroni(self):
        assert qa.bonferroni(0.05, 10) == pytest.approx(0.005)

    def test_sidak_bounds(self):
        """Sidak is sharper than Bonferroni but never exceeds alpha."""
        for m in (1, 2, 10, 100):
            s = qa.sidak(0.05, m)
            assert qa.bonferroni(0.05, m) <= s <= 0.05 + 1e-12

    def test_sidak_family_rate_exact(self):
        """m independent checks at the Sidak level give exactly alpha."""
        s = qa.sidak(0.01, 7)
        assert 1.0 - (1.0 - s) ** 7 == pytest.approx(0.01)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            qa.bonferroni(0.0, 5)
        with pytest.raises(ValueError):
            qa.sidak(1.5, 5)


class TestZTest:
    def test_exact_match_passes(self):
        result = qa.z_test(1.0, 1.0, 0.1, alpha=0.05)
        assert result.passed
        assert result.p_value == pytest.approx(1.0)

    def test_ten_sigma_fails(self):
        result = qa.z_test(2.0, 1.0, 0.1, alpha=0.05)
        assert not result.passed
        assert result.statistic == pytest.approx(10.0)

    def test_p_value_formula(self):
        """z = 1.96 must give p ~ 0.05 (two-sided)."""
        result = qa.z_test(1.96, 0.0, 1.0, alpha=0.01)
        assert result.p_value == pytest.approx(0.05, abs=0.001)
        assert result.passed  # 0.05 >= alpha=0.01

    def test_calibrated_under_null(self):
        """False-positive rate ~ alpha for Normal estimates."""
        rng = np.random.default_rng(17)
        rejections = sum(
            not qa.z_test(rng.normal(0.0, 1.0), 0.0, 1.0, alpha=0.1).passed
            for _ in range(2000)
        )
        assert rejections / 2000 == pytest.approx(0.1, abs=0.025)

    def test_rejects_bad_se(self):
        with pytest.raises(ValueError):
            qa.z_test(1.0, 1.0, 0.0, alpha=0.05)


class TestRequire:
    def test_passes_through(self):
        result = qa.z_test(0.0, 0.0, 1.0, alpha=0.05)
        assert qa.require(result) is result

    def test_raises_with_all_failures(self):
        good = qa.z_test(0.0, 0.0, 1.0, alpha=0.05, name="good")
        bad1 = qa.z_test(9.0, 0.0, 1.0, alpha=0.05, name="first-bad")
        bad2 = qa.z_test(-9.0, 0.0, 1.0, alpha=0.05, name="second-bad")
        with pytest.raises(StatisticalCheckError) as err:
            qa.require(good, bad1, bad2)
        assert "first-bad" in str(err.value)
        assert "second-bad" in str(err.value)

    def test_result_is_truthy(self):
        assert qa.z_test(0.0, 0.0, 1.0, alpha=0.05)
        assert not qa.z_test(9.0, 0.0, 1.0, alpha=0.05)


class TestMeanCheck:
    def test_array_input(self):
        x = np.random.default_rng(3).normal(5.0, 2.0, size=4000)
        assert qa.mean_check(x, 5.0, alpha=0.001)

    def test_online_moments_input(self):
        from repro.stream import OnlineMoments

        om = OnlineMoments()
        om.update(np.random.default_rng(4).normal(5.0, 2.0, size=4000))
        assert qa.mean_check(om, 5.0, alpha=0.001)

    def test_detects_shift(self):
        x = np.random.default_rng(5).normal(5.0, 1.0, size=4000)
        assert not qa.mean_check(x, 5.2, alpha=0.001)

    def test_lrd_se_wider_than_iid(self):
        """fGn mean SE must dominate the naive iid SE for H > 1/2."""
        se_lrd = qa.fgn_mean_std_error(10_000, 0.8)
        assert se_lrd > 1.0 / np.sqrt(10_000)
        assert se_lrd == pytest.approx(10_000 ** (-0.2))

    def test_fgn_se_rejects_bad_args(self):
        with pytest.raises(ValueError):
            qa.fgn_mean_std_error(100, 1.0)
        with pytest.raises(ValueError):
            qa.fgn_mean_std_error(100, 0.8, variance=0.0)


class TestMonteCarloChecks:
    def test_mc_mean_pass_and_fail(self):
        rng = np.random.default_rng(6)
        values = rng.normal(0.8, 0.01, size=30)
        assert qa.mc_mean_check(values, 0.8, alpha=0.001)
        assert not qa.mc_mean_check(values, 0.9, alpha=0.001)

    def test_mc_agreement(self):
        rng = np.random.default_rng(7)
        a = rng.normal(1.0, 0.05, size=20)
        b = rng.normal(1.0, 0.05, size=20)
        c = rng.normal(2.0, 0.05, size=20)
        assert qa.mc_agreement_check(a, b, alpha=0.001)
        assert not qa.mc_agreement_check(a, c, alpha=0.001)

    def test_needs_replications(self):
        with pytest.raises(ValueError):
            qa.mc_mean_check([1.0, 2.0], 1.5, alpha=0.05)

    def test_constant_replications_rejected(self):
        with pytest.raises(ValueError):
            qa.mc_mean_check([1.0, 1.0, 1.0], 1.0, alpha=0.05)


class TestEquivalenceCheck:
    def test_certifies_within_margin(self):
        rng = np.random.default_rng(8)
        values = rng.normal(0.8, 0.01, size=25)
        assert qa.equivalence_check(values, 0.8, margin=0.05, alpha=0.01)

    def test_refuses_outside_margin(self):
        rng = np.random.default_rng(9)
        values = rng.normal(0.9, 0.01, size=25)
        assert not qa.equivalence_check(values, 0.8, margin=0.05, alpha=0.01)

    def test_refuses_when_se_too_wide(self):
        """A noisy estimate cannot be certified even if centered."""
        rng = np.random.default_rng(10)
        values = rng.normal(0.8, 0.5, size=5)
        assert not qa.equivalence_check(values, 0.8, margin=0.02, alpha=0.01)

    def test_rejects_bad_margin(self):
        with pytest.raises(ValueError):
            qa.equivalence_check([1.0, 2.0, 3.0], 2.0, margin=0.0, alpha=0.05)


class TestGoodnessOfFit:
    def test_ks_accepts_true_model(self):
        x = np.random.default_rng(11).normal(2.0, 3.0, size=2000)
        assert qa.ks_check(x, Normal(2.0, 3.0), alpha=0.01)

    def test_ks_rejects_wrong_model(self):
        x = np.random.default_rng(12).normal(2.0, 3.0, size=2000)
        assert not qa.ks_check(x, Normal(0.0, 3.0), alpha=0.01)

    def test_chi_square_accepts_true_model(self):
        x = np.random.default_rng(13).normal(0.0, 1.0, size=4000)
        assert qa.chi_square_check(x, Normal(0.0, 1.0), alpha=0.01, n_bins=40)

    def test_chi_square_rejects_wrong_model(self):
        rng = np.random.default_rng(14)
        x = Gamma(2.0, 1.0).sample(4000, rng)
        assert not qa.chi_square_check(x, Normal(2.0, np.sqrt(2.0)), alpha=0.01, n_bins=40)

    def test_anderson_darling_accepts_true_model(self):
        x = np.random.default_rng(15).normal(0.0, 1.0, size=2000)
        assert qa.anderson_darling_check(x, Normal(0.0, 1.0), alpha=0.01)

    def test_anderson_darling_tail_sensitive(self):
        """AD must flag a model whose tail is wrong even when the
        bulk matches (Student-t style contamination)."""
        rng = np.random.default_rng(16)
        x = rng.standard_t(df=3, size=4000)
        assert not qa.anderson_darling_check(x, Normal(0.0, np.std(x)), alpha=0.01)

    def test_ad_p_matches_case0_critical_values(self):
        """Asymptotic critical values for the fully specified null
        (D'Agostino & Stephens, Table 4.2): A^2 = 2.492 at 5%,
        3.857 at 1%."""
        from repro.qa.stats import _anderson_darling_p

        assert _anderson_darling_p(2.492) == pytest.approx(0.05, abs=0.004)
        assert _anderson_darling_p(3.857) == pytest.approx(0.01, abs=0.002)
        assert _anderson_darling_p(0.0) == 1.0

    def test_ks_calibrated_under_null(self):
        """Rejection rate ~ alpha over many null replications."""
        rng = np.random.default_rng(18)
        model = Normal(0.0, 1.0)
        rejections = sum(
            not qa.ks_check(rng.normal(size=300), model, alpha=0.1).passed
            for _ in range(300)
        )
        assert rejections / 300 == pytest.approx(0.1, abs=0.05)


class TestDependenceChecks:
    def test_acf_same_generator_agrees(self):
        from repro.core.daviesharte import DaviesHarteGenerator

        rng = np.random.default_rng(19)
        gen = DaviesHarteGenerator(0.8)
        a = [gen.generate(4096, rng=rng) for _ in range(5)]
        b = [gen.generate(4096, rng=rng) for _ in range(5)]
        assert qa.acf_agreement_check(a, b, max_lag=10, alpha=0.001)

    def test_acf_different_hurst_disagrees(self):
        from repro.core.daviesharte import DaviesHarteGenerator

        rng = np.random.default_rng(20)
        a = [DaviesHarteGenerator(0.6).generate(4096, rng=rng) for _ in range(5)]
        b = [DaviesHarteGenerator(0.9).generate(4096, rng=rng) for _ in range(5)]
        assert not qa.acf_agreement_check(a, b, max_lag=10, alpha=0.001)

    def test_gph_agreement(self):
        from repro.core.daviesharte import DaviesHarteGenerator

        rng = np.random.default_rng(21)
        a = [DaviesHarteGenerator(0.8).generate(4096, rng=rng) for _ in range(5)]
        b = [DaviesHarteGenerator(0.8).generate(4096, rng=rng) for _ in range(5)]
        c = [DaviesHarteGenerator(0.55).generate(4096, rng=rng) for _ in range(5)]
        assert qa.gph_agreement_check(a, b, alpha=0.001)
        assert not qa.gph_agreement_check(a, c, alpha=0.001)

    def test_hurst_ci_whittle(self):
        from repro.core.hosking import hosking_farima

        x = hosking_farima(8192, hurst=0.8, rng=np.random.default_rng(22))
        assert qa.hurst_ci_check(x, 0.8, alpha=0.001, estimator="whittle")
        assert not qa.hurst_ci_check(x, 0.6, alpha=0.001, estimator="whittle")

    def test_hurst_ci_rejects_unknown_estimator(self):
        with pytest.raises(ValueError):
            qa.hurst_ci_check(np.zeros(100), 0.8, alpha=0.05, estimator="wavelet")

    def test_acf_needs_enough_paths(self):
        with pytest.raises(ValueError):
            qa.acf_agreement_check(
                [np.zeros(100)], [np.zeros(100)], max_lag=5, alpha=0.05
            )
