"""Tests for the Q-C trade-off machinery (capacity/buffer searches,
curves, knee, SMG)."""

import numpy as np
import pytest

from repro.simulation.multiplex import multiplex_series, random_lags
from repro.simulation.qc import (
    knee_point,
    qc_curve,
    required_buffer,
    required_capacity,
    smg_curve,
)
from repro.simulation.queue import max_backlog, simulate_queue


@pytest.fixture(scope="module")
def series(small_series):
    return small_series[:8_000]


class TestRequiredBuffer:
    def test_zero_target_equals_drawdown(self, series):
        c = float(series.mean()) * 1.3
        q = required_buffer([series], c, 0.0)
        assert q == pytest.approx(max_backlog(series, c))

    def test_achieves_target(self, series):
        c = float(series.mean()) * 1.1
        target = 1e-3
        q = required_buffer([series], c, target)
        assert simulate_queue(series, c, q).loss_rate <= target * 1.02

    def test_near_minimal(self, series):
        """A 20% smaller buffer must violate the target."""
        c = float(series.mean()) * 1.1
        target = 1e-3
        q = required_buffer([series], c, target)
        if q > 0:
            assert simulate_queue(series, c, 0.8 * q).loss_rate > target

    def test_zero_when_capacity_huge(self, series):
        q = required_buffer([series], float(series.max()), 1e-3)
        assert q == 0.0

    def test_averages_over_draws(self, series, rng):
        lags = [random_lags(2, series.size, rng=rng) for _ in range(3)]
        sets = [multiplex_series(series, l) for l in lags]
        c = 2 * float(series.mean()) * 1.2
        q = required_buffer(sets, c, 1e-3)
        losses = [simulate_queue(a, c, q).loss_rate for a in sets]
        assert np.mean(losses) <= 1e-3 * 1.05

    def test_wes_metric(self, series):
        c = float(series.mean()) * 1.3
        q = required_buffer([series], c, 1e-2, metric="wes", slots_per_second=24)
        from repro.simulation.metrics import worst_errored_second_loss

        result = simulate_queue(series, c, q, return_series=True)
        wes = worst_errored_second_loss(result.loss_series, series, 24)
        assert wes <= 1e-2 * 1.1

    def test_rejects_empty_sets(self):
        with pytest.raises(ValueError):
            required_buffer([], 10.0, 0.0)


class TestRequiredCapacity:
    def test_zero_target(self, series):
        q = 100_000.0
        c = required_capacity([series], q, 0.0)
        assert simulate_queue(series, c, q).lost_bytes == pytest.approx(0.0, abs=1.0)

    def test_lossy_target(self, series):
        q = 50_000.0
        target = 1e-3
        c = required_capacity([series], q, target)
        assert simulate_queue(series, c, q).loss_rate <= target * 1.02
        assert simulate_queue(series, c * 0.95, q).loss_rate > target * 0.5

    def test_looser_target_needs_less_capacity(self, series):
        q = 50_000.0
        c_strict = required_capacity([series], q, 1e-5)
        c_loose = required_capacity([series], q, 1e-2)
        assert c_loose < c_strict

    def test_bounded_by_mean_and_peak(self, series):
        q = 10_000.0
        c = required_capacity([series], q, 1e-4)
        assert series.mean() <= c <= series.max()


class TestQCCurve:
    def test_zero_loss_curve_shape(self, series, rng):
        curve = qc_curve(series, 1 / 24.0, n_sources=1, target_loss=0.0, n_points=8, rng=rng)
        assert curve.capacity_per_source.size == 8
        # More capacity -> less buffer -> less delay (monotone trend).
        assert curve.tmax_ms[0] > curve.tmax_ms[-1]
        assert np.all(np.diff(curve.tmax_ms) <= 1e-9)

    def test_capacity_in_mbps(self, series, rng):
        curve = qc_curve(series, 1 / 24.0, n_sources=1, target_loss=0.0, n_points=4, rng=rng)
        expected = curve.capacity_per_source * 8 * 24 / 1e6
        np.testing.assert_allclose(curve.capacity_per_source_mbps, expected)

    def test_looser_loss_curve_is_lower(self, series, rng):
        """For the same capacity, allowing loss shrinks the required
        buffer (Fig. 14's vertical ordering)."""
        caps = np.array([series.mean() * 1.15])
        strict = qc_curve(series, 1 / 24.0, 1, 0.0, capacities=caps, rng=rng)
        loose = qc_curve(series, 1 / 24.0, 1, 1e-2, capacities=caps, rng=rng)
        assert loose.tmax_ms[0] <= strict.tmax_ms[0]

    def test_multiplexed_needs_less_per_source(self, series, rng):
        """At matched T_max, 5 sources need less per-source capacity
        than 1 (statistical multiplexing gain in Q-C form)."""
        c1 = qc_curve(series, 1 / 24.0, 1, 0.0, n_points=10, rng=rng)
        c5 = qc_curve(series, 1 / 24.0, 5, 0.0, n_points=10, rng=rng, n_lag_draws=2)
        # Compare capacity needed for T_max <= 10 ms.
        cap1 = c1.capacity_per_source[np.searchsorted(-c1.tmax_ms, -10.0)]
        cap5 = c5.capacity_per_source[np.searchsorted(-c5.tmax_ms, -10.0)]
        assert cap5 < cap1

    def test_rejects_bad_capacities(self, series, rng):
        with pytest.raises(ValueError):
            qc_curve(series, 1 / 24.0, 1, 0.0, capacities=[-1.0], rng=rng)


class TestKnee:
    def test_synthetic_l_curve(self):
        """A sharp synthetic L-shape has its knee at the corner."""
        from repro.simulation.qc import QCCurve

        x = np.linspace(1.0, 2.0, 21)
        y = np.where(x < 1.5, 10.0 ** (4 - 8 * (x - 1.0)), 10.0 ** (0.2 - 0.4 * (x - 1.5)))
        curve = QCCurve(
            n_sources=1,
            target_loss=0.0,
            metric="overall",
            slot_seconds=1 / 24.0,
            capacity_per_source=x,
            buffer_bytes=y,
            tmax_ms=y,
        )
        knee = knee_point(curve)
        assert abs(x[knee] - 1.5) < 0.15

    def test_knee_on_real_curve(self, series, rng):
        curve = qc_curve(series, 1 / 24.0, 1, 0.0, n_points=12, rng=rng)
        knee = knee_point(curve)
        assert 0 < knee < curve.capacity_per_source.size - 1

    def test_requires_three_points(self):
        from repro.simulation.qc import QCCurve

        curve = QCCurve(
            n_sources=1, target_loss=0.0, metric="overall", slot_seconds=1.0,
            capacity_per_source=np.array([1.0, 2.0]),
            buffer_bytes=np.array([1.0, 0.5]),
            tmax_ms=np.array([1.0, 0.5]),
        )
        with pytest.raises(ValueError):
            knee_point(curve)


class TestSMG:
    def test_capacity_decreases_with_n(self, series, rng):
        result = smg_curve(series, 1 / 24.0, n_values=(1, 2, 5), target_loss=0.0, rng=rng, n_lag_draws=2)
        caps = result["capacity_per_source"]
        assert caps[0] > caps[1] > caps[2]

    def test_n1_near_peak_and_bounds(self, series, rng):
        result = smg_curve(series, 1 / 24.0, n_values=(1,), target_loss=0.0, tmax_ms=2.0, rng=rng)
        cap = result["capacity_per_source"][0]
        assert result["mean_rate"] < cap <= result["peak_rate"] * 1.001
        assert cap > 0.8 * result["peak_rate"]

    def test_gain_fraction_definition(self, series, rng):
        result = smg_curve(series, 1 / 24.0, n_values=(1, 5), target_loss=0.0, rng=rng, n_lag_draws=2)
        caps = result["capacity_per_source"]
        expected = (result["peak_rate"] - caps) / (result["peak_rate"] - result["mean_rate"])
        np.testing.assert_allclose(result["gain_fraction"], expected)

    def test_lossy_target_needs_less(self, series, rng):
        strict = smg_curve(series, 1 / 24.0, n_values=(2,), target_loss=0.0, rng=np.random.default_rng(4), n_lag_draws=2)
        loose = smg_curve(series, 1 / 24.0, n_values=(2,), target_loss=1e-2, rng=np.random.default_rng(4), n_lag_draws=2)
        assert loose["capacity_per_source"][0] <= strict["capacity_per_source"][0] * 1.01

    def test_substantial_gain_by_n5(self, series, rng):
        """The paper's headline: ~72% of the peak-to-mean gain by N=5."""
        result = smg_curve(series, 1 / 24.0, n_values=(5,), target_loss=0.0, rng=rng)
        assert result["gain_fraction"][0] > 0.5
