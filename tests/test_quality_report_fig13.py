"""Tests for quality metrics, the trace report, and the Fig. 13 system."""

import numpy as np
import pytest

from repro.analysis.report import analyze_trace
from repro.experiments import fig13_system
from repro.video.codec import IntraframeCodec
from repro.video.quality import blockiness, mse, psnr, quality_report


class TestQualityMetrics:
    def test_psnr_identical_is_infinite(self):
        img = np.full((16, 16), 100.0)
        assert psnr(img, img) == float("inf")

    def test_psnr_known_value(self):
        """Uniform error of 1 pel: PSNR = 20 log10(255) ~= 48.13 dB."""
        a = np.zeros((16, 16))
        b = np.ones((16, 16))
        assert psnr(a, b) == pytest.approx(20 * np.log10(255.0), rel=1e-9)

    def test_mse(self):
        a = np.zeros((8, 8))
        b = np.full((8, 8), 2.0)
        assert mse(a, b) == pytest.approx(4.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros((8, 8)), np.zeros((8, 16)))

    def test_blockiness_smooth_image_near_one(self, rng):
        img = rng.normal(128, 20, size=(64, 64))
        assert blockiness(img) == pytest.approx(1.0, abs=0.15)

    def test_blockiness_detects_block_structure(self, rng):
        """An image made of constant 8x8 tiles has all its energy at
        block boundaries."""
        tiles = rng.uniform(0, 255, size=(8, 8))
        img = np.kron(tiles, np.ones((8, 8)))
        assert blockiness(img) > 10.0

    def test_codec_increases_blockiness(self, rng):
        """The paper's artifact: coarse quantization makes block
        boundaries visible."""
        img = np.clip(
            128
            + 40 * np.sin(np.arange(64) / 5.0)[None, :]
            + rng.normal(0, 12, size=(64, 64)),
            0, 255,
        )
        coarse = IntraframeCodec(quant_step=96.0, slices_per_frame=4)
        report = quality_report(img, coarse.decode_frame(coarse.encode_frame(img)))
        assert report["blockiness_increase"] > 1.02
        assert report["psnr_db"] < 40.0

    def test_fine_quantizer_better_quality(self, rng):
        img = np.clip(rng.normal(128, 30, size=(48, 48)), 0, 255)
        fine = IntraframeCodec(quant_step=4.0, slices_per_frame=4)
        coarse = IntraframeCodec(quant_step=64.0, slices_per_frame=4)
        q_fine = quality_report(img, fine.decode_frame(fine.encode_frame(img)))
        q_coarse = quality_report(img, coarse.decode_frame(coarse.encode_frame(img)))
        assert q_fine["psnr_db"] > q_coarse["psnr_db"]

    def test_blockiness_rejects_tiny_image(self):
        with pytest.raises(ValueError):
            blockiness(np.zeros((8, 8)))


class TestTraceReport:
    @pytest.fixture(scope="class")
    def report(self, small_trace):
        return analyze_trace(small_trace)

    def test_verdict_lrd(self, report):
        assert report.is_lrd
        assert 0.7 < report.hurst < 1.0

    def test_panel_complete(self, report):
        assert len(report.hurst_estimates) >= 6

    def test_marginal_fitted(self, report):
        assert report.marginal.mu_gamma == pytest.approx(27_791, rel=0.01)
        assert report.tail_ranking[0] in ("pareto", "gamma_pareto")

    def test_format_renders(self, report):
        text = report.format()
        assert "Hurst panel" in text
        assert "VERDICT" in text
        assert "stationary LRD" in text or "non-stationarity" in text

    def test_accepts_plain_series(self, small_series):
        report = analyze_trace(small_series)
        assert report.summary.n_observations == small_series.size

    def test_iid_control_not_lrd(self, rng):
        x = rng.gamma(20.0, 1000.0, size=30_000)
        report = analyze_trace(x)
        assert not report.is_lrd


class TestFig13System:
    def test_composition_laws_hold(self, small_trace):
        result = fig13_system.run(small_trace, n_frames=8_000)
        assert result["conservation_ok"]
        assert result["loss_rate"] >= 0
        assert result["offered_bytes"] > result["lost_bytes"]

    def test_parameters_respected(self, small_trace):
        result = fig13_system.run(small_trace, n_sources=3, n_frames=8_000)
        assert result["n_sources"] == 3
        assert len(result["lags"]) == 3
