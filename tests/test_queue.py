"""Tests for the finite-buffer FIFO queue and the drawdown analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.queue import max_backlog, simulate_queue, zero_loss_capacity


class TestSimulateQueue:
    def test_no_loss_when_capacity_exceeds_peak(self, rng):
        a = rng.uniform(0, 10, size=1000)
        result = simulate_queue(a, capacity_per_slot=10.0, buffer_bytes=0.0)
        assert result.lost_bytes == 0.0
        assert result.loss_rate == 0.0

    def test_total_conservation(self, rng):
        """offered = served + lost + final backlog."""
        a = rng.uniform(0, 20, size=2000)
        c, q = 8.0, 50.0
        result = simulate_queue(a, c, q, return_series=True)
        served = result.total_bytes - result.lost_bytes - result.final_backlog
        # Served bytes cannot exceed capacity * slots.
        assert served <= c * a.size + 1e-9
        assert result.loss_series.sum() == pytest.approx(result.lost_bytes)

    def test_deterministic_overflow(self):
        """Hand-computed: arrivals [10, 10], c=2, Q=5.
        Slot 1: backlog 8 -> lose 3, keep 5.  Slot 2: 5+10-2=13 -> lose
        8, keep 5."""
        result = simulate_queue([10.0, 10.0], 2.0, 5.0, return_series=True)
        assert result.lost_bytes == pytest.approx(11.0)
        np.testing.assert_allclose(result.loss_series, [3.0, 8.0])
        assert result.final_backlog == pytest.approx(5.0)

    def test_zero_buffer_multiplexer(self):
        """Q=0: every slot loses exactly max(0, a - c)."""
        a = np.array([5.0, 1.0, 9.0])
        result = simulate_queue(a, 4.0, 0.0)
        assert result.lost_bytes == pytest.approx(1.0 + 0.0 + 5.0)

    def test_loss_monotone_in_capacity(self, rng):
        a = rng.uniform(0, 30, size=3000)
        losses = [simulate_queue(a, c, 40.0).loss_rate for c in (5.0, 10.0, 15.0, 29.0)]
        assert all(x >= y - 1e-12 for x, y in zip(losses, losses[1:]))

    def test_loss_monotone_in_buffer(self, rng):
        a = rng.uniform(0, 30, size=3000)
        losses = [simulate_queue(a, 12.0, q).loss_rate for q in (0.0, 20.0, 100.0, 1000.0)]
        assert all(x >= y - 1e-12 for x, y in zip(losses, losses[1:]))

    def test_peak_backlog_capped_at_buffer(self, rng):
        a = rng.uniform(0, 30, size=1000)
        result = simulate_queue(a, 5.0, 25.0)
        assert result.peak_backlog <= 25.0

    def test_rejects_negative_arrivals(self):
        with pytest.raises(ValueError):
            simulate_queue([-1.0, 2.0], 1.0, 1.0)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            simulate_queue([1.0], 0.0, 1.0)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_rejects_non_finite_capacity(self, bad):
        with pytest.raises(ValueError):
            simulate_queue([1.0, 2.0], bad, 1.0)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_rejects_non_finite_buffer(self, bad):
        with pytest.raises(ValueError):
            simulate_queue([1.0, 2.0], 1.0, bad)


class TestMaxBacklog:
    def test_matches_infinite_buffer_simulation(self, rng):
        a = rng.uniform(0, 30, size=5000)
        c = 16.0
        analytic = max_backlog(a, c)
        sim = simulate_queue(a, c, buffer_bytes=1e18)
        assert analytic == pytest.approx(sim.peak_backlog, rel=1e-12)

    def test_zero_when_capacity_dominates(self, rng):
        a = rng.uniform(0, 5, size=100)
        assert max_backlog(a, 5.0) == 0.0

    def test_simple_case(self):
        # arrivals [4, 4, 0], c = 2: backlog path [2, 4, 2].
        assert max_backlog([4.0, 4.0, 0.0], 2.0) == pytest.approx(4.0)

    def test_zero_loss_iff_buffer_at_least_drawdown(self, rng):
        a = rng.uniform(0, 30, size=2000)
        c = 16.0
        q_star = max_backlog(a, c)
        assert simulate_queue(a, c, q_star).lost_bytes == pytest.approx(0.0, abs=1e-9)
        if q_star > 0:
            assert simulate_queue(a, c, q_star * 0.95).lost_bytes > 0


class TestZeroLossCapacity:
    def test_infinite_buffer_needs_only_mean(self, rng):
        """With a huge buffer, capacity just above the mean suffices."""
        a = rng.uniform(0, 10, size=5000)
        c = zero_loss_capacity(a, buffer_bytes=1e9)
        assert c <= np.mean(a) * 1.05

    def test_zero_buffer_needs_peak(self, rng):
        a = rng.uniform(0, 10, size=500)
        c = zero_loss_capacity(a, buffer_bytes=0.0)
        assert c == pytest.approx(np.max(a), rel=1e-3)

    def test_returned_capacity_actually_lossless(self, small_series):
        q = 200_000.0
        c = zero_loss_capacity(small_series, q)
        assert simulate_queue(small_series, c, q).lost_bytes == pytest.approx(0.0, abs=1.0)

    def test_monotone_in_buffer(self, small_series):
        c_small = zero_loss_capacity(small_series, 50_000.0)
        c_large = zero_loss_capacity(small_series, 2_000_000.0)
        assert c_large <= c_small


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), c=st.floats(1.0, 20.0), q=st.floats(0.0, 100.0))
def test_queue_conservation_property(seed, c, q):
    """Property: bytes are conserved and loss never exceeds input."""
    a = np.random.default_rng(seed).uniform(0, 25, size=300)
    result = simulate_queue(a, c, q)
    assert 0.0 <= result.lost_bytes <= result.total_bytes + 1e-9
    assert 0.0 <= result.final_backlog <= q + 1e-9
    assert result.peak_backlog <= q + 1e-9


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), c=st.floats(5.0, 30.0))
def test_drawdown_equals_infinite_buffer_peak_property(seed, c):
    """Property: the vectorized drawdown equals the loop simulation."""
    a = np.random.default_rng(seed).uniform(0, 25, size=400)
    assert max_backlog(a, c) == pytest.approx(
        simulate_queue(a, c, 1e15).peak_backlog, rel=1e-9, abs=1e-9
    )
