"""Tests for reporting helpers and the experiment runner."""

import numpy as np
import pytest

from repro.experiments.reporting import format_kv, format_table
from repro.experiments.runner import run_all, summary_lines


class TestFormatTable:
    def test_aligned_columns(self):
        out = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].index("value") == lines[2].index("1") or "value" in lines[0]

    def test_title(self):
        out = format_table(["x"], [["1"]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestFormatKV:
    def test_alignment(self):
        out = format_kv([("short", 1), ("much-longer-key", 2)])
        lines = out.splitlines()
        assert lines[0].rstrip().endswith("1")
        assert lines[1].rstrip().endswith("2")

    def test_title(self):
        assert format_kv([("a", 1)], title="T").startswith("T\n")


class TestRunner:
    @pytest.fixture(scope="class")
    def results(self):
        # quick mode: 40k-frame trace, shrunken simulations.
        return run_all(quick=True)

    def test_all_experiments_present(self, results):
        expected = {
            "table1", "table1_codec", "table2", "table3",
            "fig01", "fig02", "fig03", "fig04", "fig05", "fig06",
            "fig07", "fig08", "fig09", "fig10", "fig11", "fig12",
            "fig14", "fig15", "fig16", "fig17",
        }
        assert expected <= set(results)

    def test_summary_lines_cover_everything(self, results):
        lines = summary_lines(results)
        text = "\n".join(lines)
        for token in ("Table 1", "Table 2", "Table 3", "Fig 4", "Fig 11", "Fig 16"):
            assert token in text

    def test_headline_claims_hold_in_quick_mode(self, results):
        """The paper's main findings survive even the quick run."""
        # Heavy tail: Pareto fits the tail better than Normal.
        dev = results["fig04"]["tail_deviation"]
        assert dev["pareto"] < dev["normal"]
        # LRD: H in the elevated band.
        assert results["fig11"]["hurst"] > 0.7
        # Multiplexing gain is substantial by N=5.
        assert results["fig15"]["mean_gain_at_5"] > 0.5
        # Full model beats the crippled variants at N=1.
        offsets = results["fig16"]["offsets"]
        n_min = min(offsets)
        assert offsets[n_min]["full-model"] <= offsets[n_min]["gaussian-farima"]
