"""Chaos tests over the real 25-experiment campaign (tier 2).

The acceptance scenarios for :mod:`repro.resilience`: a quick campaign
SIGKILLed mid-run resumes to digest-identical results, and an injected
transient fault plan completes the full suite while the failure report
lists exactly the injected faults.  These drive the actual experiment
suite, so they are minutes-scale and ride the nightly tier-2 job.
"""

import json
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.experiments.runner import run_all
from repro.qa.golden import diff_digests, summarize
from repro.qa.plugin import derive_seed
from repro.resilience.faults import FaultPlan, TransientFault

pytestmark = pytest.mark.tier2


def campaign_digest(results):
    """JSON-normalized golden digest of a full results dict."""
    return json.loads(json.dumps(summarize(results)))


@pytest.fixture
def chaos_rng(request):
    """Scenario-shaping rng rotated by the nightly ``--qa-seed``.

    Chooses *which* experiments get faulted and *where* the kill lands,
    so every nightly run exercises a fresh scenario while staying
    reproducible from the printed seed.
    """
    return np.random.default_rng(
        derive_seed(request.config.getoption("--qa-seed"), request.node.nodeid)
    )


@pytest.fixture(scope="module")
def uninterrupted():
    """One uninterrupted quick campaign shared by the scenarios."""
    return run_all(quick=True)


class TestKillAndResume:
    def test_sigkill_then_resume_is_digest_identical(self, tmp_path, uninterrupted,
                                                     chaos_rng):
        ckpt = tmp_path / "ckpt"
        kill_after = int(chaos_rng.integers(2, 8))
        proc = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "from repro.experiments.runner import run_all\n"
                f"run_all(quick=True, checkpoint_dir={str(ckpt)!r})\n",
            ],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                done = [p for p in ckpt.glob("*.json") if p.stem != "campaign"]
                if len(done) >= kill_after or proc.poll() is not None:
                    break
                time.sleep(0.05)
            proc.send_signal(signal.SIGKILL)
        finally:
            proc.wait()
        completed = [p.stem for p in ckpt.glob("*.json") if p.stem != "campaign"]
        assert completed, "campaign was killed before any checkpoint was written"
        assert len(completed) < 23, "campaign finished before it could be killed"

        report = run_all(quick=True, checkpoint_dir=str(ckpt), resume=True,
                         report=True)
        assert report.ok
        assert len(report.results) == 25
        assert set(report.resumed) == set(completed)
        assert diff_digests(
            campaign_digest(uninterrupted), campaign_digest(report.results)
        ) == []

    def test_resume_refuses_drifted_configuration(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        plan = FaultPlan().fail_at("experiment:table3", call=1, exc=ValueError)
        report = run_all(quick=True, checkpoint_dir=str(ckpt), report=True,
                         fault_plan=plan)
        assert not report.ok  # table3 failed terminally, rest completed
        with pytest.raises(ValueError, match="different campaign"):
            run_all(quick=True, sim_frames=5_000, checkpoint_dir=str(ckpt),
                    resume=True, report=True)


class TestInjectedTransients:
    def test_first_attempts_fail_campaign_completes(self, uninterrupted, chaos_rng):
        targets = tuple(
            chaos_rng.choice(sorted(uninterrupted), size=3, replace=False)
        )
        plan = FaultPlan(seed=11)
        for eid in targets:
            plan.fail_at(f"experiment:{eid}", call=1, exc=TransientFault)
        report = run_all(quick=True, fault_plan=plan, max_retries=2,
                         report=True, sleep=lambda s: None)
        assert report.ok
        assert len(report.results) == 25
        # The failure report lists exactly the injected faults.
        assert sorted(f.experiment_id for f in report.attempt_failures) == sorted(targets)
        assert all(f.transient for f in report.attempt_failures)
        assert sorted(f.site for f in plan.injected) == sorted(
            f"experiment:{e}" for e in targets
        )
        assert diff_digests(
            campaign_digest(uninterrupted), campaign_digest(report.results)
        ) == []
