"""Tests for deterministic fault injection and the hardened stream edges."""

import numpy as np
import pytest

from repro.resilience.faults import (
    FaultPlan,
    FlakyChunkSource,
    TransientFault,
    active_plan,
    reach,
)
from repro.stream.pipeline import ParallelSources, Stream, StreamIntegrityError
from repro.stream.sources import ArraySource, BlockFGNSource


class TestFaultPlan:
    def test_fires_at_exact_call(self):
        plan = FaultPlan().fail_at("site", call=3, exc=TransientFault)
        with plan.active():
            reach("site")
            reach("site")
            with pytest.raises(TransientFault):
                reach("site")
            reach("site")  # the fault is consumed; later calls pass
        assert plan.calls("site") == 4
        assert len(plan.injected) == 1
        fault = plan.injected[0]
        assert (fault.site, fault.call_index, fault.error_type) == (
            "site", 3, "TransientFault",
        )

    def test_multiple_faults_per_site(self):
        plan = (
            FaultPlan()
            .fail_at("s", call=1, exc=MemoryError, message="boom 1")
            .fail_at("s", call=2, exc=TimeoutError, message="boom 2")
        )
        with plan.active():
            with pytest.raises(MemoryError, match="boom 1"):
                reach("s")
            with pytest.raises(TimeoutError, match="boom 2"):
                reach("s")
            reach("s")
        assert [f.error_type for f in plan.injected] == ["MemoryError", "TimeoutError"]

    def test_reach_is_noop_without_plan(self):
        assert active_plan() is None
        reach("anything")  # must not raise, must not record

    def test_only_one_active_plan(self):
        with FaultPlan().active():
            with pytest.raises(RuntimeError, match="already active"):
                with FaultPlan().active():
                    pass
        assert active_plan() is None

    def test_plan_deactivated_after_exception(self):
        plan = FaultPlan().fail_at("s", call=1)
        with pytest.raises(TransientFault):
            with plan.active():
                reach("s")
        assert active_plan() is None

    def test_schedule_validation(self):
        plan = FaultPlan()
        with pytest.raises(ValueError):
            plan.fail_at("s", call=0)
        with pytest.raises(TypeError):
            plan.fail_at("s", exc=TransientFault("instance, not class"))
        plan.fail_at("s", call=1)
        with pytest.raises(ValueError, match="already has a fault"):
            plan.fail_at("s", call=1)


class TestCorruptChunks:
    def chunks(self):
        return [np.ones(64), np.ones(64), np.ones(64)]

    def test_deterministic_under_seed(self):
        a = np.concatenate(list(
            FaultPlan(seed=5).corrupt_chunks(self.chunks(), nan_rate=0.7)
        ))
        b = np.concatenate(list(
            FaultPlan(seed=5).corrupt_chunks(self.chunks(), nan_rate=0.7)
        ))
        np.testing.assert_array_equal(a, b)
        assert np.isnan(a).any()

    def test_nan_and_inf_bursts_recorded(self):
        plan = FaultPlan(seed=1)
        out = list(plan.corrupt_chunks(self.chunks(), nan_rate=1.0, inf_rate=1.0,
                                       burst=4))
        total = np.concatenate(out)
        assert np.isnan(total).any()
        assert np.isinf(total).any()
        kinds = {f.error_type for f in plan.injected}
        assert kinds == {"nan_burst", "inf_burst"}

    def test_truncation(self):
        plan = FaultPlan(seed=2)
        out = list(plan.corrupt_chunks(self.chunks(), truncate_after=100))
        assert sum(c.size for c in out) == 100
        assert any(f.error_type == "truncation" for f in plan.injected)

    def test_no_rates_passthrough(self):
        plan = FaultPlan(seed=3)
        out = np.concatenate(list(plan.corrupt_chunks(self.chunks())))
        np.testing.assert_array_equal(out, np.ones(192))
        assert plan.injected == []


class TestStreamGuard:
    def test_clean_stream_passes_through(self):
        data = np.arange(100.0)
        out = Stream.from_array(data, chunk_size=16).guard("gen").to_array()
        np.testing.assert_array_equal(out, data)

    def test_reports_provenance(self):
        data = np.arange(100.0)
        data[37] = np.nan
        chunks = (data[i : i + 16] for i in range(0, 100, 16))
        stream = Stream(chunks, n=100).guard("paxson-0")
        with pytest.raises(StreamIntegrityError) as excinfo:
            stream.to_array()
        err = excinfo.value
        assert err.source == "paxson-0"
        assert err.chunk_index == 2
        assert err.sample_offset == 37
        assert "paxson-0" in str(err)
        assert "offset 37" in str(err)

    def test_guard_catches_injected_corruption(self):
        plan = FaultPlan(seed=9)
        corrupted = plan.corrupt_chunks(
            (np.ones(32) for _ in range(8)), nan_rate=1.0
        )
        with pytest.raises(StreamIntegrityError):
            Stream(corrupted).guard("injected").to_array()

    def test_guard_is_a_valueerror(self):
        assert issubclass(StreamIntegrityError, ValueError)


class TestParallelRecovery:
    def build_pools(self):
        sources = [
            BlockFGNSource(0.8, block_size=256, overlap=32) for _ in range(3)
        ]
        flaky = [
            FlakyChunkSource(
                BlockFGNSource(0.8, block_size=256, overlap=32), site=f"src:{i}"
            )
            for i in range(3)
        ]
        return ParallelSources(sources), ParallelSources(flaky)

    def test_recovers_from_worker_death(self):
        plain, flaky = self.build_pools()
        baseline = np.concatenate(
            list(plain.chunks(2048, 256, rng=np.random.default_rng(6)))
        )
        plan = FaultPlan().fail_at("src:1", call=4, exc=TransientFault)
        with plan.active():
            recovered = np.concatenate(
                list(flaky.chunks(2048, 256, rng=np.random.default_rng(6)))
            )
        np.testing.assert_array_equal(recovered, baseline)
        assert len(flaky.recoveries) == 1
        event = flaky.recoveries[0]
        assert event["source"] == 1
        assert event["error_type"] == "TransientFault"

    def test_restart_budget_exhausted_propagates(self):
        _, flaky = self.build_pools()
        plan = (
            FaultPlan()
            .fail_at("src:0", call=1, exc=TransientFault)
            # The replay of 0 delivered chunks lands the retry on call 2.
            .fail_at("src:0", call=2, exc=TransientFault)
        )
        with plan.active():
            with pytest.raises(TransientFault):
                list(flaky.chunks(2048, 256, rng=np.random.default_rng(6),
                                  max_restarts=1))

    def test_values_unchanged_without_faults(self):
        # The seed-recording spawn must be byte-identical to rng.spawn.
        sources = [ArraySource(np.arange(90.0)) for _ in range(2)]
        pool = ParallelSources(sources)
        out = np.concatenate(list(pool.chunks(90, 30, rng=np.random.default_rng(0))))
        np.testing.assert_array_equal(out, 2 * np.arange(90.0))
