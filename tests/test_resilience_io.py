"""Corruption-recovery suite for trace-file I/O.

Every damaged file is produced by the fault-injection corrupters in
:mod:`repro.resilience.faults`, so the failure modes tested here are
exactly the ones the chaos harness can inject elsewhere.
"""

import numpy as np
import pytest

from repro.resilience.faults import TRACE_CORRUPTIONS, FaultPlan, corrupt_trace_file
from repro.video.trace import VBRTrace
from repro.video.tracefile import (
    TraceFormatError,
    load_trace,
    load_trace_lenient,
    save_trace,
)

# Modes that damage a single line's value; "truncated" (which shortens
# the file) is exercised separately because a frame-unit file with one
# clean-cut line is still syntactically valid.
LINE_CORRUPTIONS = tuple(m for m in TRACE_CORRUPTIONS if m != "truncated")


def truncate_breaking_invariant(path, slices_per_frame=4):
    """Corrupt ``path`` by truncation so the slice invariant breaks.

    The corrupter picks the cut line at random from its seeded stream;
    one cut in ``slices_per_frame`` lands on a frame boundary and stays
    valid, so probe a few seeds for one that actually breaks it.
    """
    for seed in range(16):
        bad = FaultPlan(seed=seed).corrupt_trace_file(path, "truncated")
        n_data = sum(
            1 for line in open(bad, "rb").read().splitlines()
            if line.strip() and not line.lstrip().startswith(b"#")
        )
        if n_data % slices_per_frame:
            return bad
    raise AssertionError("no probed seed broke the slice invariant")


@pytest.fixture
def clean_file(tmp_path):
    rng = np.random.default_rng(0)
    frames = rng.integers(1000, 5000, size=80).astype(float)
    path = tmp_path / "clean.dat"
    save_trace(VBRTrace(frames, frame_rate=24.0), path)
    return path, frames


@pytest.fixture
def slice_file(tmp_path):
    rng = np.random.default_rng(1)
    slices = rng.integers(100, 500, size=40 * 4).astype(float)
    frames = slices.reshape(40, 4).sum(axis=1)
    trace = VBRTrace(frames, frame_rate=24.0, slices_per_frame=4, slice_bytes=slices)
    path = tmp_path / "slices.dat"
    save_trace(trace, path, unit="slice")
    return path


class TestStrict:
    @pytest.mark.parametrize("mode", LINE_CORRUPTIONS)
    def test_rejects_each_corruption(self, clean_file, mode):
        path, _ = clean_file
        bad = FaultPlan(seed=3).corrupt_trace_file(path, mode)
        with pytest.raises(TraceFormatError) as excinfo:
            load_trace(bad)
        err = excinfo.value
        assert isinstance(err, ValueError)
        assert err.line_number is not None
        assert f"{bad}:{err.line_number}" in str(err)

    def test_truncated_slice_file_breaks_invariant(self, slice_file):
        bad = truncate_breaking_invariant(slice_file)
        with pytest.raises(TraceFormatError, match="not a multiple"):
            load_trace(bad)

    def test_missing_header_defaults_still_apply(self, tmp_path):
        path = tmp_path / "plain.dat"
        path.write_text("100\n200\n300\n")
        trace = load_trace(path)
        assert trace.frame_rate == 24.0

    def test_malformed_header_value(self, tmp_path):
        path = tmp_path / "badheader.dat"
        path.write_text("# frame_rate fast\n100\n200\n")
        with pytest.raises(TraceFormatError, match="frame_rate"):
            load_trace(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.dat"
        path.write_text("")
        with pytest.raises(TraceFormatError, match="no data lines"):
            load_trace(path)

    def test_crlf_line_endings_accepted(self, tmp_path):
        path = tmp_path / "crlf.dat"
        path.write_bytes(b"100\r\n200\r\n300\r\n")
        np.testing.assert_array_equal(load_trace(path).frame_bytes, [100, 200, 300])

    def test_errors_kwarg_validated(self, clean_file):
        path, _ = clean_file
        with pytest.raises(ValueError, match="strict.*lenient"):
            load_trace(path, errors="forgiving")


class TestLenient:
    @pytest.mark.parametrize("mode", LINE_CORRUPTIONS)
    def test_repairs_each_corruption(self, clean_file, mode):
        path, frames = clean_file
        plan = FaultPlan(seed=7)
        bad = plan.corrupt_trace_file(path, mode)
        trace, report = load_trace_lenient(bad)
        assert trace.n_frames == frames.size
        assert np.isfinite(trace.frame_bytes).all()
        assert (trace.frame_bytes >= 0).all()
        assert len(report.bad_lines) == 1
        assert report.repaired == 1
        assert not report.is_clean
        # The repaired value interpolates its neighbours, so all the
        # untouched frames survive exactly.
        victim_line = plan.injected[0].call_index
        victim = victim_line - 4  # three header lines precede the data
        untouched = np.delete(np.arange(frames.size), victim)
        np.testing.assert_array_equal(
            trace.frame_bytes[untouched], frames[untouched]
        )

    def test_repair_interpolates_between_neighbours(self, tmp_path):
        path = tmp_path / "gap.dat"
        path.write_text("100\nnan\n300\n")
        trace, report = load_trace_lenient(path)
        np.testing.assert_allclose(trace.frame_bytes, [100.0, 200.0, 300.0])
        assert report.bad_lines[0].reason == "NaN count"

    def test_truncated_slice_file_drops_partial_frame(self, slice_file):
        bad = truncate_breaking_invariant(slice_file)
        trace, report = load_trace_lenient(bad)
        assert report.dropped_trailing > 0
        assert trace.has_slice_data
        assert trace.slice_bytes.size % trace.slices_per_frame == 0

    def test_budget_exhaustion_raises(self, tmp_path):
        path = tmp_path / "swisscheese.dat"
        path.write_text("\n".join(["100", "oops"] * 20) + "\n")
        with pytest.raises(TraceFormatError, match="repair budget"):
            load_trace_lenient(path, repair_budget=5)

    def test_all_bad_lines_raises(self, tmp_path):
        path = tmp_path / "hopeless.dat"
        path.write_text("x\ny\nz\n")
        with pytest.raises(TraceFormatError, match="no usable data"):
            load_trace_lenient(path)

    def test_errors_lenient_kwarg(self, clean_file):
        path, frames = clean_file
        bad = FaultPlan(seed=8).corrupt_trace_file(path, "garbage")
        trace = load_trace(bad, errors="lenient")
        assert trace.n_frames == frames.size
        assert trace.repair_report.repaired == 1

    def test_report_summary_lines(self, clean_file):
        path, _ = clean_file
        bad = FaultPlan(seed=9).corrupt_trace_file(path, "negative")
        _, report = load_trace_lenient(bad)
        text = "\n".join(report.summary_lines())
        assert "1 bad line(s), 1 repaired" in text
        assert "negative count" in text

    def test_clean_file_reports_clean(self, clean_file):
        path, frames = clean_file
        trace, report = load_trace_lenient(path)
        assert report.is_clean
        np.testing.assert_array_equal(trace.frame_bytes, frames)
