"""Tests for the resilient campaign supervisor and checkpoint store.

These run on fast toy experiment specs; the full-campaign chaos tests
(subprocess SIGKILL and resume, injected faults over the real 21-entry
suite) live in ``test_resilience_chaos.py`` at tier 2.
"""

import json

import numpy as np
import pytest

from repro.resilience.faults import FaultPlan, TransientFault
from repro.resilience.runner import (
    CheckpointStore,
    ExperimentSpec,
    derive_attempt_seed,
    run_campaign,
)


def toy_specs():
    return [
        ExperimentSpec("alpha", lambda seed: {"value": 1.0}),
        ExperimentSpec("beta", lambda seed: {"value": 2.0, "seed": seed}),
        ExperimentSpec("gamma", lambda seed: [1, 2, 3]),
    ]


class TestSeeds:
    def test_stable(self):
        assert derive_attempt_seed(0, "fig07", 0) == derive_attempt_seed(0, "fig07", 0)

    def test_rotates_per_attempt_and_experiment(self):
        seeds = {
            derive_attempt_seed(0, "fig07", 0),
            derive_attempt_seed(0, "fig07", 1),
            derive_attempt_seed(0, "fig08", 0),
            derive_attempt_seed(1, "fig07", 0),
        }
        assert len(seeds) == 4


class TestSupervisor:
    def test_all_complete(self):
        report = run_campaign(toy_specs())
        assert report.ok
        assert set(report.results) == {"alpha", "beta", "gamma"}
        assert [r.status for r in report.records] == ["completed"] * 3
        assert report.results["beta"]["seed"] == derive_attempt_seed(0, "beta", 0)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_campaign([ExperimentSpec("a", lambda s: 1),
                          ExperimentSpec("a", lambda s: 2)])

    def test_terminal_failure_isolated(self):
        def broken(seed):
            raise ValueError("deterministic defect")

        specs = [ExperimentSpec("bad", broken)] + toy_specs()
        report = run_campaign(specs, max_retries=3, sleep=lambda s: None)
        assert not report.ok
        # ValueError is not transient: exactly one attempt, no retries.
        assert len(report.attempt_failures) == 1
        failure = report.failures[0]
        assert failure.experiment_id == "bad"
        assert failure.error_type == "ValueError"
        assert not failure.transient
        assert "deterministic defect" in failure.traceback
        # The rest of the campaign still ran.
        assert set(report.results) == {"alpha", "beta", "gamma"}

    def test_fail_fast_reraises(self):
        def broken(seed):
            raise ValueError("defect")

        with pytest.raises(ValueError, match="defect"):
            run_campaign([ExperimentSpec("bad", broken)], fail_fast=True)

    def test_transient_retry_with_seed_rotation(self):
        seen = []

        def flaky(seed):
            seen.append(seed)
            if len(seen) < 3:
                raise TransientFault("not yet")
            return "done"

        slept = []
        report = run_campaign(
            [ExperimentSpec("flaky", flaky)],
            max_retries=2, backoff_base=0.05, sleep=slept.append,
        )
        assert report.ok
        assert report.results["flaky"] == "done"
        assert len(seen) == 3 and len(set(seen)) == 3
        assert slept == [0.05, 0.1]
        assert [f.transient for f in report.attempt_failures] == [True, True]
        assert report.records[0].attempts == 3

    def test_retry_warning_logged_the_moment_it_happens(self, caplog):
        """A retry must surface as a structured WARNING (experiment id
        + attempt number) *before* the backoff sleep -- a hung campaign
        tells you what it is retrying while it happens, not at the end."""
        import logging

        calls = []

        def flaky(seed):
            calls.append(seed)
            if len(calls) < 2:
                raise TransientFault("not yet")
            return "done"

        warned_before_sleep = []

        def sleep(seconds):
            warned_before_sleep.append(any(
                r.levelno == logging.WARNING and getattr(r, "experiment", None) == "flaky"
                for r in caplog.records
            ))

        with caplog.at_level(logging.WARNING, logger="repro.resilience"):
            report = run_campaign([ExperimentSpec("flaky", flaky)],
                                  max_retries=1, sleep=sleep)
        assert report.ok
        assert warned_before_sleep == [True]
        record = next(r for r in caplog.records if r.levelno == logging.WARNING)
        assert record.experiment == "flaky"
        assert record.attempt == 1
        assert record.error_type == "TransientFault"
        assert "retrying" in record.getMessage()

    def test_terminal_failure_logged_as_error(self, caplog):
        import logging

        def broken(seed):
            raise ValueError("defect")

        with caplog.at_level(logging.WARNING, logger="repro.resilience"):
            report = run_campaign([ExperimentSpec("bad", broken)],
                                  max_retries=2, sleep=lambda s: None)
        assert not report.ok
        record = next(r for r in caplog.records if r.levelno == logging.ERROR)
        assert record.experiment == "bad"
        assert record.attempt == 1  # deterministic defect: no retries
        assert "failed terminally" in record.getMessage()

    def test_retry_budget_exhausted(self):
        def always(seed):
            raise TransientFault("forever")

        report = run_campaign([ExperimentSpec("always", always)],
                              max_retries=2, sleep=lambda s: None)
        assert not report.ok
        assert len(report.attempt_failures) == 3
        assert report.records[0].status == "failed"

    def test_soft_timeout(self):
        import time

        def slow(seed):
            time.sleep(5.0)
            return "late"

        report = run_campaign([ExperimentSpec("slow", slow)], timeout_s=0.1)
        assert not report.ok
        assert report.failures[0].error_type == "TimeoutError"
        assert "soft timeout" in report.failures[0].message

    def test_injected_faults_match_report(self):
        plan = FaultPlan().fail_at("experiment:beta", call=1, exc=TransientFault)
        with plan.active():
            report = run_campaign(toy_specs(), max_retries=1, sleep=lambda s: None)
        assert report.ok
        assert [f.experiment_id for f in report.attempt_failures] == ["beta"]
        assert [f.site for f in plan.injected] == ["experiment:beta"]

    def test_event_callback(self):
        events = []
        run_campaign(toy_specs(), on_event=lambda k, e, d: events.append((k, e)))
        assert ("start", "alpha") in events
        assert ("completed", "gamma") in events


class TestCheckpoints:
    def test_save_load_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        result = {"x": np.arange(5.0), "label": "hi"}
        store.save("exp", result, seed=7, attempts=1, wall_time=0.5)
        loaded, meta = store.load("exp")
        np.testing.assert_array_equal(loaded["x"], result["x"])
        assert meta["seed"] == 7
        assert store.completed() == ["exp"]

    def test_corrupt_payload_invalidates(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("exp", {"x": 1.0}, seed=0, attempts=1, wall_time=0.0)
        payload = tmp_path / "exp.pkl"
        payload.write_bytes(payload.read_bytes()[:-4])
        assert store.load("exp") is None

    def test_drifted_digest_invalidates(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("exp", {"x": 1.0}, seed=0, attempts=1, wall_time=0.0)
        meta_path = tmp_path / "exp.json"
        meta = json.loads(meta_path.read_text())
        meta["digest"]["x"] = 2.0
        meta_path.write_text(json.dumps(meta))
        assert store.load("exp") is None

    def test_manifest_drift_refuses_resume(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write_manifest({"quick": True, "n_frames": 100})
        store.check_manifest({"quick": True, "n_frames": 100})  # same: fine
        with pytest.raises(ValueError, match="different campaign"):
            store.check_manifest({"quick": False, "n_frames": 100})

    def test_campaign_resume_skips_completed(self, tmp_path):
        calls = []

        def tracked(name):
            def fn(seed):
                calls.append(name)
                return {"name": name}
            return ExperimentSpec(name, fn)

        specs = [tracked("a"), tracked("b")]
        first = run_campaign(specs, checkpoint_dir=tmp_path)
        assert first.ok and calls == ["a", "b"]
        second = run_campaign(specs, checkpoint_dir=tmp_path, resume=True)
        assert second.ok and calls == ["a", "b"]  # nothing re-ran
        assert second.resumed == ["a", "b"]
        assert [r.status for r in second.records] == ["resumed", "resumed"]
        assert second.results == first.results

    def test_interrupted_campaign_resumes_identically(self, tmp_path):
        """In-process kill-and-resume: results match an uninterrupted run."""
        def make_specs(bomb):
            def b(seed):
                if bomb:
                    raise KeyboardInterrupt
                return {"v": 2.0}

            return [
                ExperimentSpec("one", lambda seed: {"v": 1.0}),
                ExperimentSpec("two", b),
                ExperimentSpec("three", lambda seed: {"v": 3.0}),
            ]

        with pytest.raises(KeyboardInterrupt):
            run_campaign(make_specs(bomb=True), checkpoint_dir=tmp_path)
        # "one" was checkpointed before the kill.
        assert CheckpointStore(tmp_path).completed() == ["one"]
        resumed = run_campaign(make_specs(bomb=False), checkpoint_dir=tmp_path)
        uninterrupted = run_campaign(make_specs(bomb=False))
        assert resumed.ok
        assert resumed.resumed == ["one"]
        assert resumed.results == uninterrupted.results

    def test_tuple_specs_accepted(self, tmp_path):
        report = run_campaign([("t", lambda seed: 42)], checkpoint_dir=tmp_path)
        assert report.results["t"] == 42

    def test_summary_lines_mention_failures(self):
        def broken(seed):
            raise ValueError("nope")

        report = run_campaign([ExperimentSpec("bad", broken)] + toy_specs())
        lines = report.summary_lines()
        assert "3/4 experiments completed" in lines[0]
        assert any("FAILED: bad" in line for line in lines)
