"""Robustness and failure-injection tests.

Exercises the numerical edges: Hurst parameters near the stationarity
boundaries, extreme scales, degenerate inputs, and the calibration's
stability across seeds.  These are the conditions a downstream user
hits first when feeding their own data in.
"""

import numpy as np
import pytest

from repro.core.daviesharte import DaviesHarteGenerator
from repro.core.hosking import HoskingGenerator
from repro.distributions import Gamma, GammaParetoHybrid


class TestBoundaryHurst:
    @pytest.mark.parametrize("h", [0.51, 0.95, 0.99])
    def test_hosking_stable_near_boundaries(self, h, rng):
        x = HoskingGenerator(hurst=h).generate(1_500, rng=rng)
        assert np.all(np.isfinite(x))
        assert np.std(x) > 0

    @pytest.mark.parametrize("h", [0.05, 0.51, 0.99])
    def test_davies_harte_stable_near_boundaries(self, h, rng):
        """Near H = 1 the *sample* variance is dominated by the sample
        mean: E[sample var] = 1 - n^(2H-2) (0.15 at H=0.99, n=4096).
        The generator is exact; the expectation must account for it."""
        n = 4_096
        x = DaviesHarteGenerator(h).generate(n, rng=rng)
        assert np.all(np.isfinite(x))
        expected = 1.0 - n ** (2 * h - 2)
        assert np.var(x) == pytest.approx(max(expected, 0.05), rel=0.6)

    def test_extreme_antipersistence(self, rng):
        x = HoskingGenerator(hurst=0.05).generate(2_000, rng=rng)
        r1 = np.corrcoef(x[:-1], x[1:])[0, 1]
        # Theory: r1 = d/(1-d) = -0.31 at d = -0.45.
        assert r1 == pytest.approx(-0.31, abs=0.06)

    def test_estimators_on_boundary_processes(self, rng):
        """Variance-time saturates but stays finite near H = 1."""
        from repro.analysis.hurst import variance_time

        x = DaviesHarteGenerator(0.97).generate(2**14, rng=rng)
        est = variance_time(x)
        assert np.isfinite(est.hurst)
        assert est.hurst > 0.85


class TestExtremeScales:
    def test_hybrid_tiny_scale(self):
        h = GammaParetoHybrid(1e-6, 2e-7, 8.0)
        assert h.cdf(h.ppf(0.9)) == pytest.approx(0.9, rel=1e-6)
        assert 0 < h.x_th < 1e-4

    def test_hybrid_huge_scale(self):
        h = GammaParetoHybrid(1e12, 2e11, 8.0)
        assert h.cdf(h.ppf(0.99)) == pytest.approx(0.99, rel=1e-6)

    def test_gamma_large_shape(self):
        """Very small CoV means a huge Gamma shape; log-space pdf must
        survive."""
        g = Gamma.from_moments(1000.0, 1.0)  # shape = 1e6
        assert np.isfinite(g.pdf(1000.0))
        assert g.pdf(1000.0) > 0

    def test_queue_with_enormous_values(self):
        from repro.simulation.queue import simulate_queue

        a = np.array([1e15, 1e15, 0.0])
        result = simulate_queue(a, 1e14, 1e14)
        assert np.isfinite(result.lost_bytes)
        assert result.lost_bytes > 0

    def test_synthesizer_tiny_trace(self):
        """The synthesizer degrades gracefully at very short lengths."""
        from repro.video.starwars import synthesize_starwars_trace

        t = synthesize_starwars_trace(n_frames=64, seed=1)
        assert t.n_frames == 64
        assert np.all(t.frame_bytes > 0)

    def test_model_generate_length_one(self, rng):
        from repro.core.model import VBRVideoModel

        m = VBRVideoModel(1000.0, 200.0, 8.0, 0.8)
        y = m.generate(1, rng=rng, generator="davies-harte")
        assert y.shape == (1,)
        assert y[0] > 0


class TestDegenerateInputs:
    def test_estimators_reject_constants(self):
        from repro.analysis.hurst import rs_pox, variance_time

        const = np.full(5_000, 42.0)
        with pytest.raises(ValueError):
            variance_time(const)
        with pytest.raises(ValueError):
            rs_pox(const)

    def test_whittle_on_near_constant(self):
        """A numerically near-constant series must not crash Whittle."""
        from repro.analysis.hurst import whittle

        x = 1000.0 + 1e-9 * np.random.default_rng(0).standard_normal(4_096)
        est = whittle(x, normalize=None)
        assert np.isfinite(est.hurst)

    def test_fit_rejects_single_repeated_value_tail(self):
        from repro.distributions.fitting import fit_pareto_tail_slope

        with pytest.raises(ValueError):
            fit_pareto_tail_slope(np.full(1_000, 7.0))

    def test_trace_of_zero_frames_rejected(self):
        from repro.video.trace import VBRTrace

        with pytest.raises(ValueError):
            VBRTrace([])

    def test_queue_empty_arrivals_rejected(self):
        from repro.simulation.queue import simulate_queue

        with pytest.raises(ValueError):
            simulate_queue([], 1.0, 1.0)


class TestCalibrationStability:
    @pytest.mark.parametrize("seed", [1, 77, 2024])
    def test_table2_calibration_across_seeds(self, seed):
        """The marginal calibration holds for any seed, not just the
        reference one."""
        from repro.video.starwars import synthesize_starwars_trace

        t = synthesize_starwars_trace(n_frames=20_000, seed=seed, with_slices=False)
        x = t.frame_bytes
        assert np.mean(x) == pytest.approx(27_791.0, rel=0.005)
        assert np.std(x) == pytest.approx(6_254.0, rel=0.02)

    @pytest.mark.parametrize("seed", [1, 77])
    def test_hurst_band_across_seeds(self, seed):
        from repro.analysis.hurst import variance_time
        from repro.video.starwars import synthesize_starwars_trace

        t = synthesize_starwars_trace(n_frames=40_000, seed=seed, with_slices=False)
        assert 0.72 < variance_time(t.frame_bytes).hurst < 0.95

    def test_target_hurst_steers_measured_h(self):
        """The synthesizer's hurst parameter steers the measured H
        monotonically.  The component weights are calibrated around
        H = 0.8, so other targets land in the right direction but
        compressed toward the default (the scene/arc structure adds a
        floor of low-frequency power)."""
        from repro.analysis.hurst import variance_time
        from repro.video.starwars import synthesize_starwars_trace

        measured = []
        for hurst in (0.65, 0.8, 0.9):
            t = synthesize_starwars_trace(
                n_frames=40_000, seed=5, with_slices=False, hurst=hurst
            )
            measured.append(variance_time(t.frame_bytes).hurst)
        assert measured[0] < measured[1] < measured[2]
        assert measured[1] == pytest.approx(0.8, abs=0.08)
