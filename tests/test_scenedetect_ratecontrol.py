"""Tests for scene-change detection and the rate-controlled codec."""

import numpy as np
import pytest

from repro.analysis.scenedetect import analyze_scenes, detect_scene_changes
from repro.video.codec import IntraframeCodec
from repro.video.ratecontrol import RateControlledCodec
from repro.video.synthetic import SyntheticMovie


@pytest.fixture(scope="module")
def clean_trace():
    """A trace with weak within-scene noise: scenes dominate."""
    from repro.video.starwars import synthesize_starwars_trace

    # 60k frames gives the duration-tail fit enough large scenes for a
    # stable slope (40k leaves the alpha estimate right at the edge).
    return synthesize_starwars_trace(
        n_frames=60_000, seed=3, with_slices=False, fgn_weight=0.2, ar1_weight=0.15
    )


class TestDetectSceneChanges:
    def test_synthetic_step_series(self):
        """Exact recovery on a noiseless piecewise-constant series."""
        x = np.concatenate((
            np.full(200, 1000.0), np.full(150, 2000.0), np.full(250, 800.0)
        ))
        boundaries = detect_scene_changes(x, window=10, threshold=0.3, min_scene_frames=20)
        assert boundaries[0] == 0
        assert any(abs(b - 200) <= 10 for b in boundaries)
        assert any(abs(b - 350) <= 10 for b in boundaries)
        assert boundaries.size == 3

    def test_no_false_positives_on_flat_series(self, rng):
        x = 1000.0 + rng.normal(0, 10.0, size=2_000)
        boundaries = detect_scene_changes(x, window=12, threshold=0.35)
        assert boundaries.size == 1  # just the start

    def test_min_scene_length_respected(self, clean_trace):
        boundaries = detect_scene_changes(
            clean_trace.frame_bytes, min_scene_frames=30, threshold=0.15, window=8
        )
        assert np.all(np.diff(boundaries) >= 30)

    def test_recovers_scripted_boundaries(self, clean_trace):
        """A good fraction of detected boundaries align with the
        synthesizer's scripted scene changes (within one window)."""
        from repro.video.scenes import generate_scene_script

        rng = np.random.default_rng(3)
        script = generate_scene_script(
            clean_trace.n_frames, rng=rng, duration_tail_shape=1.4,
            min_scene_frames=24, arc_weight=0.6,
        )
        true_starts = np.array([s.start_frame for s in script.scenes])
        detected = detect_scene_changes(
            clean_trace.frame_bytes, window=8, threshold=0.15, min_scene_frames=16
        )
        hits = sum(np.min(np.abs(true_starts - b)) <= 8 for b in detected[1:])
        precision = hits / max(detected.size - 1, 1)
        assert precision > 0.6

    def test_rejects_short_series(self):
        with pytest.raises(ValueError):
            detect_scene_changes(np.ones(10), window=12)


class TestAnalyzeScenes:
    def test_structure(self, clean_trace):
        sa = analyze_scenes(clean_trace.frame_bytes, threshold=0.15, window=8,
                            min_scene_frames=16)
        assert sa.n_scenes > 50
        assert sa.durations.sum() == clean_trace.n_frames
        assert sa.scene_levels.size == sa.n_scenes
        assert sa.mean_duration > sa.median_duration  # heavy tail

    def test_heavy_tail_detected(self, clean_trace):
        """The duration tail of a movie-like trace is heavy (alpha in
        the LRD-inducing range), so the implied H exceeds 0.5."""
        sa = analyze_scenes(clean_trace.frame_bytes, threshold=0.15, window=8,
                            min_scene_frames=16)
        assert sa.duration_tail_shape < 2.2
        assert sa.implied_hurst > 0.55

    def test_iid_control_gives_no_heavy_tail(self, rng):
        """Scenes detected in memoryless traffic have light-tailed
        (geometric-ish) durations: implied H stays near 0.5."""
        x = rng.gamma(20.0, 1000.0, size=40_000)
        sa = analyze_scenes(x, threshold=0.15, window=8, min_scene_frames=16)
        assert sa.implied_hurst < 0.65

    def test_too_few_scenes_raises(self, rng):
        x = 1000.0 + rng.normal(0, 5.0, size=5_000)
        with pytest.raises(ValueError):
            analyze_scenes(x)


class TestRateControlledCodec:
    @pytest.fixture(scope="class")
    def movie(self):
        return SyntheticMovie(60, height=48, width=64, seed=2, min_scene_frames=8)

    def test_converges_to_target(self, movie):
        rc = RateControlledCodec(target_bytes=1500.0, slices_per_frame=6, gain=0.8)
        trace, _ = rc.encode_movie(movie)
        post = trace.frame_bytes[10:]
        assert np.mean(post) == pytest.approx(1500.0, rel=0.03)

    def test_rate_variability_collapsed(self, movie):
        """The paper's CBR-vs-VBR contrast at the coder: rate control
        flattens the byte rate while the fixed-quantizer coder's rate
        follows content."""
        rc = RateControlledCodec(target_bytes=1500.0, slices_per_frame=6, gain=0.8)
        trace, steps = rc.encode_movie(movie)
        fixed = IntraframeCodec(quant_step=8.0, slices_per_frame=6).encode_movie(
            SyntheticMovie(60, height=48, width=64, seed=2, min_scene_frames=8)
        )
        cov_rc = trace.frame_bytes[10:].std() / trace.frame_bytes[10:].mean()
        cov_fixed = fixed.frame_bytes[10:].std() / fixed.frame_bytes[10:].mean()
        assert cov_rc < cov_fixed

    def test_quality_modulated_instead(self, movie):
        """... but the quantizer step (quality) now varies."""
        rc = RateControlledCodec(target_bytes=1500.0, slices_per_frame=6, gain=0.8)
        _, steps = rc.encode_movie(movie)
        assert steps[10:].std() > 0

    def test_tighter_target_coarser_quantizer(self, movie):
        frames = list(movie)
        generous = RateControlledCodec(target_bytes=3000.0, slices_per_frame=6)
        stingy = RateControlledCodec(target_bytes=600.0, slices_per_frame=6)
        for frame in frames[:15]:
            generous.encode_next(frame)
            stingy.encode_next(frame)
        assert stingy.quant_step > generous.quant_step

    def test_step_clamped(self, movie):
        rc = RateControlledCodec(
            target_bytes=50.0, slices_per_frame=6, min_step=2.0, max_step=32.0
        )
        for frame in list(movie)[:10]:
            rc.encode_next(frame)
        assert 2.0 <= rc.quant_step <= 32.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RateControlledCodec(target_bytes=0.0)
        with pytest.raises(ValueError):
            RateControlledCodec(target_bytes=100.0, min_step=10.0, max_step=5.0)

    def test_empty_movie(self):
        rc = RateControlledCodec(target_bytes=1000.0)
        with pytest.raises(ValueError):
            rc.encode_movie([])
