"""Tests for scene scripts and the story arc."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video.scenes import Scene, SceneScript, generate_scene_script, story_arc


class TestStoryArc:
    def test_averages_near_one(self):
        t = np.linspace(0, 1, 10_001)
        assert np.mean(story_arc(t)) == pytest.approx(1.0, abs=0.05)

    def test_paper_narrative_shape(self):
        """Intense intro, placid second quarter, climactic finale."""
        intro = story_arc(0.02)
        placid = story_arc(0.28)
        climax = story_arc(0.93)
        assert intro > placid
        assert climax > placid
        assert climax == np.max(story_arc(np.linspace(0, 1, 1001)))

    def test_scalar_and_array(self):
        assert isinstance(story_arc(0.5), float)
        assert story_arc(np.array([0.1, 0.9])).shape == (2,)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            story_arc(1.5)
        with pytest.raises(ValueError):
            story_arc(-0.1)


class TestSceneScript:
    def test_scenes_tile_exactly(self, rng):
        script = generate_scene_script(10_000, rng=rng)
        assert script.scenes[0].start_frame == 0
        assert script.scenes[-1].end_frame == 10_000
        for a, b in zip(script.scenes, script.scenes[1:]):
            assert a.end_frame == b.start_frame

    def test_min_scene_duration_respected(self, rng):
        script = generate_scene_script(20_000, rng=rng, min_scene_frames=24)
        durations = [s.n_frames for s in script.scenes]
        assert min(durations) >= 24

    def test_durations_heavy_tailed(self, rng):
        """Pareto(1.4) durations: the max dwarfs the median."""
        script = generate_scene_script(200_000, rng=rng, duration_tail_shape=1.4)
        durations = np.array([s.n_frames for s in script.scenes])
        assert np.max(durations) > 10 * np.median(durations)

    def test_steeper_tail_means_shorter_max(self, ):
        long_tail = generate_scene_script(
            100_000, rng=np.random.default_rng(5), duration_tail_shape=1.2
        )
        short_tail = generate_scene_script(
            100_000, rng=np.random.default_rng(5), duration_tail_shape=3.0
        )
        assert max(s.n_frames for s in long_tail.scenes) >= max(
            s.n_frames for s in short_tail.scenes
        )

    def test_scene_at_lookup(self, rng):
        script = generate_scene_script(5_000, rng=rng)
        for idx in (0, 1234, 4999):
            scene = script.scene_at(idx)
            assert scene.start_frame <= idx < scene.end_frame
        with pytest.raises(IndexError):
            script.scene_at(5_000)

    def test_frame_levels_shape_and_positivity(self, rng):
        script = generate_scene_script(3_000, rng=rng)
        levels = script.frame_levels()
        assert levels.shape == (3_000,)
        assert np.all(levels > 0)

    def test_alternation_produces_two_levels(self):
        scene = Scene(0, 100, level=2.0, activity=1.0, alternation_period=10, alternation_depth=0.5)
        script = SceneScript(n_frames=100, scenes=(scene,))
        levels = script.frame_levels()
        assert set(np.round(np.unique(levels), 6).tolist()) == {1.0, 2.0}
        # Switches every 10 frames.
        assert levels[0] == 2.0
        assert levels[10] == 1.0
        assert levels[20] == 2.0

    def test_activity_per_frame(self, rng):
        script = generate_scene_script(2_000, rng=rng)
        act = script.frame_activity()
        assert act.shape == (2_000,)
        assert np.all(act > 0)

    def test_validation_rejects_gaps(self):
        s1 = Scene(0, 10, 1.0, 1.0)
        s3 = Scene(20, 10, 1.0, 1.0)
        with pytest.raises(ValueError):
            SceneScript(n_frames=30, scenes=(s1, s3))

    def test_validation_rejects_wrong_total(self):
        s1 = Scene(0, 10, 1.0, 1.0)
        with pytest.raises(ValueError):
            SceneScript(n_frames=20, scenes=(s1,))

    def test_validation_rejects_empty(self):
        with pytest.raises(ValueError):
            SceneScript(n_frames=0, scenes=())

    def test_arc_weight_zero_flattens_levels(self):
        flat = generate_scene_script(
            50_000, rng=np.random.default_rng(9), arc_weight=0.0, level_sigma=1e-6
        )
        levels = np.array([s.level for s in flat.scenes])
        np.testing.assert_allclose(levels, 1.0, rtol=1e-3)


@settings(max_examples=25, deadline=None)
@given(
    n_frames=st.integers(min_value=100, max_value=20_000),
    seed=st.integers(0, 1000),
)
def test_script_tiling_property(n_frames, seed):
    """Property: any generated script exactly tiles [0, n_frames)."""
    script = generate_scene_script(n_frames, rng=np.random.default_rng(seed))
    total = sum(s.n_frames for s in script.scenes)
    assert total == n_frames
    assert script.frame_levels().shape == (n_frames,)
