"""Tests for traffic shaping: clipping, leaky bucket, CBR smoothing."""

import numpy as np
import pytest

from repro.simulation.queue import zero_loss_capacity
from repro.video.shaping import cbr_smoothing_delay, clip_peaks, leaky_bucket
from repro.video.trace import VBRTrace


class TestClipPeaks:
    def test_quantile_ceiling(self, small_trace):
        result = clip_peaks(small_trace, quantile=0.99)
        assert result.trace.frame_bytes.max() <= result.ceiling
        assert result.clipped_frames == pytest.approx(0.01 * small_trace.n_frames, rel=0.3)

    def test_absolute_ceiling(self, small_trace):
        ceiling = float(np.mean(small_trace.frame_bytes) * 1.5)
        result = clip_peaks(small_trace, ceiling=ceiling)
        assert result.trace.frame_bytes.max() <= ceiling

    def test_bytes_accounting(self, small_trace):
        result = clip_peaks(small_trace, quantile=0.999)
        removed = small_trace.frame_bytes.sum() - result.trace.frame_bytes.sum()
        assert removed == pytest.approx(result.clipped_bytes, abs=result.clipped_frames + 1)

    def test_quality_cost_tiny_for_extreme_quantiles(self, small_trace):
        """The paper's point: clipping the few extreme peaks costs
        almost nothing in information."""
        result = clip_peaks(small_trace, quantile=0.999)
        assert result.clipped_fraction < 0.01

    def test_capacity_saving_substantial(self, small_trace):
        """... but saves real capacity at small buffers."""
        x = small_trace.frame_bytes
        buffer_bytes = 50_000.0
        before = zero_loss_capacity(x, buffer_bytes)
        clipped = clip_peaks(small_trace, quantile=0.999).trace.frame_bytes
        after = zero_loss_capacity(clipped, buffer_bytes)
        assert after < before

    def test_slices_rescaled_consistently(self, small_trace):
        result = clip_peaks(small_trace, quantile=0.99)
        t = result.trace
        assert t.has_slice_data
        sums = t.slice_bytes.reshape(-1, t.slices_per_frame).sum(axis=1)
        np.testing.assert_allclose(sums, t.frame_bytes, atol=1e-9)

    def test_original_untouched(self, small_trace):
        before = small_trace.frame_bytes.copy()
        clip_peaks(small_trace, quantile=0.99)
        np.testing.assert_array_equal(small_trace.frame_bytes, before)

    def test_requires_exactly_one_mode(self, small_trace):
        with pytest.raises(ValueError):
            clip_peaks(small_trace)
        with pytest.raises(ValueError):
            clip_peaks(small_trace, quantile=0.9, ceiling=1000.0)

    def test_rejects_bad_quantile(self, small_trace):
        with pytest.raises(ValueError):
            clip_peaks(small_trace, quantile=1.0)

    def test_rejects_non_trace(self):
        with pytest.raises(TypeError):
            clip_peaks([1.0, 2.0], quantile=0.9)


class TestLeakyBucket:
    def test_output_rate_bounded(self, rng):
        a = rng.uniform(0, 20, size=500)
        shaped, _ = leaky_bucket(a, rate_per_slot=8.0, bucket_bytes=50.0)
        assert shaped.max() <= 8.0 + 1e-12

    def test_conservation(self, rng):
        a = rng.uniform(0, 20, size=500)
        shaped, nonconforming = leaky_bucket(a, 8.0, 50.0)
        # Everything is either shaped out, declared nonconforming, or
        # still in the bucket (at most bucket_bytes).
        assert shaped.sum() + nonconforming.sum() <= a.sum() + 1e-9
        assert a.sum() - shaped.sum() - nonconforming.sum() <= 50.0 + 1e-9

    def test_no_nonconforming_with_big_bucket(self, rng):
        a = rng.uniform(0, 10, size=200)
        _, nonconforming = leaky_bucket(a, 9.0, 1e9)
        assert nonconforming.sum() == 0.0

    def test_smooth_input_passes_through(self):
        a = np.full(100, 5.0)
        shaped, nonconforming = leaky_bucket(a, 5.0, 10.0)
        np.testing.assert_allclose(shaped, 5.0)
        assert nonconforming.sum() == 0.0


class TestCBRSmoothing:
    def test_zero_delay_at_peak_rate(self, small_series):
        result = cbr_smoothing_delay(small_series, float(small_series.max()), 1 / 24.0)
        assert result["max_delay_seconds"] == 0.0

    def test_delay_grows_toward_mean_rate(self, small_series):
        mean = float(np.mean(small_series))
        fast = cbr_smoothing_delay(small_series, mean * 1.5, 1 / 24.0)
        slow = cbr_smoothing_delay(small_series, mean * 1.02, 1 / 24.0)
        assert slow["max_delay_seconds"] > fast["max_delay_seconds"]

    def test_lrd_makes_cbr_delay_large(self, small_series):
        """The paper's motivation: high-utilization CBR transport of
        LRD video requires large smoothing delay (seconds, not
        milliseconds)."""
        mean = float(np.mean(small_series))
        result = cbr_smoothing_delay(small_series, mean * 1.05, 1 / 24.0)
        assert result["max_delay_seconds"] > 1.0
        assert result["utilization"] == pytest.approx(1 / 1.05, rel=1e-6)

    def test_rejects_unstable_rate(self, small_series):
        with pytest.raises(ValueError):
            cbr_smoothing_delay(small_series, float(np.mean(small_series)) * 0.9, 1 / 24.0)
