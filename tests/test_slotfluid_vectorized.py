"""Tier-1 equivalence wall for the vectorized slot-fluid queue kernel.

``slot_run_vectorized`` replaces the per-slot python recursion with
segmented Lindley/Skorokhod reflection identities (prefix sums plus
seeded running-extremum scans).  On clamp-free stretches the identity
is algebraically exact; where the buffer clamps, the only admissible
difference is float-associativity rounding.  These tests therefore pin
the kernel against the reference loop in regimes engineered to be
**representable exactly** (integer-valued fluid), where the two
kernels must agree bit for bit -- the golden anchor checks the loss
*series* and the full backlog trajectory, not just the summary tuple
-- and cover chunked-state resume, the kernel dispatcher, and the
callers that expose the choice (``simulate_queue``, the streaming
fold, the FIFO discipline's batched path).
"""

import numpy as np
import pytest

from repro.net.sched import FIFODiscipline
from repro.simulation.queue import simulate_queue
from repro.simulation.slotfluid import (
    SLOT_KERNELS,
    default_kernel,
    fold_slots,
    run_slots,
    set_default_kernel,
    slot_run_vectorized,
    slot_step,
)
from repro.stream.queueing import StreamingQueue, simulate_queue_stream

BLOCK_SIZES = (256, 1_024, 8_192)


def _loop_reference(values, capacity, buffer_bytes, state=(0.0, 0.0, 0.0, 0.0)):
    """The recursion spelled out slot by slot via ``slot_step``."""
    backlog, lost, peak, total = state
    losses = np.zeros(len(values))
    trajectory = np.empty(len(values))
    for t, arrival in enumerate(values):
        total += arrival
        backlog, _, dropped = slot_step(backlog, arrival, capacity, buffer_bytes)
        lost += dropped
        losses[t] = dropped
        trajectory[t] = backlog
        peak = max(peak, backlog)
    return (backlog, lost, peak, total), losses, trajectory


def _integer_arrivals(rng, n, scale=40):
    """Integer-valued fluid keeps every partial sum exact in float64."""
    return rng.integers(0, scale, size=n).astype(float)


class TestGoldenAnchor:
    """The documented micro-example: a = [10, 10], c = 2, Q = 5."""

    def test_summary_state(self):
        got = slot_run_vectorized(np.array([10.0, 10.0]), 2.0, 5.0)
        assert got == (5.0, 11.0, 5.0, 20.0)
        assert got == fold_slots([10.0, 10.0], 2.0, 5.0)

    def test_loss_series_and_trajectory(self):
        a = np.array([10.0, 10.0])
        losses = np.zeros(2)
        slot_run_vectorized(a, 2.0, 5.0, loss_series=losses)
        np.testing.assert_array_equal(losses, [3.0, 8.0])
        reference, ref_losses, trajectory = _loop_reference(a, 2.0, 5.0)
        np.testing.assert_array_equal(losses, ref_losses)
        np.testing.assert_array_equal(trajectory, [5.0, 5.0])
        assert reference == (5.0, 11.0, 5.0, 20.0)


class TestKernelEquivalence:
    @pytest.mark.parametrize("block_size", BLOCK_SIZES)
    @pytest.mark.parametrize(
        "capacity,buffer_bytes",
        [
            (20.0, 60.0),    # regularly clamping at both barriers
            (25.0, 400.0),   # rare overflow, long clamp-free stretches
            (12.0, 0.0),     # bufferless: every excess byte drops
            (60.0, 30.0),    # mostly idle server, drain clamping
        ],
    )
    def test_integer_fluid_is_bit_identical(self, rng, block_size,
                                            capacity, buffer_bytes):
        a = _integer_arrivals(rng, 20_000)
        reference, ref_losses, _ = _loop_reference(a, capacity, buffer_bytes)
        losses = np.zeros(a.size)
        got = slot_run_vectorized(
            a, capacity, buffer_bytes, loss_series=losses, block_size=block_size
        )
        assert got == reference
        np.testing.assert_array_equal(losses, ref_losses)

    def test_without_loss_series(self, rng):
        a = _integer_arrivals(rng, 20_000)
        reference, _, _ = _loop_reference(a, 17.0, 90.0)
        assert slot_run_vectorized(a, 17.0, 90.0) == reference

    def test_float_fluid_stays_within_rounding(self, rng):
        a = rng.gamma(2.0, 10_000.0, size=50_000)
        c, q = 22_000.0, 60_000.0
        ref = fold_slots(a.tolist(), c, q)
        got = slot_run_vectorized(a, c, q)
        # Prefix-sum folding reassociates the additions, so the only
        # admissible difference anywhere is float rounding.
        np.testing.assert_allclose(got[3], ref[3], rtol=1e-12)
        for v, r in zip(got[:3], ref[:3]):
            np.testing.assert_allclose(v, r, rtol=1e-9, atol=1e-6)

    def test_chunked_state_resume(self, rng):
        # Carrying (backlog, lost, peak, total) across arbitrary chunk
        # boundaries must match one whole-series call.
        a = _integer_arrivals(rng, 30_000)
        whole = slot_run_vectorized(a, 18.0, 70.0)
        for chunk in (777, 3_333, 8_192):
            state = (0.0, 0.0, 0.0, 0.0)
            for start in range(0, a.size, chunk):
                state = slot_run_vectorized(
                    a[start : start + chunk], 18.0, 70.0, state=state
                )
            assert state == whole

    def test_nonzero_initial_state(self, rng):
        a = _integer_arrivals(rng, 5_000)
        state = (33.0, 12.0, 40.0, 500.0)
        reference, _, _ = _loop_reference(a, 21.0, 80.0, state=state)
        assert slot_run_vectorized(a, 21.0, 80.0, state=state) == reference

    def test_empty_input_returns_state(self):
        state = (3.0, 1.0, 4.0, 9.0)
        assert slot_run_vectorized(np.empty(0), 5.0, 10.0, state=state) == state


class TestDispatcher:
    def test_kernel_names(self):
        assert SLOT_KERNELS == ("reference", "vectorized")
        assert default_kernel() in SLOT_KERNELS

    def test_run_slots_selects_kernels(self, rng):
        a = _integer_arrivals(rng, 4_000)
        reference = fold_slots(a.tolist(), 19.0, 55.0)
        assert run_slots(a, 19.0, 55.0, kernel="reference") == reference
        assert run_slots(a, 19.0, 55.0, kernel="vectorized") == reference

    def test_run_slots_rejects_unknown_kernel(self):
        with pytest.raises(ValueError, match="kernel"):
            run_slots(np.zeros(4), 1.0, 1.0, kernel="fast")

    def test_set_default_kernel_round_trip(self, rng):
        a = _integer_arrivals(rng, 2_000)
        reference = run_slots(a, 9.0, 30.0, kernel="reference")
        previous = set_default_kernel("vectorized")
        try:
            assert default_kernel() == "vectorized"
            assert run_slots(a, 9.0, 30.0) == reference
        finally:
            set_default_kernel(previous)
        assert default_kernel() == previous

    def test_set_default_kernel_rejects_unknown(self):
        with pytest.raises(ValueError, match="kernel"):
            set_default_kernel("gpu")


class TestCallers:
    def test_simulate_queue_kernel_parameter(self, rng):
        a = _integer_arrivals(rng, 15_000)
        ref = simulate_queue(a, 18.0, 64.0, return_series=True)
        vec = simulate_queue(a, 18.0, 64.0, return_series=True,
                             kernel="vectorized")
        assert vec.lost_bytes == ref.lost_bytes
        assert vec.final_backlog == ref.final_backlog
        assert vec.peak_backlog == ref.peak_backlog
        assert vec.total_bytes == ref.total_bytes
        np.testing.assert_array_equal(vec.loss_series, ref.loss_series)

    def test_streaming_queue_kernel_parameter(self, rng):
        a = _integer_arrivals(rng, 12_000)
        chunks = [a[i : i + 1_000] for i in range(0, a.size, 1_000)]
        ref = simulate_queue_stream(chunks, 18.0, 64.0, record_loss=True)
        queue = StreamingQueue(18.0, 64.0, record_loss=True, kernel="vectorized")
        for chunk in chunks:
            queue.push(chunk)
        vec = queue.result()
        assert vec.lost_bytes == ref.lost_bytes
        assert vec.final_backlog == ref.final_backlog
        np.testing.assert_array_equal(vec.loss_series, ref.loss_series)

    def test_fifo_step_many_matches_step_loop(self, rng):
        a = _integer_arrivals(rng, 6_000, scale=30)
        loop = FIFODiscipline(14.0, 48.0)
        loop.register("video")
        lost = 0.0
        peak = 0.0
        for arrival in a:
            result = loop.step({"video": float(arrival)})
            lost += result.lost_total
            peak = max(peak, result.backlog)
        for kernel in SLOT_KERNELS:
            bulk = FIFODiscipline(14.0, 48.0)
            bulk.register("video")
            got = bulk.step_many(a, kernel=kernel)
            assert got["backlog"] == loop.backlog
            assert got["lost"] == lost
            assert got["peak"] == peak
            assert got["offered"] == float(a.sum())

    def test_fifo_step_many_requires_single_flow(self):
        port = FIFODiscipline(10.0, 10.0)
        port.register("a")
        port.register("b")
        with pytest.raises(ValueError, match="exactly one registered flow"):
            port.step_many(np.zeros(4))
