"""Tests for the spectral FGN generator and the stationarity check."""

import numpy as np
import pytest

from repro.analysis.hurst import variance_time
from repro.analysis.stationarity import (
    lrd_stationarity_check,
    segment_mean_dispersion,
)
from repro.core.spectral import SpectralGenerator, fgn_spectral_density, spectral_fgn


class TestSpectralDensity:
    def test_divergence_at_origin_for_lrd(self):
        """f(w) ~ w^(1-2H) as w -> 0: diverges for H > 1/2."""
        f_small = fgn_spectral_density(np.array([0.001]), 0.8)[0]
        f_large = fgn_spectral_density(np.array([0.1]), 0.8)[0]
        ratio = f_small / f_large
        expected = (0.001 / 0.1) ** (1 - 2 * 0.8)
        assert ratio == pytest.approx(expected, rel=0.15)

    def test_flat_for_white_noise(self):
        omega = np.linspace(0.1, np.pi, 20)
        f = fgn_spectral_density(omega, 0.5)
        assert f.max() / f.min() < 1.2

    def test_total_power_is_variance(self):
        """Integral of the density over (-pi, pi] equals 1 (unit FGN)."""
        omega = np.linspace(1e-4, np.pi, 200_000)
        f = fgn_spectral_density(omega, 0.75)
        total = 2.0 * np.trapezoid(f, omega)
        assert total == pytest.approx(1.0, rel=0.02)

    def test_rejects_bad_omega(self):
        with pytest.raises(ValueError):
            fgn_spectral_density(np.array([0.0]), 0.8)
        with pytest.raises(ValueError):
            fgn_spectral_density(np.array([4.0]), 0.8)


class TestSpectralGenerator:
    def test_unit_variance(self, rng):
        x = SpectralGenerator(0.8).generate(2**14, rng=rng)
        assert np.var(x) == pytest.approx(1.0, abs=0.1)

    def test_hurst_recovered(self, rng):
        x = SpectralGenerator(0.8).generate(2**14, rng=rng)
        assert variance_time(x).hurst == pytest.approx(0.8, abs=0.07)

    def test_antipersistent(self, rng):
        x = SpectralGenerator(0.3).generate(2**13, rng=rng)
        r1 = np.corrcoef(x[:-1], x[1:])[0, 1]
        assert r1 < -0.05

    def test_requires_even_length(self, rng):
        with pytest.raises(ValueError):
            SpectralGenerator(0.8).generate(999, rng=rng)

    def test_density_cache(self, rng):
        gen = SpectralGenerator(0.8)
        gen.generate(256, rng=rng)
        cached = gen._cached_f
        gen.generate(256, rng=rng)
        assert gen._cached_f is cached

    def test_wrapper(self, rng):
        assert spectral_fgn(128, hurst=0.7, rng=rng).shape == (128,)

    def test_three_generators_agree(self, rng):
        """Hosking, Davies-Harte and spectral synthesis recover the
        same variance-time H."""
        from repro.core.daviesharte import DaviesHarteGenerator
        from repro.core.hosking import HoskingGenerator

        n = 4096
        estimates = [
            variance_time(HoskingGenerator(hurst=0.8).generate(n, rng=rng)).hurst,
            variance_time(DaviesHarteGenerator(0.8).generate(n, rng=rng)).hurst,
            variance_time(SpectralGenerator(0.8).generate(n, rng=rng)).hurst,
        ]
        assert max(estimates) - min(estimates) < 0.15


class TestStationarityCheck:
    def test_segment_dispersion_basic(self, rng):
        x = rng.standard_normal(10_000)
        disp, n_seg = segment_mean_dispersion(x, 100)
        assert n_seg == 100
        assert disp == pytest.approx(0.1, rel=0.25)  # sigma/sqrt(100)

    def test_rejects_too_few_segments(self, rng):
        with pytest.raises(ValueError):
            segment_mean_dispersion(rng.standard_normal(100), 80)

    def test_iid_data_consistent_with_iid(self, rng):
        x = rng.standard_normal(50_000)
        report = lrd_stationarity_check(x, hurst=0.5, segment_length=1000)
        assert report.iid_ratio == pytest.approx(1.0, abs=0.4)
        assert not report.lrd_explains_dispersion  # no LRD needed

    def test_lrd_data_explained_by_lrd(self, fgn_path):
        """The paper's Section 3.2.2 claim on actual FGN: segment
        means wander far beyond i.i.d. but exactly as stationary LRD
        predicts."""
        report = lrd_stationarity_check(fgn_path, hurst=0.8, segment_length=1024)
        assert report.iid_ratio > 2.5
        assert report.lrd_ratio == pytest.approx(1.0, abs=0.5)
        assert report.lrd_explains_dispersion

    def test_reference_trace_explained(self, small_trace):
        from repro.analysis.hurst import variance_time

        x = small_trace.frame_bytes
        h = variance_time(x).hurst
        report = lrd_stationarity_check(x, hurst=min(h, 0.95))
        assert report.iid_ratio > 3.0
        assert 0.3 < report.lrd_ratio < 3.0

    def test_report_fields(self, rng):
        x = rng.standard_normal(5_000)
        report = lrd_stationarity_check(x, 0.7, segment_length=250)
        assert report.segment_length == 250
        assert report.n_segments == 20
        assert report.lrd_prediction > report.iid_prediction
