"""Tests for the calibrated Star-Wars-like trace synthesizer."""

import numpy as np
import pytest

from repro.video.starwars import STARWARS_PARAMETERS, synthesize_starwars_trace


@pytest.fixture(scope="module")
def trace():
    return synthesize_starwars_trace(n_frames=30_000, seed=5)


class TestCalibration:
    def test_frame_moments_match_paper(self, trace):
        x = trace.frame_bytes
        assert np.mean(x) == pytest.approx(27_791.0, rel=0.005)
        assert np.std(x) == pytest.approx(6_254.0, rel=0.02)

    def test_mean_rate_table1(self, trace):
        assert trace.mean_rate_bps / 1e6 == pytest.approx(5.34, rel=0.01)

    def test_peak_to_mean_band(self, trace):
        """Paper: 2.82 at frame level; the synthesis lands nearby."""
        s = trace.summary("frame")
        assert 2.2 < s.peak_to_mean < 3.8

    def test_slice_cov_matches_paper(self, trace):
        s = trace.summary("slice")
        assert s.coefficient_of_variation == pytest.approx(0.31, abs=0.03)

    def test_slice_mean(self, trace):
        s = trace.summary("slice")
        assert s.mean == pytest.approx(926.4, rel=0.01)

    def test_all_bytes_positive_integers(self, trace):
        assert np.all(trace.frame_bytes > 0)
        np.testing.assert_array_equal(trace.frame_bytes, np.round(trace.frame_bytes))
        np.testing.assert_array_equal(trace.slice_bytes, np.round(trace.slice_bytes))

    def test_slices_sum_to_frames_exactly(self, trace):
        sums = trace.slice_bytes.reshape(-1, 30).sum(axis=1)
        np.testing.assert_array_equal(sums, trace.frame_bytes)

    def test_custom_targets(self):
        t = synthesize_starwars_trace(n_frames=5_000, seed=1, mean=1000.0, std=200.0)
        assert np.mean(t.frame_bytes) == pytest.approx(1000.0, rel=0.01)
        assert np.std(t.frame_bytes) == pytest.approx(200.0, rel=0.05)


class TestStructure:
    def test_heavy_tail_recoverable(self, trace):
        """The fitted tail slope matches the synthesis target."""
        from repro.distributions.fitting import fit_pareto_tail_slope

        a = fit_pareto_tail_slope(trace.frame_bytes, tail_fraction=0.02)
        assert a == pytest.approx(STARWARS_PARAMETERS["tail_shape"], rel=0.35)

    def test_hurst_in_paper_band(self, trace):
        from repro.analysis.hurst import rs_pox, variance_time

        h_vt = variance_time(trace.frame_bytes).hurst
        h_rs = rs_pox(trace.frame_bytes).hurst
        assert 0.7 < h_vt < 0.95
        assert 0.7 < h_rs < 0.95

    def test_opening_crawl_is_high_bandwidth(self, trace):
        """The first 42 seconds (opening text) run hot, as in Fig. 1."""
        x = trace.frame_bytes
        crawl = np.mean(x[: int(42 * 24)])
        rest = np.mean(x[int(42 * 24) :])
        assert crawl > 1.1 * rest

    def test_central_spikes_present(self, trace):
        """The extreme peaks sit near the middle of the movie."""
        x = trace.frame_bytes
        top_frames = np.argsort(x)[-10:]
        relative = top_frames / x.size
        assert np.any((relative > 0.4) & (relative < 0.6))

    def test_short_range_correlation(self, trace):
        """Lag-1 autocorrelation is strong (scene persistence)."""
        x = trace.frame_bytes
        r1 = np.corrcoef(x[:-1], x[1:])[0, 1]
        assert r1 > 0.6

    def test_deterministic(self):
        a = synthesize_starwars_trace(n_frames=2_000, seed=9).frame_bytes
        b = synthesize_starwars_trace(n_frames=2_000, seed=9).frame_bytes
        np.testing.assert_array_equal(a, b)

    def test_seeds_differ(self):
        a = synthesize_starwars_trace(n_frames=2_000, seed=1).frame_bytes
        b = synthesize_starwars_trace(n_frames=2_000, seed=2).frame_bytes
        assert not np.array_equal(a, b)

    def test_without_slices(self):
        t = synthesize_starwars_trace(n_frames=1_000, seed=3, with_slices=False)
        assert not t.has_slice_data

    def test_landmark_scale_zero_removes_spikes(self):
        """Disabling landmarks flattens the center of the movie."""
        with_marks = synthesize_starwars_trace(n_frames=20_000, seed=4, with_slices=False)
        without = synthesize_starwars_trace(
            n_frames=20_000, seed=4, with_slices=False, landmark_scale=0.0
        )
        mid = slice(int(0.45 * 20_000), int(0.55 * 20_000))
        assert np.max(with_marks.frame_bytes[mid]) >= np.max(without.frame_bytes[mid])

    def test_rejects_bad_hurst(self):
        with pytest.raises(ValueError):
            synthesize_starwars_trace(n_frames=100, hurst=0.5)

    def test_parameters_dict_complete(self):
        for key in ("n_frames", "mean_frame_bytes", "std_frame_bytes", "hurst", "tail_shape"):
            assert key in STARWARS_PARAMETERS
