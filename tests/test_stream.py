"""Tests for the constant-memory streaming pipeline (repro.stream).

The load-bearing properties are exactness ones: chunked generation,
transform and queueing must reproduce their batch counterparts
bit-for-bit (or to machine precision) for *any* chunking, so the
streaming pipeline can replace the batch path wherever memory demands
it without changing a single result.
"""

import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.daviesharte import DaviesHarteGenerator
from repro.core.hosking import hosking_farima
from repro.core.transform import marginal_transform
from repro.qa import stats as qa
from tests.qa_budget import CHECK_ALPHA
from repro.distributions.hybrid import GammaParetoHybrid
from repro.distributions.normal import Normal
from repro.simulation.multiplex import multiplex_series, random_lags
from repro.simulation.queue import simulate_queue
from repro.stream import (
    ArraySource,
    BlockFGNSource,
    HoskingSource,
    OnlineMoments,
    ParallelSources,
    Stream,
    StreamingQueue,
    StreamingVarianceTime,
    make_source,
    merge_streams,
    multiplex_lagged,
    simulate_queue_stream,
)

TARGET = GammaParetoHybrid(27_791.0, 6_254.0, 12.0)


class TestStreamBasics:
    def test_from_array_roundtrip(self):
        x = np.arange(1000.0)
        assert np.array_equal(Stream.from_array(x, 64).to_array(), x)

    def test_rechunk_sizes(self):
        chunks = list(Stream.from_array(np.arange(1000.0), 64).rechunk(300))
        assert [c.size for c in chunks] == [300, 300, 300, 100]

    def test_scale_shift(self):
        x = np.arange(100.0)
        out = Stream.from_array(x, 7).scale(2.0).shift(1.0).to_array()
        np.testing.assert_array_equal(out, 2.0 * x + 1.0)

    def test_single_use(self):
        s = Stream.from_array(np.arange(10.0), 4)
        s.to_array()
        assert s.to_array().size == 0

    def test_observe_and_drain(self):
        x = np.arange(500.0)
        om = OnlineMoments()
        passed = Stream.from_array(x, 33).observe(om).to_array()
        assert np.array_equal(passed, x)
        assert om.count == 500
        om2 = OnlineMoments()
        Stream.from_array(x, 33).drain(om2)
        assert om2.count == 500


class TestHoskingSource:
    def test_matches_batch_exactly(self):
        ref = hosking_farima(800, hurst=0.8, rng=np.random.default_rng(5))
        out = Stream.from_source(
            HoskingSource(hurst=0.8), 800, 129, rng=np.random.default_rng(5)
        ).to_array()
        np.testing.assert_array_equal(out, ref)

    @given(chunk=st.integers(min_value=1, max_value=400))
    @settings(max_examples=10, deadline=None)
    def test_chunking_invariant(self, chunk):
        ref = hosking_farima(300, hurst=0.7, rng=np.random.default_rng(11))
        out = Stream.from_source(
            HoskingSource(hurst=0.7), 300, chunk, rng=np.random.default_rng(11)
        ).to_array()
        np.testing.assert_array_equal(out, ref)

    def test_fresh_realization_per_call(self):
        src = HoskingSource(hurst=0.8)
        a = np.concatenate(list(src.chunks(200, 64, rng=np.random.default_rng(1))))
        b = np.concatenate(list(src.chunks(200, 64, rng=np.random.default_rng(1))))
        np.testing.assert_array_equal(a, b)


class TestBlockFGNSource:
    @pytest.mark.parametrize("backend", ["paxson", "davies-harte"])
    def test_marginal_statistics(self, backend):
        """Mean via a z-test with the exact fGn sample-mean SE
        (sigma * n^(H-1)); variance via TOST over per-segment mean
        squares (the process mean is 0, so E[mean(x^2)] = 1 exactly)."""
        n = 60_000
        src = BlockFGNSource(0.8, block_size=8192, overlap=256, backend=backend)
        x = Stream.from_source(src, n, 8192, rng=np.random.default_rng(3)).to_array()
        mean_squares = [float(np.mean(seg**2)) for seg in np.array_split(x, 8)]
        qa.require(
            qa.z_test(
                float(np.mean(x)), 0.0, qa.fgn_mean_std_error(n, 0.8),
                alpha=1e-3, name=f"block-fGn mean ({backend})",
            ),
            qa.equivalence_check(
                mean_squares, 1.0, margin=0.15, alpha=1e-3,
                name=f"block-fGn variance ({backend})",
            ),
        )

    def test_seam_preserves_variance(self):
        """The cos/sin cross-fade must not dent the variance at seams:
        TOST over per-seam mean squares (E[mean(x^2)] = 1 exactly when
        the fade preserves variance) replaces the old rel=0.15 band."""
        src = BlockFGNSource(0.8, block_size=2048, overlap=128, backend="paxson")
        x = Stream.from_source(src, 2048 * 40, 2048, rng=np.random.default_rng(8)).to_array()
        seam_mean_squares = [
            float(np.mean(x[k * 2048 : k * 2048 + 128] ** 2)) for k in range(1, 40)
        ]
        qa.require(
            qa.equivalence_check(
                seam_mean_squares, 1.0, margin=0.15, alpha=1e-3,
                name="cross-fade seam variance",
            )
        )

    def test_deterministic(self):
        src = BlockFGNSource(0.8, block_size=1024, overlap=64)
        a = np.concatenate(list(src.chunks(5000, 999, rng=np.random.default_rng(2))))
        b = np.concatenate(list(src.chunks(5000, 999, rng=np.random.default_rng(2))))
        np.testing.assert_array_equal(a, b)

    def test_zero_overlap(self):
        src = BlockFGNSource(0.8, block_size=1024, overlap=0)
        x = np.concatenate(list(src.chunks(3000, 1000, rng=np.random.default_rng(2))))
        assert x.size == 3000

    def test_hurst_recoverable(self):
        from repro.analysis.hurst import variance_time

        src = BlockFGNSource(0.8, block_size=16_384, overlap=512, backend="paxson")
        x = Stream.from_source(src, 2**17, 16_384, rng=np.random.default_rng(7)).to_array()
        h = variance_time(x).hurst
        assert 0.68 < h < 0.92

    def test_rejects_bad_overlap(self):
        with pytest.raises(ValueError):
            BlockFGNSource(0.8, block_size=100, overlap=100)

    def test_rejects_bad_backend(self):
        with pytest.raises(ValueError):
            BlockFGNSource(0.8, backend="hosking")

    def test_make_source(self):
        assert isinstance(make_source("hosking"), HoskingSource)
        assert make_source("davies-harte").backend == "davies-harte"
        assert make_source("paxson").backend == "paxson"
        with pytest.raises(ValueError):
            make_source("exact")


class TestStreamingTransform:
    @given(chunk=st.integers(min_value=1, max_value=700))
    @settings(max_examples=10, deadline=None)
    def test_exact_method_bitwise_equal(self, chunk):
        x = np.random.default_rng(0).standard_normal(600)
        batch = marginal_transform(x, TARGET, source=Normal(0.0, 1.0))
        streamed = Stream.from_array(x, chunk).transform(TARGET).to_array()
        np.testing.assert_array_equal(streamed, batch)

    def test_table_method_bitwise_equal(self):
        x = np.random.default_rng(1).standard_normal(2000)
        batch = marginal_transform(x, TARGET, source=Normal(0.0, 1.0), method="table")
        streamed = Stream.from_array(x, 313).transform(TARGET, method="table").to_array()
        np.testing.assert_array_equal(streamed, batch)

    def test_full_pipeline_matches_model_generate(self):
        """Streamed Hosking + transform == VBRVideoModel.generate."""
        from repro.core.model import VBRVideoModel

        model = VBRVideoModel(27_791.0, 6_254.0, 12.0, 0.8)
        ref = model.generate(500, rng=np.random.default_rng(21), generator="hosking")
        streamed = (
            Stream.from_source(
                HoskingSource(hurst=0.8), 500, 123, rng=np.random.default_rng(21)
            )
            .transform(model.marginal)
            .to_array()
        )
        np.testing.assert_array_equal(streamed, ref)

    def test_requires_normal_source(self):
        from repro.stream.transform import StreamingMarginalTransform

        with pytest.raises(TypeError):
            StreamingMarginalTransform(TARGET, source=TARGET)

    def test_rejects_unknown_method(self):
        from repro.stream.transform import StreamingMarginalTransform

        with pytest.raises(ValueError):
            StreamingMarginalTransform(TARGET, method="spline")


class TestStreamingQueue:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        chunk=st.integers(min_value=1, max_value=2500),
        capacity=st.floats(min_value=0.5, max_value=30.0),
        buffer=st.floats(min_value=0.0, max_value=200.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_bitwise_equal_to_batch(self, seed, chunk, capacity, buffer):
        a = np.random.default_rng(seed).uniform(0, 25, size=2000)
        batch = simulate_queue(a, capacity, buffer)
        streamed = simulate_queue_stream(Stream.from_array(a, chunk), capacity, buffer)
        assert streamed.total_bytes == batch.total_bytes
        assert streamed.lost_bytes == batch.lost_bytes
        assert streamed.final_backlog == batch.final_backlog
        assert streamed.peak_backlog == batch.peak_backlog

    def test_loss_series_bitwise_equal(self):
        a = np.random.default_rng(4).uniform(0, 25, size=3000)
        batch = simulate_queue(a, 9.0, 30.0, return_series=True)
        streamed = simulate_queue_stream(
            Stream.from_array(a, 271), 9.0, 30.0, record_loss=True
        )
        np.testing.assert_array_equal(streamed.loss_series, batch.loss_series)

    def test_seed_trace_exact(self, small_series):
        """Acceptance: the chunked queue reproduces the seed-trace stats."""
        mean_rate = float(np.mean(small_series))
        capacity = 1.1 * mean_rate
        buffer = 5.0 * mean_rate
        batch = simulate_queue(small_series, capacity, buffer)
        assert batch.lost_bytes > 0  # a lossy operating point
        streamed = simulate_queue_stream(
            Stream.from_array(small_series, 4096), capacity, buffer
        )
        assert streamed == batch

    def test_push_returns_chunk_loss(self):
        queue = StreamingQueue(2.0, 5.0)
        assert queue.push(np.array([10.0, 10.0])) == pytest.approx(11.0)
        assert queue.push(np.array([0.0, 0.0])) == 0.0
        assert queue.slots_seen == 4

    def test_intermediate_results(self):
        a = np.random.default_rng(5).uniform(0, 20, size=1000)
        queue = StreamingQueue(8.0, 40.0)
        queue.push(a[:400])
        partial = queue.result()
        full_partial = simulate_queue(a[:400], 8.0, 40.0)
        assert partial.lost_bytes == full_partial.lost_bytes
        queue.push(a[400:])
        assert queue.result() == simulate_queue(a, 8.0, 40.0)

    def test_rejects_negative_arrivals(self):
        with pytest.raises(ValueError):
            StreamingQueue(1.0, 1.0).push(np.array([-1.0]))

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_rejects_non_finite_parameters(self, bad):
        with pytest.raises(ValueError):
            StreamingQueue(bad, 1.0)
        with pytest.raises(ValueError):
            StreamingQueue(1.0, bad)


class TestMultiplexLagged:
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        chunk=st.integers(min_value=1, max_value=900),
        n_sources=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=20, deadline=None)
    def test_matches_batch_multiplex(self, seed, chunk, n_sources):
        rng = np.random.default_rng(seed)
        series = rng.uniform(0, 100, size=800)
        lags = rng.integers(0, 800, size=n_sources)
        want = multiplex_series(series, lags)
        got = multiplex_lagged(Stream.from_array(series, chunk), lags).to_array()
        np.testing.assert_allclose(got, want, rtol=0, atol=1e-9)

    def test_paper_lag_constraints(self):
        """The paper's min-separation lags, streamed vs batch."""
        rng = np.random.default_rng(2)
        series = rng.uniform(0, 100, size=12_000)
        lags = random_lags(6, 12_000, min_separation=1000, rng=rng)
        want = multiplex_series(series, lags)
        got = multiplex_lagged(
            Stream.from_array(series, 1024), lags, chunk_size=2048
        ).to_array()
        np.testing.assert_allclose(got, want, rtol=0, atol=1e-9)

    def test_zero_lag_is_scaling(self):
        series = np.arange(100.0)
        got = multiplex_lagged(Stream.from_array(series, 13), [0, 0, 0]).to_array()
        np.testing.assert_allclose(got, 3.0 * series)

    def test_rejects_short_stream(self):
        with pytest.raises(ValueError):
            multiplex_lagged(Stream.from_array(np.arange(50.0), 10), [3], n=60).to_array()

    def test_rejects_unknown_period(self):
        gen = (np.zeros(4) for _ in range(2))
        with pytest.raises(ValueError):
            multiplex_lagged(Stream(gen), [1])


class TestMergeAndParallel:
    def test_merge_equals_sum(self):
        rng = np.random.default_rng(3)
        a, b = rng.uniform(0, 10, size=(2, 5000))
        merged = merge_streams(
            [Stream.from_array(a, 123), Stream.from_array(b, 777)], chunk_size=500
        ).to_array()
        np.testing.assert_allclose(merged, a + b)

    def test_merge_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            merge_streams(
                [Stream.from_array(np.zeros(10), 4), Stream.from_array(np.zeros(12), 4)]
            )

    def test_parallel_matches_sequential(self):
        """Worker-pool aggregation == sum of per-source streams."""
        sources = [BlockFGNSource(0.8, block_size=2048, overlap=64) for _ in range(3)]
        agg = ParallelSources(sources).stream(
            10_000, 2048, rng=np.random.default_rng(6)
        ).to_array()
        children = np.random.default_rng(6).spawn(3)
        expected = np.zeros(10_000)
        for child in children:
            src = BlockFGNSource(0.8, block_size=2048, overlap=64)
            expected += np.concatenate(list(src.chunks(10_000, 2048, rng=child)))
        np.testing.assert_allclose(agg, expected)

    def test_worker_count_does_not_change_values(self):
        sources = [BlockFGNSource(0.7, block_size=1024, overlap=32) for _ in range(4)]
        a = ParallelSources(sources, max_workers=1).stream(
            4000, 1024, rng=np.random.default_rng(9)
        ).to_array()
        sources2 = [BlockFGNSource(0.7, block_size=1024, overlap=32) for _ in range(4)]
        b = ParallelSources(sources2, max_workers=4).stream(
            4000, 1024, rng=np.random.default_rng(9)
        ).to_array()
        np.testing.assert_array_equal(a, b)

    def test_per_source_chunks(self):
        sources = [ArraySource(np.arange(100.0)), ArraySource(np.arange(100.0))]
        steps = list(ParallelSources(sources).chunks(100, 40, aggregate=False))
        assert [len(step) for step in steps] == [2, 2, 2]
        np.testing.assert_array_equal(steps[0][0], np.arange(40.0))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ParallelSources([])


class TestOnlineMoments:
    @given(chunk=st.integers(min_value=1, max_value=3000))
    @settings(max_examples=15, deadline=None)
    def test_matches_numpy(self, chunk):
        x = np.random.default_rng(12).uniform(-5, 5, size=2500)
        om = OnlineMoments()
        Stream.from_array(x, chunk).drain(om)
        assert om.count == x.size
        assert om.mean == pytest.approx(np.mean(x), rel=1e-12)
        assert om.variance == pytest.approx(np.var(x), rel=1e-10)
        assert om.minimum == np.min(x)
        assert om.maximum == np.max(x)
        assert om.total == pytest.approx(np.sum(x), rel=1e-12)

    def test_merge(self):
        x = np.random.default_rng(13).standard_normal(4000)
        left, right = OnlineMoments(), OnlineMoments()
        left.update(x[:1500])
        right.update(x[1500:])
        left.merge(right)
        assert left.count == 4000
        assert left.variance == pytest.approx(np.var(x), rel=1e-10)

    def test_empty_chunk_noop(self):
        om = OnlineMoments()
        om.update(np.zeros(0))
        assert om.count == 0


class TestStreamingVarianceTime:
    def test_matches_batch_on_dyadic_grid(self, fgn_path):
        """Same dyadic grid -> the same block-mean variances, so the
        fitted H agrees to rounding, not an approx band."""
        from repro.analysis.hurst import variance_time

        svt = StreamingVarianceTime()
        Stream.from_array(fgn_path, 1777).drain(svt)
        result = svt.hurst()
        m_batch = [m for m in result.m_values[result.fit_mask]]
        batch = variance_time(fgn_path, m_values=m_batch, fit_range=(min(m_batch), max(m_batch)))
        np.testing.assert_allclose(
            result.normalized_variances[result.fit_mask],
            batch.normalized_variances[batch.fit_mask],
            rtol=1e-9,
        )
        assert result.hurst == pytest.approx(batch.hurst, rel=1e-9)

    def test_recovers_hurst(self, fgn_path):
        svt = StreamingVarianceTime()
        Stream.from_array(fgn_path, 4096).drain(svt)
        assert 0.7 < svt.hurst().hurst < 0.9

    def test_chunking_invariant(self, fgn_path):
        a, b = StreamingVarianceTime(), StreamingVarianceTime()
        Stream.from_array(fgn_path, 100).drain(a)
        Stream.from_array(fgn_path, 9999).drain(b)
        assert a.hurst().hurst == pytest.approx(b.hurst().hurst, rel=1e-9)

    def test_needs_data(self):
        with pytest.raises(ValueError):
            StreamingVarianceTime().hurst()


@pytest.mark.tier2
class TestStreamingBatchEquivalence:
    """Seed-robust equivalence of the streaming estimators with their
    batch counterparts: both sides see the exact same numbers, so the
    checks are exact for *any* ``--qa-seed`` -- no statistical retry
    and no alpha budget needed."""

    def test_svt_matches_variance_time_on_dyadic_grid(self, seeded_rng):
        x = DaviesHarteGenerator(0.8).generate(2**15, rng=seeded_rng)
        svt = StreamingVarianceTime()
        Stream.from_array(x, 1023).drain(svt)
        from repro.analysis.hurst import variance_time

        streamed = svt.hurst()
        grid = [int(m) for m in streamed.m_values]
        batch = variance_time(x, m_values=grid, fit_range=(min(grid), max(grid)))
        np.testing.assert_allclose(
            streamed.normalized_variances, batch.normalized_variances, rtol=1e-9
        )

    def test_svt_fit_subrange_matches_batch(self, seeded_rng):
        x = seeded_rng.standard_normal(2**14)
        svt = StreamingVarianceTime()
        Stream.from_array(x, 777).drain(svt)
        from repro.analysis.hurst import variance_time

        streamed = svt.hurst(fit_range=(8, 128))
        grid = [int(m) for m in streamed.m_values]
        batch = variance_time(x, m_values=grid, fit_range=(8, 128))
        assert streamed.hurst == pytest.approx(batch.hurst, rel=1e-9)
        assert streamed.beta == pytest.approx(batch.beta, rel=1e-9)

    def test_online_moments_merge_is_associative(self, seeded_rng):
        x = seeded_rng.uniform(-5.0, 5.0, size=6001)
        parts = np.array_split(x, 3)

        def acc(arr):
            return OnlineMoments().update(arr)

        left = acc(parts[0]).merge(acc(parts[1])).merge(acc(parts[2]))
        right = acc(parts[0]).merge(acc(parts[1]).merge(acc(parts[2])))
        direct = acc(x)
        for om in (left, right):
            assert om.count == direct.count
            assert om.mean == pytest.approx(direct.mean, rel=1e-12)
            assert om.variance == pytest.approx(direct.variance, rel=1e-10)
            assert om.total == pytest.approx(direct.total, rel=1e-12)
            assert om.minimum == direct.minimum
            assert om.maximum == direct.maximum

    def test_online_moments_empty_merges(self, seeded_rng):
        x = seeded_rng.standard_normal(500)
        full = OnlineMoments().update(x)
        # empty <- full adopts every field; full <- empty is a no-op.
        adopted = OnlineMoments().merge(full)
        assert adopted.count == full.count
        assert adopted.mean == full.mean
        assert adopted.variance == full.variance
        assert adopted.minimum == full.minimum
        assert adopted.maximum == full.maximum
        before = (full.count, full.mean, full.variance, full.total)
        full.merge(OnlineMoments())
        assert (full.count, full.mean, full.variance, full.total) == before
        # empty <- empty stays a valid zero state.
        both = OnlineMoments().merge(OnlineMoments())
        assert both.count == 0
        assert both.variance == 0.0


@pytest.mark.tier3
class TestBoundedMemory:
    def test_two_million_transformed_samples_bounded(self):
        """Acceptance (scaled for tier-1): the pipeline never
        materializes the series.  2M float64 samples are 16 MB; the
        traced allocation peak must stay far below that."""
        n, chunk = 2_000_000, 65_536
        src = BlockFGNSource(0.8, block_size=chunk, overlap=1024, backend="paxson")
        stream = (
            Stream.from_source(src, n, chunk, rng=np.random.default_rng(1))
            .transform(TARGET, method="table")
        )
        moments = OnlineMoments()
        queue = StreamingQueue(30_000.0, 500_000.0)
        tracemalloc.start()
        baseline, _ = tracemalloc.get_traced_memory()
        stream.drain(moments, queue)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert moments.count == n
        assert queue.slots_seen == n
        assert peak - baseline < 8 * n  # < half the full-array footprint
        # And the output is real traffic: paper-like mean, some loss.
        assert moments.mean == pytest.approx(27_791.0, rel=0.05)
