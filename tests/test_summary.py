"""Tests for Table 2 summary statistics."""

import numpy as np
import pytest

from repro.analysis.summary import TraceSummary, summarize


class TestSummarize:
    def test_basic_statistics(self):
        s = summarize([10.0, 20.0, 30.0], time_unit_ms=41.67)
        assert s.mean == pytest.approx(20.0)
        assert s.maximum == 30.0
        assert s.minimum == 10.0
        assert s.peak_to_mean == pytest.approx(1.5)
        assert s.n_observations == 3

    def test_coefficient_of_variation(self):
        s = summarize([10.0, 20.0, 30.0], time_unit_ms=1.0)
        assert s.coefficient_of_variation == pytest.approx(s.std / s.mean)

    def test_mean_rate_bps(self):
        """27791 bytes per 41.67 ms frame = 5.34 Mb/s (Table 1)."""
        s = summarize(np.full(100, 27_791.0), time_unit_ms=1000.0 / 24.0)
        assert s.mean_rate_bps == pytest.approx(5.34e6, rel=0.01)

    def test_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            summarize([0.0, 0.0], time_unit_ms=1.0)

    def test_rejects_bad_time_unit(self):
        with pytest.raises(ValueError):
            summarize([1.0, 2.0], time_unit_ms=0.0)

    def test_as_dict_roundtrip(self):
        s = summarize([5.0, 15.0], time_unit_ms=2.0)
        d = s.as_dict()
        assert d["mean"] == s.mean
        assert d["time_unit_ms"] == 2.0

    def test_format_rows_structure(self):
        s = summarize([5.0, 15.0], time_unit_ms=2.0)
        rows = s.format_rows()
        labels = [r[0] for r in rows]
        assert any("Peak/mean" in label for label in labels)
        assert all(isinstance(r[1], str) for r in rows)

    def test_frozen(self):
        s = summarize([1.0, 2.0], time_unit_ms=1.0)
        with pytest.raises(AttributeError):
            s.mean = 5.0

    def test_reference_trace_matches_paper(self, small_trace):
        """The calibrated trace reproduces Table 2 closely even at
        reduced length."""
        s = small_trace.summary("frame")
        assert s.mean == pytest.approx(27_791.0, rel=0.01)
        assert s.std == pytest.approx(6_254.0, rel=0.02)
        assert s.coefficient_of_variation == pytest.approx(0.23, abs=0.01)

    def test_slice_summary_cov(self, small_trace):
        s = small_trace.summary("slice")
        assert s.coefficient_of_variation == pytest.approx(0.31, abs=0.02)
        assert s.time_unit_ms == pytest.approx(1.389, abs=0.001)
