"""Tests for the procedural movie generator."""

import numpy as np
import pytest

from repro.video.synthetic import SyntheticMovie


class TestSyntheticMovie:
    def test_yields_correct_count_and_shape(self):
        movie = SyntheticMovie(5, height=32, width=40, seed=1)
        frames = list(movie)
        assert len(frames) == 5
        assert all(f.shape == (32, 40) for f in frames)

    def test_frames_are_uint8(self):
        movie = SyntheticMovie(2, height=16, width=16, seed=2)
        for f in movie:
            assert f.dtype == np.uint8
            assert f.min() >= 0
            assert f.max() <= 255

    def test_deterministic_per_seed(self):
        a = SyntheticMovie(4, height=16, width=16, seed=3).render()
        b = SyntheticMovie(4, height=16, width=16, seed=3).render()
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = SyntheticMovie(2, height=16, width=16, seed=1).render()
        b = SyntheticMovie(2, height=16, width=16, seed=2).render()
        assert not np.array_equal(a, b)

    def test_repeat_iteration_reproduces(self):
        movie = SyntheticMovie(3, height=16, width=16, seed=5)
        first = np.stack(list(movie))
        second = np.stack(list(movie))
        np.testing.assert_array_equal(first, second)

    def test_consecutive_frames_correlated(self):
        """Within a scene, motion shifts the same texture: consecutive
        frames are far more alike than frames from different scenes."""
        movie = SyntheticMovie(40, height=32, width=32, seed=8, min_scene_frames=20)
        frames = movie.render().astype(float)
        within = np.mean(np.abs(frames[1] - frames[0]))
        across = np.mean(np.abs(frames[-1] - frames[0]))
        assert within < across

    def test_script_accessible(self):
        movie = SyntheticMovie(100, seed=4)
        assert movie.script.n_frames == 100

    def test_len(self):
        assert len(SyntheticMovie(7, seed=0)) == 7

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            SyntheticMovie(5, height=0)
        with pytest.raises(ValueError):
            SyntheticMovie(0)

    def test_effect_probability_bounds(self):
        with pytest.raises(ValueError):
            SyntheticMovie(5, effect_probability=1.5)
