"""Tests for the tabulated distribution and its convolution."""

import numpy as np
import pytest

from repro.distributions import Normal, TabulatedDistribution


class TestConstruction:
    def test_from_distribution(self):
        t = TabulatedDistribution.from_distribution(Normal(0, 1), n_points=2001)
        assert t.cdf(0.0) == pytest.approx(0.5, abs=1e-3)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            TabulatedDistribution([0, 1, 2], [0.0, 1.0])

    def test_rejects_non_increasing_x(self):
        with pytest.raises(ValueError):
            TabulatedDistribution([0, 0, 1], [0.0, 0.5, 1.0])

    def test_rejects_decreasing_cdf(self):
        with pytest.raises(ValueError):
            TabulatedDistribution([0, 1, 2], [0.0, 0.7, 0.5])

    def test_rejects_cdf_outside_unit(self):
        with pytest.raises(ValueError):
            TabulatedDistribution([0, 1], [0.0, 1.5])

    def test_support(self):
        t = TabulatedDistribution([1.0, 2.0, 4.0], [0.0, 0.5, 1.0])
        assert t.support == (1.0, 4.0)


class TestEvaluation:
    def test_cdf_interpolates_linearly(self):
        t = TabulatedDistribution([0.0, 1.0], [0.0, 1.0])
        assert t.cdf(0.25) == pytest.approx(0.25)

    def test_cdf_clamps_outside_support(self):
        t = TabulatedDistribution([0.0, 1.0], [0.0, 1.0])
        assert t.cdf(-1.0) == 0.0
        assert t.cdf(2.0) == 1.0

    def test_pdf_zero_outside_support(self):
        t = TabulatedDistribution([0.0, 1.0], [0.0, 1.0])
        assert t.pdf(-0.5) == 0.0
        assert t.pdf(1.5) == 0.0

    def test_ppf_handles_flat_cdf_regions(self):
        """Flat CDF stretches (zero density) must not break inversion."""
        t = TabulatedDistribution([0.0, 1.0, 2.0, 3.0], [0.0, 0.5, 0.5, 1.0])
        # Any x in [1, 2] is a valid inverse at the flat level itself.
        assert 0.0 <= t.ppf(0.5) <= 2.0
        assert t.ppf(0.75) == pytest.approx(2.5)
        assert t.ppf(0.25) == pytest.approx(0.5)

    def test_ppf_rejects_out_of_range(self):
        t = TabulatedDistribution([0.0, 1.0], [0.0, 1.0])
        with pytest.raises(ValueError):
            t.ppf(-0.1)

    def test_uniform_moments(self):
        t = TabulatedDistribution([0.0, 1.0], [0.0, 1.0])
        assert t.mean() == pytest.approx(0.5)
        assert t.var() == pytest.approx(1.0 / 12.0, rel=1e-6)

    def test_tabulated_normal_moments(self):
        t = TabulatedDistribution.from_distribution(Normal(5.0, 2.0), n_points=20_001)
        assert t.mean() == pytest.approx(5.0, abs=0.01)
        assert t.var() == pytest.approx(4.0, rel=0.02)

    def test_sampling(self, rng):
        t = TabulatedDistribution.from_distribution(Normal(0.0, 1.0), n_points=5001)
        x = t.sample(50_000, rng=rng)
        assert np.mean(x) == pytest.approx(0.0, abs=0.02)


class TestConvolution:
    def test_normal_plus_normal_is_normal(self):
        """N(0,1) * N(0,1) = N(0,2): a sharp correctness check."""
        t = TabulatedDistribution.from_distribution(Normal(0.0, 1.0), n_points=4001)
        s = t.convolve(t, n_points=4001)
        assert s.mean() == pytest.approx(0.0, abs=0.01)
        assert s.var() == pytest.approx(2.0, rel=0.02)
        target = Normal(0.0, np.sqrt(2.0))
        for q in (0.1, 0.25, 0.5, 0.75, 0.9):
            assert s.ppf(q) == pytest.approx(target.ppf(q), abs=0.02)

    def test_convolution_of_shifted_normals(self):
        a = TabulatedDistribution.from_distribution(Normal(3.0, 1.0), n_points=4001)
        b = TabulatedDistribution.from_distribution(Normal(-1.0, 2.0), n_points=4001)
        s = a.convolve(b, n_points=4001)
        assert s.mean() == pytest.approx(2.0, abs=0.02)
        assert s.var() == pytest.approx(5.0, rel=0.03)

    def test_convolve_accepts_parametric_other(self):
        a = TabulatedDistribution.from_distribution(Normal(0.0, 1.0), n_points=2001)
        s = a.convolve(Normal(0.0, 1.0), n_points=2001)
        assert s.var() == pytest.approx(2.0, rel=0.05)
