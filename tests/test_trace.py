"""Tests for the VBRTrace container and trace file I/O."""

import numpy as np
import pytest

from repro.video.trace import VBRTrace
from repro.video.tracefile import load_trace, save_trace


@pytest.fixture
def trace():
    rng = np.random.default_rng(0)
    frames = rng.integers(1000, 5000, size=60).astype(float)
    return VBRTrace(frames, frame_rate=24.0, slices_per_frame=4)


@pytest.fixture
def trace_with_slices():
    rng = np.random.default_rng(1)
    slices = rng.integers(100, 500, size=60 * 4).astype(float)
    frames = slices.reshape(60, 4).sum(axis=1)
    return VBRTrace(frames, frame_rate=24.0, slices_per_frame=4, slice_bytes=slices)


class TestConstruction:
    def test_basic_properties(self, trace):
        assert trace.n_frames == 60
        assert len(trace) == 60
        assert trace.duration_seconds == pytest.approx(2.5)
        assert trace.frame_interval_ms == pytest.approx(41.667, abs=0.001)
        assert trace.slice_interval_ms == pytest.approx(41.667 / 4, abs=0.001)

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError):
            VBRTrace([-1.0, 2.0])

    def test_rejects_mismatched_slices(self):
        with pytest.raises(ValueError):
            VBRTrace([100.0, 200.0], slices_per_frame=2, slice_bytes=[50.0, 50.0, 100.0])

    def test_rejects_inconsistent_slice_sums(self):
        with pytest.raises(ValueError):
            VBRTrace(
                [100.0, 200.0],
                slices_per_frame=2,
                slice_bytes=[10.0, 10.0, 100.0, 100.0],
            )

    def test_synthesized_slices_when_absent(self, trace):
        assert not trace.has_slice_data
        s = trace.slice_bytes
        assert s.size == 240
        np.testing.assert_allclose(
            s.reshape(60, 4).sum(axis=1), trace.frame_bytes, rtol=1e-12
        )

    def test_genuine_slices_preserved(self, trace_with_slices):
        assert trace_with_slices.has_slice_data


class TestViews:
    def test_series_units(self, trace_with_slices):
        assert trace_with_slices.series("frame").size == 60
        assert trace_with_slices.series("slice").size == 240
        with pytest.raises(ValueError):
            trace_with_slices.series("hour")

    def test_rates(self, trace):
        expected = trace.frame_bytes.mean() * 8 * 24
        assert trace.mean_rate_bps == pytest.approx(expected)
        assert trace.peak_rate_bps == pytest.approx(trace.frame_bytes.max() * 8 * 24)

    def test_summary_matches_series(self, trace):
        s = trace.summary("frame")
        assert s.mean == pytest.approx(trace.frame_bytes.mean())

    def test_segment(self, trace_with_slices):
        seg = trace_with_slices.segment(10, 20)
        assert seg.n_frames == 10
        np.testing.assert_array_equal(seg.frame_bytes, trace_with_slices.frame_bytes[10:20])
        assert seg.has_slice_data

    def test_segment_bounds(self, trace):
        with pytest.raises(ValueError):
            trace.segment(-1, 10)
        with pytest.raises(ValueError):
            trace.segment(50, 40)
        with pytest.raises(ValueError):
            trace.segment(0, 61)

    def test_shifted_wraps_around(self, trace_with_slices):
        shifted = trace_with_slices.shifted(10)
        np.testing.assert_array_equal(
            shifted.frame_bytes, np.roll(trace_with_slices.frame_bytes, -10)
        )
        # Slices shift in lockstep with frames.
        np.testing.assert_array_equal(
            shifted.slice_bytes.reshape(60, 4).sum(axis=1), shifted.frame_bytes
        )

    def test_shifted_by_more_than_length(self, trace):
        shifted = trace.shifted(70)
        np.testing.assert_array_equal(shifted.frame_bytes, np.roll(trace.frame_bytes, -10))


class TestTraceFile:
    def test_frame_roundtrip(self, trace, tmp_path):
        path = tmp_path / "trace.dat"
        save_trace(trace, path)
        loaded = load_trace(path)
        np.testing.assert_array_equal(loaded.frame_bytes, np.round(trace.frame_bytes))
        assert loaded.frame_rate == trace.frame_rate
        assert loaded.slices_per_frame == trace.slices_per_frame

    def test_slice_roundtrip(self, trace_with_slices, tmp_path):
        path = tmp_path / "slices.dat"
        save_trace(trace_with_slices, path, unit="slice")
        loaded = load_trace(path)
        assert loaded.has_slice_data
        np.testing.assert_allclose(loaded.frame_bytes, trace_with_slices.frame_bytes)

    def test_headerless_file_defaults(self, tmp_path):
        """The original Bellcore file has no header: 24 fps assumed."""
        path = tmp_path / "raw.dat"
        path.write_text("1000\n2000\n1500\n")
        loaded = load_trace(path)
        assert loaded.frame_rate == 24.0
        assert loaded.n_frames == 3

    def test_explicit_overrides(self, tmp_path):
        path = tmp_path / "raw.dat"
        path.write_text("10\n20\n30\n40\n")
        loaded = load_trace(path, frame_rate=30.0, slices_per_frame=2, unit="slice")
        assert loaded.n_frames == 2
        np.testing.assert_array_equal(loaded.frame_bytes, [30.0, 70.0])

    def test_rejects_garbage_line(self, tmp_path):
        path = tmp_path / "bad.dat"
        path.write_text("100\noops\n")
        with pytest.raises(ValueError, match="bad.dat:2"):
            load_trace(path)

    def test_rejects_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "absent.dat")

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.dat"
        path.write_text("# frame_rate 24\n")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_rejects_nonmultiple_slice_count(self, tmp_path):
        path = tmp_path / "odd.dat"
        path.write_text("10\n20\n30\n")
        with pytest.raises(ValueError):
            load_trace(path, slices_per_frame=2, unit="slice")

    def test_save_requires_real_slices(self, trace, tmp_path):
        with pytest.raises(ValueError):
            save_trace(trace, tmp_path / "x.dat", unit="slice")

    def test_save_rejects_non_trace(self, tmp_path):
        with pytest.raises(TypeError):
            save_trace([1, 2, 3], tmp_path / "x.dat")
