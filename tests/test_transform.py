"""Tests for the marginal transform (eq. 13) and normal scores."""

import numpy as np
import pytest

from repro.core.transform import marginal_transform, normal_scores
from repro.distributions import GammaParetoHybrid, Normal


@pytest.fixture(scope="module")
def target():
    return GammaParetoHybrid(1000.0, 200.0, 8.0)


class TestMarginalTransform:
    def test_output_has_target_marginal(self, target, rng):
        x = rng.standard_normal(100_000)
        y = marginal_transform(x, target, source=Normal(0, 1))
        assert np.mean(y) == pytest.approx(target.mean(), rel=0.01)
        # Quantiles agree with the target distribution.
        for q in (0.1, 0.5, 0.9, 0.99):
            assert np.quantile(y, q) == pytest.approx(target.ppf(q), rel=0.02)

    def test_monotone_preserves_ordering(self, target, rng):
        """Eq. 13 is monotone: ranks are preserved exactly."""
        x = rng.standard_normal(500)
        y = marginal_transform(x, target, source=Normal(0, 1))
        np.testing.assert_array_equal(np.argsort(x), np.argsort(y))

    def test_source_inferred_from_sample(self, target, rng):
        x = rng.normal(5.0, 2.0, size=50_000)
        y = marginal_transform(x, target)  # source fitted internally
        assert np.median(y) == pytest.approx(target.ppf(0.5), rel=0.02)

    def test_preserves_hurst(self, target):
        """The paper: 'The measured value of H is not affected by the
        distortion of the marginal distribution.'"""
        from repro.analysis.hurst import variance_time
        from repro.core.daviesharte import DaviesHarteGenerator

        x = DaviesHarteGenerator(0.8).generate(2**14, rng=np.random.default_rng(2))
        y = marginal_transform(x, target, source=Normal(0, 1))
        h_before = variance_time(x).hurst
        h_after = variance_time(y).hurst
        assert h_after == pytest.approx(h_before, abs=0.05)

    def test_table_method_close_to_exact(self, target, rng):
        x = rng.standard_normal(5_000)
        y_exact = marginal_transform(x, target, source=Normal(0, 1), method="exact")
        y_table = marginal_transform(x, target, source=Normal(0, 1), method="table")
        # Bulk agrees tightly; the extreme tail is table-truncated.
        bulk = np.abs(x) < 3
        np.testing.assert_allclose(y_table[bulk], y_exact[bulk], rtol=0.02)

    def test_table_truncates_extreme_tail(self, target):
        """The paper's observation: the mapping table 'does not hold
        the Pareto tail' -- extreme quantiles are clipped."""
        x = np.array([0.0, 8.0])  # 8-sigma event
        y_exact = marginal_transform(x, target, source=Normal(0, 1), method="exact")
        y_table = marginal_transform(x, target, source=Normal(0, 1), method="table")
        assert y_table[1] < y_exact[1]

    def test_rejects_unknown_method(self, target, rng):
        with pytest.raises(ValueError):
            marginal_transform(rng.standard_normal(10), target, method="nope")

    def test_rejects_constant_input(self, target):
        with pytest.raises(ValueError):
            marginal_transform(np.ones(100), target)

    def test_rejects_non_normal_source(self, target, rng):
        with pytest.raises(TypeError):
            marginal_transform(rng.standard_normal(10), target, source=target)

    def test_no_infinities_for_extreme_inputs(self, target):
        x = np.array([-40.0, 0.0, 40.0])
        y = marginal_transform(x, target, source=Normal(0, 1))
        assert np.all(np.isfinite(y))


class TestNormalScores:
    def test_output_is_standard_normal_like(self, rng):
        x = rng.exponential(1.0, size=10_000)
        z = normal_scores(x)
        assert np.mean(z) == pytest.approx(0.0, abs=0.02)
        assert np.std(z) == pytest.approx(1.0, abs=0.02)

    def test_preserves_ordering(self, rng):
        x = rng.uniform(size=100)
        z = normal_scores(x)
        np.testing.assert_array_equal(np.argsort(x), np.argsort(z))

    def test_symmetric_ranks(self):
        z = normal_scores([1.0, 2.0, 3.0])
        assert z[1] == pytest.approx(0.0, abs=1e-12)
        assert z[0] == pytest.approx(-z[2])

    def test_inverse_of_marginal_transform(self, target, rng):
        """normal_scores o (eq. 13) recovers the Gaussian ranks."""
        x = rng.standard_normal(2_000)
        y = marginal_transform(x, target, source=Normal(0, 1))
        z = normal_scores(y)
        assert np.corrcoef(z, x)[0, 1] > 0.999
