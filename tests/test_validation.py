"""Tests for the shared argument-validation helpers."""

import numpy as np
import pytest

from repro._validation import (
    as_1d_float_array,
    require_in_closed_interval,
    require_in_open_interval,
    require_nonnegative,
    require_positive,
    require_positive_int,
    require_probability,
)


class TestRequirePositive:
    def test_accepts_positive_float(self):
        assert require_positive(2.5, "x") == 2.5

    def test_accepts_positive_int_and_returns_float(self):
        out = require_positive(3, "x")
        assert out == 3.0
        assert isinstance(out, float)

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            require_positive(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_positive(-1.0, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            require_positive(float("nan"), "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            require_positive(float("inf"), "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            require_positive(True, "x")

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            require_positive("3", "x")

    def test_error_message_names_parameter(self):
        with pytest.raises(ValueError, match="capacity"):
            require_positive(-1, "capacity")


class TestRequireNonnegative:
    def test_accepts_zero(self):
        assert require_nonnegative(0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_nonnegative(-0.001, "x")


class TestIntervals:
    def test_open_interval_accepts_interior(self):
        assert require_in_open_interval(0.5, "h", 0, 1) == 0.5

    def test_open_interval_rejects_boundary(self):
        with pytest.raises(ValueError):
            require_in_open_interval(1.0, "h", 0, 1)
        with pytest.raises(ValueError):
            require_in_open_interval(0.0, "h", 0, 1)

    def test_closed_interval_accepts_boundary(self):
        assert require_in_closed_interval(1.0, "q", 0, 1) == 1.0
        assert require_in_closed_interval(0.0, "q", 0, 1) == 0.0

    def test_closed_interval_rejects_outside(self):
        with pytest.raises(ValueError):
            require_in_closed_interval(1.0001, "q", 0, 1)

    def test_probability_helper(self):
        assert require_probability(0.3, "p") == 0.3
        with pytest.raises(ValueError):
            require_probability(-0.1, "p")


class TestRequirePositiveInt:
    def test_accepts_one(self):
        assert require_positive_int(1, "n") == 1

    def test_accepts_numpy_integer(self):
        assert require_positive_int(np.int64(5), "n") == 5

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            require_positive_int(0, "n")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            require_positive_int(2.0, "n")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            require_positive_int(True, "n")


class TestAs1DFloatArray:
    def test_converts_list(self):
        out = as_1d_float_array([1, 2, 3])
        assert out.dtype == np.float64
        np.testing.assert_array_equal(out, [1.0, 2.0, 3.0])

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            as_1d_float_array([[1, 2], [3, 4]])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least"):
            as_1d_float_array([])

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            as_1d_float_array([1.0, float("nan")])

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            as_1d_float_array([1.0, float("inf")])

    def test_min_length(self):
        with pytest.raises(ValueError):
            as_1d_float_array([1.0, 2.0], min_length=3)


class TestUniformHurstBounds:
    """All three fGn/fARIMA generators validate H through the shared
    require_in_open_interval helper, so out-of-range values produce the
    same message shape everywhere."""

    def generators(self):
        from repro.core.daviesharte import DaviesHarteGenerator
        from repro.core.hosking import HoskingGenerator
        from repro.core.paxson import PaxsonGenerator

        return (DaviesHarteGenerator, HoskingGenerator, PaxsonGenerator)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.3, 1.7])
    def test_out_of_range_hurst_uniform_message(self, bad):
        for gen in self.generators():
            with pytest.raises(
                ValueError, match=r"hurst must lie in the open interval \(0.0, 1.0\)"
            ):
                gen(hurst=bad)

    @pytest.mark.parametrize("bad", ["0.8", True])
    def test_non_numeric_hurst_raises_typeerror(self, bad):
        for gen in self.generators():
            with pytest.raises(TypeError, match="hurst must be a real number"):
                gen(hurst=bad)

    def test_hosking_d_bounds(self):
        from repro.core.hosking import HoskingGenerator

        with pytest.raises(
            ValueError, match=r"d must lie in the open interval \(-0.5, 0.5\)"
        ):
            HoskingGenerator(d=0.5)
        assert HoskingGenerator(d=0.25).hurst == pytest.approx(0.75)

    def test_boundary_interior_accepted(self):
        for gen in self.generators():
            assert gen(hurst=1e-6).hurst == pytest.approx(1e-6)
            assert gen(hurst=1 - 1e-6).hurst == pytest.approx(1 - 1e-6)
