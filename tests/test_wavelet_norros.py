"""Tests for the wavelet Hurst estimator and Norros' formulas."""

import numpy as np
import pytest

from repro.analysis.wavelet import haar_detail_energy, wavelet_hurst
from repro.simulation.norros import (
    norros_buffer,
    norros_capacity,
    norros_kappa,
    norros_overflow_probability,
)


class TestHaarPyramid:
    def test_energy_counts_halve(self, rng):
        x = rng.standard_normal(1024)
        octaves, energies, counts = haar_detail_energy(x)
        assert counts[0] == 512
        assert counts[1] == 256
        assert np.all(energies > 0)

    def test_white_noise_flat_energy(self, rng):
        """For white noise every octave has unit detail energy."""
        x = rng.standard_normal(2**16)
        _, energies, _ = haar_detail_energy(x, max_octaves=8)
        np.testing.assert_allclose(energies, 1.0, rtol=0.15)

    def test_orthonormality_preserves_energy(self, rng):
        """Details + final smooth carry exactly the input energy."""
        x = rng.standard_normal(256)
        smooth = x.copy()
        total_detail = 0.0
        for _ in range(8):
            n = smooth.size // 2
            pairs = smooth[: 2 * n].reshape(n, 2)
            d = (pairs[:, 0] - pairs[:, 1]) / np.sqrt(2)
            smooth = (pairs[:, 0] + pairs[:, 1]) / np.sqrt(2)
            total_detail += float(np.sum(d**2))
        assert total_detail + float(np.sum(smooth**2)) == pytest.approx(
            float(np.sum(x**2)), rel=1e-12
        )


class TestWaveletHurst:
    def test_fgn_08(self, fgn_path):
        assert wavelet_hurst(fgn_path).hurst == pytest.approx(0.8, abs=0.06)

    def test_white_noise(self, rng):
        x = rng.standard_normal(2**15)
        assert wavelet_hurst(x).hurst == pytest.approx(0.5, abs=0.06)

    def test_robust_to_constant_trend(self, fgn_path):
        """Haar details kill constants: adding a level shift changes
        nothing (one vanishing moment)."""
        shifted = fgn_path + 1000.0
        a = wavelet_hurst(fgn_path).hurst
        b = wavelet_hurst(shifted).hurst
        assert a == pytest.approx(b, abs=1e-9)

    def test_elevated_on_reference_trace(self, small_series):
        """On the video trace the wavelet estimator agrees the process
        is strongly LRD.  Its coarsest octaves weight the story-arc
        frequencies heavily (like the un-aggregated Whittle), so its
        point estimate runs above the variance-time one; both sit far
        above the SRD value 0.5."""
        from repro.analysis.hurst import variance_time

        h_wav = wavelet_hurst(small_series).hurst
        h_vt = variance_time(small_series).hurst
        assert h_wav > 0.7
        assert h_wav == pytest.approx(h_vt, abs=0.25)

    def test_custom_octave_range(self, fgn_path):
        est = wavelet_hurst(fgn_path, octave_range=(4, 10))
        assert np.all(est.octaves[est.fit_mask] >= 4)

    def test_rejects_empty_range(self, fgn_path):
        with pytest.raises(ValueError):
            wavelet_hurst(fgn_path, octave_range=(40, 50))


class TestNorrosFormulas:
    def test_kappa_symmetric_minimum(self):
        """kappa(1/2) = 1/2 is the minimum; kappa is symmetric in H."""
        assert norros_kappa(0.5) == pytest.approx(0.5)
        assert norros_kappa(0.3) == pytest.approx(norros_kappa(0.7), rel=1e-12)
        assert norros_kappa(0.8) > 0.5
        assert norros_kappa(0.99) < 1.0

    def test_capacity_buffer_probability_consistency(self):
        """The three formulas invert each other exactly."""
        m, a, h = 1000.0, 50.0, 0.8
        eps = 1e-4
        b = 1e5
        c = norros_capacity(m, a, b, eps, h)
        assert norros_overflow_probability(m, a, c, b, h) == pytest.approx(eps, rel=1e-9)
        assert norros_buffer(m, a, c, eps, h) == pytest.approx(b, rel=1e-9)

    def test_capacity_exceeds_mean(self):
        assert norros_capacity(1000.0, 50.0, 1e5, 1e-3, 0.8) > 1000.0

    def test_higher_h_needs_more_capacity(self):
        """The LRD penalty: at matched marginal statistics, a higher H
        demands more capacity for the same buffer and target."""
        base = dict(mean_rate=1000.0, variance_coeff=50.0, buffer_size=1e5,
                    overflow_probability=1e-4)
        assert norros_capacity(hurst=0.85, **base) > norros_capacity(hurst=0.6, **base)

    def test_buffering_ineffective_for_high_h(self):
        """Doubling the buffer cuts the required excess capacity by
        2^{-(1-H)/H}: a mere 16% for H = 0.8 versus 50% for H = 0.5."""
        m, a, eps = 1000.0, 50.0, 1e-4
        for h, expected in ((0.8, 2 ** (-0.25)), (0.5001, 2 ** (-1.0))):
            c1 = norros_capacity(m, a, 1e5, eps, h) - m
            c2 = norros_capacity(m, a, 2e5, eps, h) - m
            assert c2 / c1 == pytest.approx(expected, rel=0.01)

    def test_overflow_is_one_when_unstable(self):
        assert norros_overflow_probability(1000.0, 50.0, 900.0, 1e5, 0.8) == 1.0

    def test_buffer_rejects_unstable(self):
        with pytest.raises(ValueError):
            norros_buffer(1000.0, 50.0, 900.0, 1e-3, 0.8)

    def test_formula_against_simulation(self):
        """Theory-vs-simulation: Norros' capacity lands within a factor
        ~1.5 of the simulated requirement for FGN traffic (the formula
        is a large-deviations asymptotic, so order-of-magnitude
        agreement is the expectation)."""
        from repro.core.daviesharte import DaviesHarteGenerator
        from repro.simulation.qc import required_capacity

        h = 0.8
        mean, sd = 10_000.0, 2_000.0
        rng = np.random.default_rng(3)
        x = np.clip(mean + sd * DaviesHarteGenerator(h).generate(2**16, rng=rng), 0, None)
        buffer_bytes = 50_000.0
        eps = 1e-3
        simulated = required_capacity([x], buffer_bytes, eps)
        a = sd**2 / mean
        theory = norros_capacity(mean, a, buffer_bytes, eps, h)
        assert 0.6 * simulated < theory < 1.6 * simulated
