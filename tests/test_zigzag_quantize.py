"""Tests for zig-zag scanning and uniform quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video.quantize import dequantize, quantize
from repro.video.zigzag import zigzag_indices, zigzag_scan, zigzag_unscan


class TestZigzag:
    def test_indices_are_permutation(self):
        idx = zigzag_indices(8)
        assert sorted(idx.tolist()) == list(range(64))

    def test_standard_8x8_prefix(self):
        """First entries of the JPEG zig-zag order."""
        idx = zigzag_indices(8)
        # (0,0), (0,1), (1,0), (2,0), (1,1), (0,2), (0,3), (1,2) ...
        expected_prefix = [0, 1, 8, 16, 9, 2, 3, 10]
        assert idx[:8].tolist() == expected_prefix

    def test_last_is_bottom_right(self):
        assert zigzag_indices(8)[-1] == 63

    def test_scan_unscan_roundtrip(self, rng):
        block = rng.integers(-100, 100, size=(8, 8))
        np.testing.assert_array_equal(zigzag_unscan(zigzag_scan(block), 8), block)

    def test_scan_groups_frequencies(self):
        """Scanning the frequency-index-sum block yields a
        non-decreasing-diagonal sequence."""
        freq = np.add.outer(np.arange(8), np.arange(8))
        scanned = zigzag_scan(freq)
        assert np.all(np.diff(scanned) >= -1)
        assert scanned[0] == 0
        assert scanned[-1] == 14

    def test_small_blocks(self):
        idx4 = zigzag_indices(4)
        assert sorted(idx4.tolist()) == list(range(16))

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            zigzag_scan(np.ones((4, 8)))
        with pytest.raises(ValueError):
            zigzag_unscan(np.ones(63), 8)


class TestQuantize:
    def test_roundtrip_error_bounded(self, rng):
        coeffs = rng.uniform(-1000, 1000, size=(8, 8))
        step = 16.0
        recon = dequantize(quantize(coeffs, step), step)
        assert np.max(np.abs(recon - coeffs)) <= step / 2 + 1e-9

    def test_integer_levels(self):
        levels = quantize(np.array([15.9, 16.1, -8.1]), 16.0)
        assert levels.dtype == np.int32
        np.testing.assert_array_equal(levels, [1, 1, -1])
        # Exact half-step ties follow numpy's round-half-to-even.
        assert quantize(np.array([-8.0]), 16.0)[0] == 0

    def test_zero_preserved(self):
        assert quantize(np.array([0.0]), 4.0)[0] == 0

    def test_larger_step_more_zeros(self, rng):
        coeffs = rng.normal(0, 10, size=1000)
        fine = np.count_nonzero(quantize(coeffs, 1.0))
        coarse = np.count_nonzero(quantize(coeffs, 50.0))
        assert coarse < fine

    def test_rejects_bad_step(self):
        with pytest.raises(ValueError):
            quantize(np.ones(4), 0.0)

    def test_overflow_guard(self):
        with pytest.raises(ValueError):
            quantize(np.array([1e300]), 1e-6)


@settings(max_examples=30, deadline=None)
@given(n=st.sampled_from([2, 4, 8, 16]), seed=st.integers(0, 1000))
def test_zigzag_roundtrip_property(n, seed):
    """Property: unscan(scan(block)) is the identity for any size."""
    block = np.random.default_rng(seed).integers(-50, 50, size=(n, n))
    np.testing.assert_array_equal(zigzag_unscan(zigzag_scan(block), n), block)
